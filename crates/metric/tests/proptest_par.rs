//! Property tests: the parallel quartet/treeness kernels are bit-identical
//! to their serial twins on random symmetric matrices for thread counts
//! 1, 2 and 8, and repeated parallel runs are deterministic.

use bcc_metric::fourpoint::{
    epsilon_avg_exact, epsilon_avg_exact_par, epsilon_max_exact, epsilon_max_exact_par,
    satisfies_four_point, satisfies_four_point_par,
};
use bcc_metric::gromov::{delta_hyperbolicity_exact, delta_hyperbolicity_exact_par};
use bcc_metric::DistanceMatrix;
use proptest::prelude::*;

fn arb_matrix(max: usize) -> impl Strategy<Value = DistanceMatrix> {
    (4usize..=max)
        .prop_flat_map(|n| {
            proptest::collection::vec(0.01f64..50.0, n * (n - 1) / 2).prop_map(move |v| (n, v))
        })
        .prop_map(|(n, values)| {
            let mut it = values.into_iter();
            DistanceMatrix::from_fn(n, |_, _| it.next().unwrap_or(1.0))
        })
}

const THREADS: [usize; 3] = [1, 2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn quartet_kernels_bit_identical_to_serial(d in arb_matrix(10), tol in 0.0f64..5.0) {
        let avg = epsilon_avg_exact(&d).to_bits();
        let max = epsilon_max_exact(&d).to_bits();
        let delta = delta_hyperbolicity_exact(&d).to_bits();
        let four = satisfies_four_point(&d, tol);
        for threads in THREADS {
            bcc_par::set_threads(threads);
            prop_assert_eq!(avg, epsilon_avg_exact_par(&d).to_bits(), "threads = {}", threads);
            prop_assert_eq!(max, epsilon_max_exact_par(&d).to_bits(), "threads = {}", threads);
            prop_assert_eq!(delta, delta_hyperbolicity_exact_par(&d).to_bits(), "threads = {}", threads);
            prop_assert_eq!(four, satisfies_four_point_par(&d, tol), "threads = {}", threads);
        }
        bcc_par::set_threads(0);
    }

    #[test]
    fn parallel_runs_are_deterministic(d in arb_matrix(9)) {
        bcc_par::set_threads(8);
        prop_assert_eq!(
            epsilon_avg_exact_par(&d).to_bits(),
            epsilon_avg_exact_par(&d).to_bits()
        );
        prop_assert_eq!(
            delta_hyperbolicity_exact_par(&d).to_bits(),
            delta_hyperbolicity_exact_par(&d).to_bits()
        );
        bcc_par::set_threads(0);
    }
}
