//! Property tests for the metric-space foundations.

use bcc_metric::stats::EmpiricalCdf;
use bcc_metric::{
    fourpoint, gromov, DistanceMatrix, FiniteMetric, RationalTransform, SubsetMetric,
};
use proptest::prelude::*;

fn arb_matrix(max: usize) -> impl Strategy<Value = DistanceMatrix> {
    (2usize..=max)
        .prop_flat_map(|n| proptest::collection::vec(0.1f64..100.0, n * (n - 1) / 2))
        .prop_map(|values| {
            let mut n = 2;
            while n * (n - 1) / 2 < values.len() {
                n += 1;
            }
            let mut it = values.into_iter();
            DistanceMatrix::from_fn(n, |_, _| it.next().unwrap_or(1.0))
        })
}

/// An ultrametric: d(i, j) = max level at which i and j split in a random
/// binary-ish hierarchy. Always a tree metric.
fn arb_ultrametric(max: usize) -> impl Strategy<Value = DistanceMatrix> {
    (
        4usize..=max,
        proptest::collection::vec(0usize..4, 64),
        0.5f64..5.0,
    )
        .prop_map(|(n, groups, scale)| {
            let group =
                |i: usize, level: usize| groups[(i * 7 + level * 13) % groups.len()] % (level + 2);
            DistanceMatrix::from_fn(n, |i, j| {
                // Split level: the first level where they land in
                // different groups (deeper level = closer).
                for level in (0..4).rev() {
                    if group(i, level) != group(j, level) {
                        return (level + 1) as f64 * scale;
                    }
                }
                0.5 * scale
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quartet_epsilon_nonnegative_and_permutation_invariant(d in arb_matrix(8)) {
        let n = d.len();
        if n >= 4 {
            let e = fourpoint::quartet_epsilon(&d, 0, 1, 2, 3);
            prop_assert!(e >= 0.0);
            for perm in [[1usize, 0, 2, 3], [2, 3, 0, 1], [3, 2, 1, 0], [0, 2, 3, 1]] {
                let ep = fourpoint::quartet_epsilon(&d, perm[0], perm[1], perm[2], perm[3]);
                if e.is_finite() {
                    prop_assert!((ep - e).abs() < 1e-9 * (1.0 + e));
                } else {
                    prop_assert!(ep.is_infinite());
                }
            }
        }
    }

    #[test]
    fn ultrametrics_satisfy_four_point(d in arb_ultrametric(10)) {
        prop_assert!(fourpoint::satisfies_four_point(&d, 1e-9));
        prop_assert!(fourpoint::epsilon_avg_exact(&d) < 1e-9);
        prop_assert!(gromov::delta_hyperbolicity_exact(&d) < 1e-9);
    }

    #[test]
    fn epsilon_star_monotone(a in 0.0f64..10.0, b in 0.0f64..10.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(fourpoint::epsilon_star(lo) <= fourpoint::epsilon_star(hi));
        prop_assert!((0.0..1.0).contains(&fourpoint::epsilon_star(lo)));
    }

    #[test]
    fn rational_transform_is_order_reversing_bijection(bw in proptest::collection::vec(0.1f64..1000.0, 2..20)) {
        let t = RationalTransform::default();
        let mut sorted = bw.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let dists: Vec<f64> = sorted.iter().map(|&v| t.to_distance(v)).collect();
        for w in dists.windows(2) {
            prop_assert!(w[0] >= w[1], "transform must reverse order");
        }
        for &v in &bw {
            prop_assert!((t.to_bandwidth(t.to_distance(v)) - v).abs() < 1e-9 * v);
        }
    }

    #[test]
    fn cdf_properties(values in proptest::collection::vec(-100.0f64..100.0, 1..60), x in -150.0f64..150.0) {
        let cdf = EmpiricalCdf::new(values.clone());
        let below = cdf.fraction_below(x);
        let at_or_below = cdf.fraction_at_or_below(x);
        prop_assert!((0.0..=1.0).contains(&below));
        prop_assert!(below <= at_or_below);
        prop_assert_eq!(cdf.fraction_at_or_below(cdf.max()), 1.0);
        prop_assert_eq!(cdf.fraction_below(cdf.min()), 0.0);
        // Percentiles are monotone.
        prop_assert!(cdf.percentile(25.0) <= cdf.percentile(75.0));
    }

    #[test]
    fn subset_metric_is_faithful(d in arb_matrix(10), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..d.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate((d.len() / 2).max(1));
        let view = SubsetMetric::new(&d, idx.clone());
        for a in 0..view.len() {
            for b in 0..view.len() {
                prop_assert_eq!(view.distance(a, b), d.get(idx[a], idx[b]));
            }
        }
        // Materialization agrees with the view.
        let m = view.to_matrix();
        for a in 0..view.len() {
            for b in 0..view.len() {
                prop_assert_eq!(m.get(a, b), view.distance(a, b));
            }
        }
    }

    #[test]
    fn gromov_product_bounded_for_true_metrics(pos in proptest::collection::vec(0.0f64..100.0, 3..12)) {
        // Line metrics are true metrics: 0 <= (x|y)_z <= min(d(z,x), d(z,y)).
        let d = DistanceMatrix::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs());
        let n = d.len();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let p = gromov::gromov_product(&d, x, y, z);
                    prop_assert!(p >= -1e-9);
                    prop_assert!(p <= d.get(z, x).min(d.get(z, y)) + 1e-9);
                }
            }
        }
    }
}
