use serde::{Deserialize, Serialize};

use crate::matrix::{BandwidthMatrix, DistanceMatrix};

/// Default transform constant `C` (the paper's Fig. 1 example uses `C = 100`).
pub const DEFAULT_TRANSFORM_CONSTANT: f64 = 100.0;

/// The paper's *rational transform* `d(u, v) = C / BW(u, v)`.
///
/// Higher bandwidth is better while smaller distance is better, so the
/// reciprocal (scaled by a positive constant `C`) turns a bandwidth function
/// into a distance function. The same constant converts a bandwidth query
/// constraint `b` into a distance constraint `l = C / b`, and a predicted
/// distance back into a predicted bandwidth `BW_T = C / d_T`.
///
/// ```
/// use bcc_metric::RationalTransform;
/// let t = RationalTransform::new(100.0);
/// assert_eq!(t.to_distance(50.0), 2.0);
/// assert_eq!(t.to_bandwidth(2.0), 50.0);
/// assert_eq!(t.distance_constraint(25.0), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RationalTransform {
    c: f64,
}

impl RationalTransform {
    /// Creates a transform with constant `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not strictly positive and finite.
    pub fn new(c: f64) -> Self {
        assert!(
            c.is_finite() && c > 0.0,
            "transform constant must be positive"
        );
        RationalTransform { c }
    }

    /// The constant `C`.
    pub fn constant(self) -> f64 {
        self.c
    }

    /// Maps a bandwidth value to a distance: `C / bw` (`0` for infinite
    /// bandwidth, `+∞` for zero bandwidth).
    #[inline]
    pub fn to_distance(self, bw: f64) -> f64 {
        if bw.is_infinite() {
            0.0
        } else {
            self.c / bw
        }
    }

    /// Maps a distance back to a bandwidth: `C / d` (`+∞` for distance `0`).
    #[inline]
    pub fn to_bandwidth(self, d: f64) -> f64 {
        if d == 0.0 {
            f64::INFINITY
        } else {
            self.c / d
        }
    }

    /// Converts a bandwidth query constraint `b` (find pairs with
    /// `BW ≥ b`) into the equivalent diameter constraint `l = C / b`
    /// (find pairs with `d ≤ l`).
    #[inline]
    pub fn distance_constraint(self, b: f64) -> f64 {
        self.to_distance(b)
    }

    /// Converts a full bandwidth matrix into a distance matrix.
    pub fn distance_matrix(self, bw: &BandwidthMatrix) -> DistanceMatrix {
        DistanceMatrix::from_fn(bw.len(), |i, j| self.to_distance(bw.get(i, j)))
    }

    /// Converts a full distance matrix back into a bandwidth matrix.
    pub fn bandwidth_matrix(self, d: &DistanceMatrix) -> BandwidthMatrix {
        BandwidthMatrix::from_fn(d.len(), |i, j| self.to_bandwidth(d.get(i, j)))
    }
}

impl Default for RationalTransform {
    /// The paper's example constant, [`DEFAULT_TRANSFORM_CONSTANT`].
    fn default() -> Self {
        RationalTransform::new(DEFAULT_TRANSFORM_CONSTANT)
    }
}

/// The *linear transform* `d(u, v) = C − BW(u, v)`, included for completeness.
///
/// The related-work section reports that embedding bandwidth with this
/// transform (as earlier latency systems implicitly do) gives poor accuracy;
/// the ablation benches use it to demonstrate that finding.
///
/// Distances are clamped at `0` for bandwidths above `C`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearTransform {
    c: f64,
}

impl LinearTransform {
    /// Creates a linear transform with offset constant `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not strictly positive and finite.
    pub fn new(c: f64) -> Self {
        assert!(
            c.is_finite() && c > 0.0,
            "transform constant must be positive"
        );
        LinearTransform { c }
    }

    /// The constant `C`.
    pub fn constant(self) -> f64 {
        self.c
    }

    /// Maps a bandwidth value to a distance: `max(C − bw, 0)`.
    #[inline]
    pub fn to_distance(self, bw: f64) -> f64 {
        (self.c - bw).max(0.0)
    }

    /// Maps a distance back to a bandwidth: `C − d`.
    #[inline]
    pub fn to_bandwidth(self, d: f64) -> f64 {
        self.c - d
    }

    /// Converts a full bandwidth matrix into a distance matrix.
    pub fn distance_matrix(self, bw: &BandwidthMatrix) -> DistanceMatrix {
        DistanceMatrix::from_fn(bw.len(), |i, j| self.to_distance(bw.get(i, j)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_roundtrip() {
        let t = RationalTransform::new(100.0);
        for bw in [1.0, 13.7, 50.0, 1000.0] {
            let d = t.to_distance(bw);
            assert!((t.to_bandwidth(d) - bw).abs() < 1e-12);
        }
    }

    #[test]
    fn rational_diagonal_conventions() {
        let t = RationalTransform::default();
        assert_eq!(t.to_distance(f64::INFINITY), 0.0);
        assert_eq!(t.to_bandwidth(0.0), f64::INFINITY);
    }

    #[test]
    fn rational_is_monotone_decreasing() {
        let t = RationalTransform::default();
        assert!(t.to_distance(10.0) > t.to_distance(20.0));
    }

    #[test]
    fn constraint_equivalence() {
        // BW >= b  <=>  d <= l with l = C/b.
        let t = RationalTransform::new(100.0);
        let b = 25.0;
        let l = t.distance_constraint(b);
        for bw in [10.0, 24.9, 25.0, 25.1, 80.0] {
            assert_eq!(bw >= b, t.to_distance(bw) <= l, "bw = {bw}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rational_rejects_zero_constant() {
        RationalTransform::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rational_rejects_nan_constant() {
        RationalTransform::new(f64::NAN);
    }

    #[test]
    fn matrix_conversion_roundtrip() {
        let bw = BandwidthMatrix::from_fn(4, |i, j| 10.0 + (i * 4 + j) as f64);
        let t = RationalTransform::default();
        let d = t.distance_matrix(&bw);
        let back = t.bandwidth_matrix(&d);
        for (i, j, v) in bw.iter_pairs() {
            assert!((back.get(i, j) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_clamps_at_zero() {
        let t = LinearTransform::new(100.0);
        assert_eq!(t.to_distance(150.0), 0.0);
        assert_eq!(t.to_distance(40.0), 60.0);
    }

    #[test]
    fn linear_distance_matrix() {
        let bw = BandwidthMatrix::from_fn(3, |_, _| 30.0);
        let d = LinearTransform::new(100.0).distance_matrix(&bw);
        assert_eq!(d.get(0, 1), 70.0);
    }
}
