use std::fmt;

/// Errors produced by metric-space construction and validation.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// A matrix was created or accessed with an index outside `0..len`.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Matrix dimension.
        len: usize,
    },
    /// A pairwise value was not finite or was negative where it must not be.
    InvalidValue {
        /// Row index of the offending entry.
        i: usize,
        /// Column index of the offending entry.
        j: usize,
        /// The offending value.
        value: f64,
    },
    /// Two matrices (or a matrix and a point set) disagree on dimension.
    DimensionMismatch {
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
    },
    /// The metric requires at least this many nodes.
    TooFewNodes {
        /// Number of nodes required.
        required: usize,
        /// Number of nodes present.
        actual: usize,
    },
    /// A text representation of a matrix could not be parsed.
    Parse(String),
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for matrix of {len} nodes")
            }
            MetricError::InvalidValue { i, j, value } => {
                write!(f, "invalid pairwise value {value} at ({i}, {j})")
            }
            MetricError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            MetricError::TooFewNodes { required, actual } => {
                write!(f, "need at least {required} nodes, got {actual}")
            }
            MetricError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for MetricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MetricError::IndexOutOfBounds { index: 5, len: 3 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
        let e = MetricError::InvalidValue {
            i: 0,
            j: 1,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("NaN"));
        let e = MetricError::DimensionMismatch { left: 2, right: 4 };
        assert!(e.to_string().contains("2 vs 4"));
        let e = MetricError::TooFewNodes {
            required: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("at least 2"));
        let e = MetricError::Parse("bad header".into());
        assert!(e.to_string().contains("bad header"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricError>();
    }
}
