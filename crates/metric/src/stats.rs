//! Distribution statistics used by the evaluation harness.
//!
//! The paper's treeness model (Sec. IV-C) is phrased in terms of the
//! bandwidth distribution around the query constraint `b`:
//!
//! - `f_b` — the CDF of pairwise bandwidth evaluated at `b` (how many pair
//!   choices are *wrong* for the query),
//! - `f_a` — the fraction of pairs with bandwidth in `[b − 10, b + 10]` (how
//!   steep the CDF is at `b`, i.e. how much prediction error matters).
//!
//! [`EmpiricalCdf`] provides both, plus the percentile machinery used to pick
//! the paper's query ranges (20th–80th percentile of real bandwidth).

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over a sample of values.
///
/// ```
/// use bcc_metric::stats::EmpiricalCdf;
/// let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_below(2.5), 0.5);
/// assert_eq!(cdf.fraction_in(1.5, 3.5), 0.5);
/// assert_eq!(cdf.percentile(50.0), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from a sample; non-finite values are dropped.
    ///
    /// # Panics
    ///
    /// Panics if no finite values remain.
    pub fn new(values: Vec<f64>) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        assert!(
            !sorted.is_empty(),
            "empirical CDF needs at least one finite value"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
        EmpiricalCdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the sample is empty (never — construction requires
    /// at least one value — but provided for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples strictly below `x` — the paper's `f_b` when the
    /// sample is pairwise bandwidth and `x = b`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples at or below `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples in the closed window `[lo, hi]` — the paper's
    /// `f_a` with `lo = b − 10`, `hi = b + 10`.
    pub fn fraction_in(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        let a = self.sorted.partition_point(|&v| v < lo);
        let b = self.sorted.partition_point(|&v| v <= hi);
        (b - a) as f64 / self.sorted.len() as f64
    }

    /// Linear-interpolated percentile, `p ∈ [0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Evaluates the CDF at evenly spaced points, returning `(x, F(x))`
    /// pairs — convenient for printing the paper's CDF figures.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "a curve needs at least two points");
        let (lo, hi) = (self.min(), self.max());
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

/// Relative error `|actual − predicted| / actual` (the paper's Fig. 3b/3d
/// metric for bandwidth prediction).
///
/// Returns `0` when both values are infinite (perfectly predicted diagonal)
/// and `+∞` when only one is.
pub fn relative_error(actual: f64, predicted: f64) -> f64 {
    if actual.is_infinite() && predicted.is_infinite() {
        0.0
    } else if actual.is_infinite() || actual == 0.0 {
        f64::INFINITY
    } else {
        (actual - predicted).abs() / actual
    }
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Interpolated median.
    pub median: f64,
    /// Number of samples.
    pub count: usize,
}

impl Summary {
    /// Computes summary statistics; non-finite values are dropped.
    ///
    /// # Panics
    ///
    /// Panics if no finite values remain.
    pub fn of(values: &[f64]) -> Summary {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        assert!(
            !finite.is_empty(),
            "summary needs at least one finite value"
        );
        let n = finite.len() as f64;
        let mean = finite.iter().sum::<f64>() / n;
        let var = finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let cdf = EmpiricalCdf::new(finite.clone());
        Summary {
            mean,
            std_dev: var.sqrt(),
            min: cdf.min(),
            max: cdf.max(),
            median: cdf.percentile(50.0),
            count: finite.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_below_handles_edges() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert_eq!(cdf.fraction_below(1.0), 0.0);
        assert_eq!(cdf.fraction_below(1.5), 1.0 / 3.0);
        assert_eq!(cdf.fraction_below(10.0), 1.0);
    }

    #[test]
    fn fraction_at_or_below_includes_ties() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_below(2.0), 0.25);
    }

    #[test]
    fn window_fraction() {
        let cdf = EmpiricalCdf::new((1..=10).map(|v| v as f64).collect());
        assert_eq!(cdf.fraction_in(3.0, 7.0), 0.5);
        assert_eq!(cdf.fraction_in(7.0, 3.0), 0.0);
        assert_eq!(cdf.fraction_in(-5.0, 0.0), 0.0);
        assert_eq!(cdf.fraction_in(0.0, 100.0), 1.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let cdf = EmpiricalCdf::new(vec![0.0, 10.0]);
        assert_eq!(cdf.percentile(0.0), 0.0);
        assert_eq!(cdf.percentile(100.0), 10.0);
        assert_eq!(cdf.percentile(25.0), 2.5);
    }

    #[test]
    fn percentile_single_value() {
        let cdf = EmpiricalCdf::new(vec![4.2]);
        assert_eq!(cdf.percentile(0.0), 4.2);
        assert_eq!(cdf.percentile(99.0), 4.2);
    }

    #[test]
    #[should_panic(expected = "[0, 100]")]
    fn percentile_range_checked() {
        EmpiricalCdf::new(vec![1.0]).percentile(101.0);
    }

    #[test]
    fn non_finite_values_dropped() {
        let cdf = EmpiricalCdf::new(vec![f64::INFINITY, 1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.max(), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one finite")]
    fn empty_cdf_panics() {
        EmpiricalCdf::new(vec![f64::NAN]);
    }

    #[test]
    fn curve_is_monotone() {
        let cdf = EmpiricalCdf::new(vec![1.0, 5.0, 5.0, 9.0, 2.0]);
        let curve = cdf.curve(11);
        assert_eq!(curve.len(), 11);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(100.0, 80.0), 0.2);
        assert_eq!(relative_error(50.0, 75.0), 0.5);
        assert_eq!(relative_error(f64::INFINITY, f64::INFINITY), 0.0);
        assert!(relative_error(f64::INFINITY, 10.0).is_infinite());
        assert!(relative_error(0.0, 10.0).is_infinite());
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 4);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_drops_nan() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
    }
}
