use serde::{Deserialize, Serialize};

use crate::matrix::DistanceMatrix;

/// A finite metric space: `len` points with a pairwise distance.
///
/// Implementations are *not* required to satisfy the triangle inequality
/// exactly — real bandwidth data only approximately does — but callers may
/// assume symmetry (`distance(i, j) == distance(j, i)`) and a zero diagonal.
///
/// Both the clustering algorithms in `bcc-core` and the treeness statistics
/// in [`crate::fourpoint`] are generic over this trait so they run unchanged
/// on matrices, Euclidean point sets, prediction trees, and subset views.
pub trait FiniteMetric {
    /// Number of points in the space.
    fn len(&self) -> usize;

    /// Distance between points `i` and `j`.
    fn distance(&self, i: usize, j: usize) -> f64;

    /// Returns `true` if the space contains no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes this space into a dense [`DistanceMatrix`].
    fn to_matrix(&self) -> DistanceMatrix {
        DistanceMatrix::from_fn(self.len(), |i, j| self.distance(i, j))
    }
}

impl FiniteMetric for DistanceMatrix {
    fn len(&self) -> usize {
        DistanceMatrix::len(self)
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.get(i, j)
    }
}

impl<M: FiniteMetric + ?Sized> FiniteMetric for &M {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        (**self).distance(i, j)
    }
}

/// A view of a subset of another metric space, renumbered `0..subset.len()`.
///
/// Used by the decentralized protocol: each node's *clustering space* `V_x`
/// is a small subset of the whole system, and Algorithm 1 runs on that view
/// without copying the underlying matrix.
///
/// ```
/// use bcc_metric::{DistanceMatrix, FiniteMetric, SubsetMetric};
/// let d = DistanceMatrix::from_fn(5, |i, j| (i + j) as f64);
/// let view = SubsetMetric::new(&d, vec![4, 0, 2]);
/// assert_eq!(view.len(), 3);
/// assert_eq!(view.distance(0, 2), d.get(4, 2));
/// ```
#[derive(Debug, Clone)]
pub struct SubsetMetric<M> {
    base: M,
    nodes: Vec<usize>,
}

impl<M: FiniteMetric> SubsetMetric<M> {
    /// Creates a view of `base` restricted to `nodes` in the given order.
    ///
    /// # Panics
    ///
    /// Panics if any index in `nodes` is out of bounds for `base`.
    pub fn new(base: M, nodes: Vec<usize>) -> Self {
        for &u in &nodes {
            assert!(u < base.len(), "subset node {u} out of bounds");
        }
        SubsetMetric { base, nodes }
    }

    /// The base-space index of subset point `i`.
    pub fn base_index(&self, i: usize) -> usize {
        self.nodes[i]
    }

    /// The base-space indices in subset order.
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }
}

impl<M: FiniteMetric> FiniteMetric for SubsetMetric<M> {
    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.base.distance(self.nodes[i], self.nodes[j])
    }
}

/// A set of points in low-dimensional Euclidean space.
///
/// This is the space the Vivaldi baseline embeds into; the Euclidean
/// clustering baseline (`bcc-core::euclidean`) additionally needs raw
/// coordinate access, which this type provides via [`EuclideanPoints::point`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EuclideanPoints {
    dim: usize,
    coords: Vec<f64>,
}

impl EuclideanPoints {
    /// Creates a point set from row-major coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `coords.len()` is not a multiple of `dim`.
    pub fn new(dim: usize, coords: Vec<f64>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            coords.len() % dim,
            0,
            "coordinate count must be a multiple of dim"
        );
        EuclideanPoints { dim, coords }
    }

    /// Creates `n` points at the origin of `dim`-dimensional space.
    pub fn zeros(n: usize, dim: usize) -> Self {
        EuclideanPoints::new(dim, vec![0.0; n * dim])
    }

    /// Spatial dimension of the point set.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable coordinates of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn point_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.coords[i * self.dim..(i + 1) * self.dim]
    }
}

impl FiniteMetric for EuclideanPoints {
    fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.point(i)
            .iter()
            .zip(self.point(j))
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_a_metric() {
        let d = DistanceMatrix::from_fn(3, |i, j| (i + j) as f64);
        assert_eq!(FiniteMetric::len(&d), 3);
        assert_eq!(d.distance(0, 2), 2.0);
        assert_eq!(d.distance(1, 1), 0.0);
    }

    #[test]
    fn reference_impl_delegates() {
        let d = DistanceMatrix::from_fn(3, |i, j| (i * j) as f64);
        let r: &DistanceMatrix = &d;
        assert_eq!(r.len(), 3);
        assert_eq!(r.distance(1, 2), 2.0);
    }

    #[test]
    fn subset_renumbers() {
        let d = DistanceMatrix::from_fn(5, |i, j| (10 * i + j) as f64);
        let s = SubsetMetric::new(&d, vec![3, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.distance(0, 1), d.get(3, 1));
        assert_eq!(s.base_index(1), 1);
        assert_eq!(s.nodes(), &[3, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn subset_rejects_bad_index() {
        let d = DistanceMatrix::new(2);
        SubsetMetric::new(&d, vec![0, 2]);
    }

    #[test]
    fn subset_to_matrix() {
        let d = DistanceMatrix::from_fn(4, |i, j| (i + j) as f64);
        let m = SubsetMetric::new(&d, vec![0, 3]).to_matrix();
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(0, 1), 3.0);
    }

    #[test]
    fn euclidean_distance() {
        let p = EuclideanPoints::new(2, vec![0.0, 0.0, 3.0, 4.0]);
        assert_eq!(p.len(), 2);
        assert!((p.distance(0, 1) - 5.0).abs() < 1e-12);
        assert_eq!(p.distance(1, 1), 0.0);
    }

    #[test]
    fn euclidean_point_access() {
        let mut p = EuclideanPoints::zeros(2, 3);
        p.point_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(p.point(1), &[1.0, 2.0, 3.0]);
        assert_eq!(p.point(0), &[0.0, 0.0, 0.0]);
        assert_eq!(p.dim(), 3);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn euclidean_rejects_ragged_coords() {
        EuclideanPoints::new(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn euclidean_symmetry() {
        let p = EuclideanPoints::new(3, vec![1.0, 0.0, 2.0, -1.0, 5.0, 0.5]);
        assert!((p.distance(0, 1) - p.distance(1, 0)).abs() < 1e-15);
    }
}
