//! Gromov products and δ-hyperbolicity.
//!
//! The Gromov product `(x|y)_z = ½ (d(z,x) + d(z,y) − d(x,y))` measures how
//! long the paths `z→x` and `z→y` travel together before splitting — in a
//! tree it is exactly the distance from `z` to the branch point of `x` and
//! `y`. Prediction-tree growth (Sec. II-D of the paper) places each new node
//! by *maximizing* a Gromov product, so this module is the numeric heart of
//! the embedding substrate.

use rand::Rng;

use crate::space::FiniteMetric;

/// The Gromov product `(x|y)_z` of `x` and `y` at base `z`.
///
/// ```
/// use bcc_metric::{gromov::gromov_product, DistanceMatrix};
/// // Path a—b—c with unit edges: (a|c)_b = 0 (paths split immediately at b).
/// let d = DistanceMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs());
/// assert_eq!(gromov_product(&d, 0, 2, 1), 0.0);
/// // (b|c)_a = 1: from a, the routes to b and c share the a—b edge.
/// assert_eq!(gromov_product(&d, 1, 2, 0), 1.0);
/// ```
#[inline]
pub fn gromov_product<M: FiniteMetric>(metric: &M, x: usize, y: usize, z: usize) -> f64 {
    0.5 * (metric.distance(z, x) + metric.distance(z, y) - metric.distance(x, y))
}

/// Finds the `y` (taken from `candidates`, excluding `x` and `z`) that
/// maximizes `(x|y)_z`, returning `(y, product)`.
///
/// Ties are broken toward the earliest candidate, which keeps tree growth
/// deterministic. Returns `None` when no eligible candidate exists.
pub fn max_gromov_product<M: FiniteMetric>(
    metric: &M,
    x: usize,
    z: usize,
    candidates: impl IntoIterator<Item = usize>,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for y in candidates {
        if y == x || y == z {
            continue;
        }
        let p = gromov_product(metric, x, y, z);
        match best {
            Some((_, bp)) if bp >= p => {}
            _ => best = Some((y, p)),
        }
    }
    best
}

/// Exact four-point δ-hyperbolicity: `max` over quartets of `(s1 − s2) / 2`
/// where `s1 ≥ s2 ≥ s3` are the pairing sums.
///
/// A tree metric has `δ = 0`. Runs in `O(n⁴)`; use
/// [`delta_hyperbolicity_sampled`] for large spaces.
pub fn delta_hyperbolicity_exact<M: FiniteMetric>(metric: &M) -> f64 {
    let n = metric.len();
    let mut delta = 0.0f64;
    for w in 0..n {
        for x in (w + 1)..n {
            for y in (x + 1)..n {
                for z in (y + 1)..n {
                    let q = crate::fourpoint::quartet_sums(metric, w, x, y, z);
                    delta = delta.max(0.5 * (q.sums[0] - q.sums[1]));
                }
            }
        }
    }
    delta
}

/// Parallel [`delta_hyperbolicity_exact`]: the `O(n⁴)` quartet scan blocked
/// on the outer index over the `bcc-par` pool, sweeping matrix rows in the
/// innermost loop. `max` reduces exactly, so the result is bit-identical to
/// the serial scan for any thread count.
pub fn delta_hyperbolicity_exact_par<M: FiniteMetric>(metric: &M) -> f64 {
    let d = metric.to_matrix();
    let n = d.len();
    bcc_par::par_reduce(
        n,
        |w| {
            let row_w = &d.row(w)[..n];
            let mut delta = 0.0f64;
            for x in (w + 1)..n {
                let row_x = &d.row(x)[..n];
                let d_wx = row_w[x];
                for y in (x + 1)..n {
                    let row_y = &d.row(y)[..n];
                    let (d_wy, d_xy) = (row_w[y], row_x[y]);
                    for z in (y + 1)..n {
                        let q = crate::fourpoint::sums_of(
                            d_wx, row_y[z], d_wy, row_x[z], row_w[z], d_xy,
                        );
                        delta = delta.max(0.5 * (q.sums[0] - q.sums[1]));
                    }
                }
            }
            delta
        },
        0.0f64,
        f64::max,
    )
}

/// Monte-Carlo lower bound on δ-hyperbolicity from `samples` random quartets.
///
/// # Panics
///
/// Panics if `metric` has fewer than four points.
pub fn delta_hyperbolicity_sampled<M: FiniteMetric, R: Rng>(
    metric: &M,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let n = metric.len();
    assert!(n >= 4, "delta needs at least four points");
    let mut delta = 0.0f64;
    for _ in 0..samples {
        let mut q = [0usize; 4];
        loop {
            for slot in &mut q {
                *slot = rng.gen_range(0..n);
            }
            if q[0] != q[1]
                && q[0] != q[2]
                && q[0] != q[3]
                && q[1] != q[2]
                && q[1] != q[3]
                && q[2] != q[3]
            {
                break;
            }
        }
        let s = crate::fourpoint::quartet_sums(metric, q[0], q[1], q[2], q[3]);
        delta = delta.max(0.5 * (s.sums[0] - s.sums[1]));
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistanceMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(pos: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn gromov_product_on_line() {
        let d = line(&[0.0, 2.0, 5.0]);
        // (1|2)_0: routes from 0 to both 1 and 2 share the segment [0, 2].
        assert_eq!(gromov_product(&d, 1, 2, 0), 2.0);
        // (0|2)_1: they split immediately at 1.
        assert_eq!(gromov_product(&d, 0, 2, 1), 0.0);
    }

    #[test]
    fn gromov_product_symmetry_in_xy() {
        let d = line(&[0.0, 1.0, 3.0, 7.0]);
        assert_eq!(gromov_product(&d, 1, 3, 0), gromov_product(&d, 3, 1, 0));
    }

    #[test]
    fn gromov_nonnegative_for_metric() {
        // For a true metric the triangle inequality makes (x|y)_z >= 0.
        let d = line(&[0.0, 1.0, 4.0, 6.0]);
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    assert!(gromov_product(&d, x, y, z) >= -1e-12);
                }
            }
        }
    }

    #[test]
    fn max_gromov_picks_closest_branch() {
        // Star with center weights: leaves 0,1,2,3 at radii 1,1,5,5.
        let w = [1.0, 1.0, 5.0, 5.0];
        let d = DistanceMatrix::from_fn(4, |i, j| w[i] + w[j]);
        // From base z=0, adding x=2: every other leaf's branch point with 2
        // is the center, (2|y)_0 = w[0] = 1 for all y.
        let (y, p) = max_gromov_product(&d, 2, 0, 0..4).unwrap();
        assert_eq!(p, 1.0);
        assert_eq!(y, 1, "tie broken toward earliest candidate");
    }

    #[test]
    fn max_gromov_excludes_x_and_z() {
        let d = line(&[0.0, 1.0, 2.0]);
        assert_eq!(max_gromov_product(&d, 0, 1, [0, 1].into_iter()), None);
        let got = max_gromov_product(&d, 0, 1, [0, 1, 2]);
        assert_eq!(got.map(|(y, _)| y), Some(2));
    }

    #[test]
    fn delta_zero_on_tree_metric() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0];
        let d = DistanceMatrix::from_fn(5, |i, j| w[i] + w[j]);
        assert_eq!(delta_hyperbolicity_exact(&d), 0.0);
    }

    #[test]
    fn delta_positive_on_square() {
        let p = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        let d = DistanceMatrix::from_fn(4, |i, j| {
            let (xi, yi): (f64, f64) = p[i];
            let (xj, yj) = p[j];
            (xi - xj).hypot(yi - yj)
        });
        let delta = delta_hyperbolicity_exact(&d);
        assert!((delta - (2f64.sqrt() - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn parallel_delta_matches_serial() {
        let d = DistanceMatrix::from_fn(12, |i, j| 1.0 + ((i * 7 + j * 3) % 5) as f64);
        for threads in [1, 2, 8] {
            bcc_par::set_threads(threads);
            assert_eq!(
                delta_hyperbolicity_exact(&d).to_bits(),
                delta_hyperbolicity_exact_par(&d).to_bits(),
                "threads = {threads}"
            );
        }
        bcc_par::set_threads(0);
        let w = [1.0, 2.0, 3.0, 4.0, 5.0];
        let tree = DistanceMatrix::from_fn(5, |i, j| w[i] + w[j]);
        assert_eq!(delta_hyperbolicity_exact_par(&tree), 0.0);
    }

    #[test]
    fn sampled_delta_bounded_by_exact() {
        let d = DistanceMatrix::from_fn(10, |i, j| 1.0 + ((i * 7 + j * 3) % 5) as f64);
        let exact = delta_hyperbolicity_exact(&d);
        let mut rng = StdRng::seed_from_u64(3);
        let sampled = delta_hyperbolicity_sampled(&d, 5_000, &mut rng);
        assert!(sampled <= exact + 1e-12);
        assert!(sampled > 0.0);
    }
}
