use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a participating host.
///
/// Hosts are dense indices `0..n` into the pairwise matrices; the newtype
/// keeps host identifiers from being confused with other `usize` quantities
/// (cluster sizes, hop counts, matrix dimensions).
///
/// ```
/// use bcc_metric::NodeId;
/// let a = NodeId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (more than four billion hosts
    /// is far beyond any workload this crate targets).
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for usize {
    fn from(v: NodeId) -> Self {
        v.index()
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_index() {
        for i in [0usize, 1, 57, 10_000] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn ordering_matches_index_order() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NodeId::new(0) < NodeId::new(100));
    }

    #[test]
    fn usable_in_hash_set() {
        let s: HashSet<NodeId> = [0, 1, 2, 1].iter().map(|&i| NodeId::new(i)).collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::new(42).to_string(), "n42");
    }

    #[test]
    fn conversions() {
        let n: NodeId = 7u32.into();
        let i: usize = n.into();
        assert_eq!(i, 7);
    }
}
