//! Finite metric spaces for bandwidth-constrained clustering.
//!
//! This crate provides the metric-space foundations used throughout the
//! reproduction of *Searching for Bandwidth-Constrained Clusters* (Song,
//! Keleher, Sussman; ICDCS 2011):
//!
//! - [`SymMatrix`], [`DistanceMatrix`] and [`BandwidthMatrix`] — dense
//!   symmetric pairwise data over a node set.
//! - [`RationalTransform`] — the paper's `d(u, v) = C / BW(u, v)` mapping that
//!   turns bandwidth (bigger is better) into a distance (smaller is better),
//!   plus the linear transform used as a strawman in the related-work section.
//! - [`fourpoint`] — the four-point condition (4PC), the per-quartet `ε`
//!   treeness measure of Abraham et al., and exact/sampled `ε_avg`. The
//!   `O(n⁴)` exact scans have `_par` variants on the `bcc-par` pool that are
//!   bit-identical to their serial counterparts for any thread count.
//! - [`gromov`] — Gromov products and δ-hyperbolicity, the primitives behind
//!   prediction-tree growth.
//! - [`stats`] — percentiles, empirical CDFs and relative-error summaries used
//!   by the evaluation harness.
//!
//! # Example
//!
//! ```
//! use bcc_metric::{BandwidthMatrix, RationalTransform};
//!
//! // A 3-node system where bandwidth is bottlenecked at access links of
//! // 20, 40 and 100 Mbps: a perfect tree metric.
//! let caps = [20.0f64, 40.0, 100.0];
//! let mut bw = BandwidthMatrix::new(3);
//! for i in 0..3 {
//!     for j in (i + 1)..3 {
//!         bw.set(i, j, caps[i].min(caps[j]));
//!     }
//! }
//! let dist = RationalTransform::default().distance_matrix(&bw);
//! let eps = bcc_metric::fourpoint::epsilon_avg_exact(&dist);
//! assert!(eps < 1e-9, "an access-link bottleneck metric is a tree metric");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod matrix;
mod node;
mod space;
mod transform;

pub mod fourpoint;
pub mod gromov;
pub mod stats;

pub use error::MetricError;
pub use matrix::{BandwidthMatrix, DistanceMatrix, SymMatrix};
pub use node::NodeId;
pub use space::{EuclideanPoints, FiniteMetric, SubsetMetric};
pub use transform::{LinearTransform, RationalTransform, DEFAULT_TRANSFORM_CONSTANT};
