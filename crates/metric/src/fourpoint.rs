//! The four-point condition and quartet-based treeness statistics.
//!
//! A metric space `(V, d)` satisfies the *four-point condition* (4PC) when for
//! every quartet `{w, x, y, z}` the two largest of the three pairing sums
//!
//! ```text
//! d(w,x) + d(y,z),   d(w,y) + d(x,z),   d(w,z) + d(x,y)
//! ```
//!
//! are equal. Buneman's theorem states that 4PC holds exactly when some
//! edge-weighted tree induces the metric, which is what makes the paper's
//! polynomial-time clustering possible.
//!
//! Real bandwidth data only satisfies 4PC approximately. Abraham et al.
//! quantify the violation per quartet with a relative slack `ε`; the paper
//! uses the average `ε_avg` over quartets as the *treeness* of a dataset
//! (Sec. IV-C). This module computes the per-quartet `ε`, exact and sampled
//! `ε_avg`, and exact/sampled maxima.

use rand::Rng;

use crate::space::FiniteMetric;

/// The three pairing sums of a quartet, sorted descending.
///
/// `sums[0] >= sums[1] >= sums[2]`; `min_pair` is the smaller distance of the
/// two pairs forming the *smallest* sum, which Abraham et al. use as the
/// normalizer for `ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuartetSums {
    /// Pairing sums in descending order.
    pub sums: [f64; 3],
    /// `min` of the two pair distances that make up `sums[2]`.
    pub min_pair: f64,
}

/// Computes the sorted pairing sums of the quartet `(w, x, y, z)`.
///
/// # Panics
///
/// Panics if any index is out of bounds for `metric`.
pub fn quartet_sums<M: FiniteMetric>(
    metric: &M,
    w: usize,
    x: usize,
    y: usize,
    z: usize,
) -> QuartetSums {
    let d_wx = metric.distance(w, x);
    let d_yz = metric.distance(y, z);
    let d_wy = metric.distance(w, y);
    let d_xz = metric.distance(x, z);
    let d_wz = metric.distance(w, z);
    let d_xy = metric.distance(x, y);

    // Each candidate: (sum, min of its two pair distances).
    let mut cands = [
        (d_wx + d_yz, d_wx.min(d_yz)),
        (d_wy + d_xz, d_wy.min(d_xz)),
        (d_wz + d_xy, d_wz.min(d_xy)),
    ];
    cands.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("pairing sums are comparable"));
    QuartetSums {
        sums: [cands[0].0, cands[1].0, cands[2].0],
        min_pair: cands[2].1,
    }
}

/// Per-quartet treeness slack `ε` of Abraham et al.
///
/// With the pairing sums sorted `s1 ≥ s2 ≥ s3` and `m` the smaller pair
/// distance inside the smallest sum, `ε = (s1 − s2) / (2 m)`. A perfect tree
/// metric gives `ε = 0` for every quartet.
///
/// Degenerate quartets (where `m = 0`, e.g. duplicated points) return `0`
/// when the 4PC gap is also zero and `+∞` otherwise.
pub fn quartet_epsilon<M: FiniteMetric>(metric: &M, w: usize, x: usize, y: usize, z: usize) -> f64 {
    let q = quartet_sums(metric, w, x, y, z);
    let gap = q.sums[0] - q.sums[1];
    if gap <= 0.0 {
        0.0
    } else if q.min_pair <= 0.0 {
        f64::INFINITY
    } else {
        gap / (2.0 * q.min_pair)
    }
}

/// Checks whether `metric` satisfies 4PC on every quartet within an additive
/// tolerance `tol` on the gap `s1 − s2`.
///
/// Runs in `O(n⁴)`; intended for tests and small fixtures.
pub fn satisfies_four_point<M: FiniteMetric>(metric: &M, tol: f64) -> bool {
    let n = metric.len();
    for w in 0..n {
        for x in (w + 1)..n {
            for y in (x + 1)..n {
                for z in (y + 1)..n {
                    let q = quartet_sums(metric, w, x, y, z);
                    if q.sums[0] - q.sums[1] > tol {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Exact average quartet `ε` over all `C(n, 4)` quartets.
///
/// Infinite per-quartet values (degenerate quartets) are excluded from the
/// average. Returns `0` for spaces with fewer than four points (they are
/// trivially tree metrics).
///
/// Runs in `O(n⁴)` — fine up to a few hundred nodes; use
/// [`epsilon_avg_sampled`] beyond that.
pub fn epsilon_avg_exact<M: FiniteMetric>(metric: &M) -> f64 {
    let n = metric.len();
    if n < 4 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0u64;
    for w in 0..n {
        for x in (w + 1)..n {
            for y in (x + 1)..n {
                for z in (y + 1)..n {
                    let e = quartet_epsilon(metric, w, x, y, z);
                    if e.is_finite() {
                        total += e;
                        count += 1;
                    }
                }
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Monte-Carlo estimate of the average quartet `ε` from `samples` random
/// quartets.
///
/// This is how `ε_avg` is evaluated for full-size datasets, where the exact
/// `C(n, 4)` enumeration (≈ 410 M quartets at `n = 317`) is wasteful: the
/// estimator converges to two decimal places within a few tens of thousands
/// of samples.
///
/// # Panics
///
/// Panics if `metric` has fewer than four points.
pub fn epsilon_avg_sampled<M: FiniteMetric, R: Rng>(
    metric: &M,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let n = metric.len();
    assert!(n >= 4, "sampled epsilon needs at least four points");
    let mut total = 0.0;
    let mut count = 0u64;
    for _ in 0..samples {
        let q = sample_quartet(n, rng);
        let e = quartet_epsilon(metric, q[0], q[1], q[2], q[3]);
        if e.is_finite() {
            total += e;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Exact maximum quartet `ε` (ignoring degenerate infinite quartets).
pub fn epsilon_max_exact<M: FiniteMetric>(metric: &M) -> f64 {
    let n = metric.len();
    let mut max = 0.0f64;
    for w in 0..n {
        for x in (w + 1)..n {
            for y in (x + 1)..n {
                for z in (y + 1)..n {
                    let e = quartet_epsilon(metric, w, x, y, z);
                    if e.is_finite() {
                        max = max.max(e);
                    }
                }
            }
        }
    }
    max
}

/// Transforms an unbounded `ε_avg ∈ [0, ∞)` to the paper's bounded treeness
/// variable `ε*_avg = 1 − 1 / (1 + ε_avg) ∈ [0, 1)`.
pub fn epsilon_star(epsilon_avg: f64) -> f64 {
    assert!(epsilon_avg >= 0.0, "epsilon_avg must be non-negative");
    1.0 - 1.0 / (1.0 + epsilon_avg)
}

fn sample_quartet<R: Rng>(n: usize, rng: &mut R) -> [usize; 4] {
    // Rejection-sample four distinct indices; for n >= 4 this terminates
    // quickly (collision probability is tiny for the n used in practice).
    loop {
        let q = [
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(0..n),
        ];
        if q[0] != q[1]
            && q[0] != q[2]
            && q[0] != q[3]
            && q[1] != q[2]
            && q[1] != q[3]
            && q[2] != q[3]
        {
            return q;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistanceMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Star metric: d(i, j) = w[i] + w[j]. Induced by a star tree, so a
    /// perfect tree metric.
    fn star_metric(weights: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(weights.len(), |i, j| weights[i] + weights[j])
    }

    /// Points on a line: also a tree metric (path graph).
    fn line_metric(pos: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn star_metric_is_tree_metric() {
        let d = star_metric(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(satisfies_four_point(&d, 1e-12));
        assert_eq!(epsilon_avg_exact(&d), 0.0);
        assert_eq!(epsilon_max_exact(&d), 0.0);
    }

    #[test]
    fn line_metric_is_tree_metric() {
        let d = line_metric(&[0.0, 1.5, 4.0, 9.0, 11.0]);
        assert!(satisfies_four_point(&d, 1e-12));
        assert!(epsilon_avg_exact(&d) < 1e-12);
    }

    #[test]
    fn unit_square_violates_four_point() {
        // Corners of a unit square with Euclidean distances: the classic
        // non-tree metric (s1 = 2√2 diagonal sum vs s2 = 2 side sum).
        let d = DistanceMatrix::from_fn(4, |i, j| {
            let p = [(0.0f64, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
            let (xi, yi) = p[i];
            let (xj, yj) = p[j];
            (xi - xj).hypot(yi - yj)
        });
        assert!(!satisfies_four_point(&d, 1e-9));
        let e = quartet_epsilon(&d, 0, 1, 2, 3);
        // gap = 2√2 − 2, min pair distance in smallest sum... all side sums
        // are 2, diagonal sum is 2√2: sorted sums are [2√2, 2, 2].
        let expected = (2.0 * 2f64.sqrt() - 2.0) / 2.0;
        assert!((e - expected).abs() < 1e-9, "e = {e}, expected {expected}");
    }

    #[test]
    fn quartet_sums_sorted() {
        let d = star_metric(&[1.0, 2.0, 3.0, 4.0]);
        let q = quartet_sums(&d, 0, 1, 2, 3);
        assert!(q.sums[0] >= q.sums[1] && q.sums[1] >= q.sums[2]);
    }

    #[test]
    fn epsilon_is_permutation_invariant() {
        let d = DistanceMatrix::from_fn(4, |i, j| ((i + 1) * (j + 2)) as f64);
        let base = quartet_epsilon(&d, 0, 1, 2, 3);
        for perm in [[1, 0, 2, 3], [2, 3, 0, 1], [3, 1, 2, 0], [0, 2, 1, 3]] {
            let e = quartet_epsilon(&d, perm[0], perm[1], perm[2], perm[3]);
            assert!((e - base).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_quartet_with_gap_is_infinite() {
        // Two coincident points (distance 0) but a 4PC gap.
        let mut d = DistanceMatrix::new(4);
        d.set(0, 1, 0.0);
        d.set(2, 3, 0.0);
        d.set(0, 2, 1.0);
        d.set(0, 3, 5.0);
        d.set(1, 2, 9.0);
        d.set(1, 3, 2.0);
        let e = quartet_epsilon(&d, 0, 1, 2, 3);
        assert!(e.is_infinite());
        // ...and it must be excluded from the exact average.
        assert!(epsilon_avg_exact(&d).is_finite());
    }

    #[test]
    fn fewer_than_four_points_is_trivially_tree() {
        let d = DistanceMatrix::from_fn(3, |i, j| (i + j) as f64);
        assert_eq!(epsilon_avg_exact(&d), 0.0);
        assert!(satisfies_four_point(&d, 0.0));
    }

    #[test]
    fn sampled_epsilon_close_to_exact() {
        // A noisy metric where epsilon is strictly positive.
        let mut rng = StdRng::seed_from_u64(7);
        let d = DistanceMatrix::from_fn(12, |i, j| 1.0 + ((i * 31 + j * 17) % 13) as f64 / 3.0);
        let exact = epsilon_avg_exact(&d);
        let sampled = epsilon_avg_sampled(&d, 40_000, &mut rng);
        assert!(exact > 0.0);
        assert!(
            (sampled - exact).abs() / exact < 0.1,
            "sampled {sampled} too far from exact {exact}"
        );
    }

    #[test]
    #[should_panic(expected = "at least four")]
    fn sampled_epsilon_needs_four_points() {
        let d = DistanceMatrix::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        epsilon_avg_sampled(&d, 10, &mut rng);
    }

    #[test]
    fn epsilon_star_bounds() {
        assert_eq!(epsilon_star(0.0), 0.0);
        assert!((epsilon_star(1.0) - 0.5).abs() < 1e-12);
        assert!(epsilon_star(1e9) < 1.0);
        // Monotone.
        assert!(epsilon_star(0.2) < epsilon_star(0.4));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn epsilon_star_rejects_negative() {
        epsilon_star(-0.1);
    }
}
