//! The four-point condition and quartet-based treeness statistics.
//!
//! A metric space `(V, d)` satisfies the *four-point condition* (4PC) when for
//! every quartet `{w, x, y, z}` the two largest of the three pairing sums
//!
//! ```text
//! d(w,x) + d(y,z),   d(w,y) + d(x,z),   d(w,z) + d(x,y)
//! ```
//!
//! are equal. Buneman's theorem states that 4PC holds exactly when some
//! edge-weighted tree induces the metric, which is what makes the paper's
//! polynomial-time clustering possible.
//!
//! Real bandwidth data only satisfies 4PC approximately. Abraham et al.
//! quantify the violation per quartet with a relative slack `ε`; the paper
//! uses the average `ε_avg` over quartets as the *treeness* of a dataset
//! (Sec. IV-C). This module computes the per-quartet `ε`, exact and sampled
//! `ε_avg`, and exact/sampled maxima.

use rand::Rng;

use crate::matrix::DistanceMatrix;
use crate::space::FiniteMetric;

/// The three pairing sums of a quartet, sorted descending.
///
/// `sums[0] >= sums[1] >= sums[2]`; `min_pair` is the smaller distance of the
/// two pairs forming the *smallest* sum, which Abraham et al. use as the
/// normalizer for `ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuartetSums {
    /// Pairing sums in descending order.
    pub sums: [f64; 3],
    /// `min` of the two pair distances that make up `sums[2]`.
    pub min_pair: f64,
}

/// Computes the sorted pairing sums of the quartet `(w, x, y, z)`.
///
/// # Panics
///
/// Panics if any index is out of bounds for `metric`.
pub fn quartet_sums<M: FiniteMetric>(
    metric: &M,
    w: usize,
    x: usize,
    y: usize,
    z: usize,
) -> QuartetSums {
    sums_of(
        metric.distance(w, x),
        metric.distance(y, z),
        metric.distance(w, y),
        metric.distance(x, z),
        metric.distance(w, z),
        metric.distance(x, y),
    )
}

/// The shared quartet kernel: pairing sums from the six pair distances.
///
/// Both the generic [`quartet_sums`] and the cache-tight row kernels of the
/// `_par` scans funnel through this function, so serial and parallel
/// statistics are bit-identical by construction.
#[inline]
pub(crate) fn sums_of(
    d_wx: f64,
    d_yz: f64,
    d_wy: f64,
    d_xz: f64,
    d_wz: f64,
    d_xy: f64,
) -> QuartetSums {
    // Each candidate: (sum, min of its two pair distances).
    let mut cands = [
        (d_wx + d_yz, d_wx.min(d_yz)),
        (d_wy + d_xz, d_wy.min(d_xz)),
        (d_wz + d_xy, d_wz.min(d_xy)),
    ];
    cands.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("pairing sums are comparable"));
    QuartetSums {
        sums: [cands[0].0, cands[1].0, cands[2].0],
        min_pair: cands[2].1,
    }
}

/// `ε` of a quartet given its pairing sums — the other half of the shared
/// kernel (see [`sums_of`]).
#[inline]
fn epsilon_of(q: QuartetSums) -> f64 {
    let gap = q.sums[0] - q.sums[1];
    if gap <= 0.0 {
        0.0
    } else if q.min_pair <= 0.0 {
        f64::INFINITY
    } else {
        gap / (2.0 * q.min_pair)
    }
}

/// Per-quartet treeness slack `ε` of Abraham et al.
///
/// With the pairing sums sorted `s1 ≥ s2 ≥ s3` and `m` the smaller pair
/// distance inside the smallest sum, `ε = (s1 − s2) / (2 m)`. A perfect tree
/// metric gives `ε = 0` for every quartet.
///
/// Degenerate quartets (where `m = 0`, e.g. duplicated points) return `0`
/// when the 4PC gap is also zero and `+∞` otherwise.
pub fn quartet_epsilon<M: FiniteMetric>(metric: &M, w: usize, x: usize, y: usize, z: usize) -> f64 {
    epsilon_of(quartet_sums(metric, w, x, y, z))
}

/// Checks whether `metric` satisfies 4PC on every quartet within an additive
/// tolerance `tol` on the gap `s1 − s2`.
///
/// Runs in `O(n⁴)`; intended for tests and small fixtures.
pub fn satisfies_four_point<M: FiniteMetric>(metric: &M, tol: f64) -> bool {
    let n = metric.len();
    for w in 0..n {
        for x in (w + 1)..n {
            for y in (x + 1)..n {
                for z in (y + 1)..n {
                    let q = quartet_sums(metric, w, x, y, z);
                    if q.sums[0] - q.sums[1] > tol {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Parallel [`satisfies_four_point`]: the quartet enumeration is blocked on
/// the outer index and spread over the `bcc-par` pool, with atomic early
/// exit as soon as any worker finds a violating quartet. Returns exactly
/// what the serial scan returns.
pub fn satisfies_four_point_par<M: FiniteMetric>(metric: &M, tol: f64) -> bool {
    let d = metric.to_matrix();
    let n = d.len();
    bcc_par::par_find_first(n, |w| {
        let row_w = &d.row(w)[..n];
        for x in (w + 1)..n {
            let row_x = &d.row(x)[..n];
            let d_wx = row_w[x];
            for y in (x + 1)..n {
                let row_y = &d.row(y)[..n];
                let (d_wy, d_xy) = (row_w[y], row_x[y]);
                for z in (y + 1)..n {
                    let q = sums_of(d_wx, row_y[z], d_wy, row_x[z], row_w[z], d_xy);
                    if q.sums[0] - q.sums[1] > tol {
                        return Some(());
                    }
                }
            }
        }
        None
    })
    .is_none()
}

/// Exact average quartet `ε` over all `C(n, 4)` quartets.
///
/// Infinite per-quartet values (degenerate quartets) are excluded from the
/// average. Returns `0` for spaces with fewer than four points (they are
/// trivially tree metrics).
///
/// Runs in `O(n⁴)` — fine up to a few hundred nodes; use
/// [`epsilon_avg_sampled`] beyond that.
pub fn epsilon_avg_exact<M: FiniteMetric>(metric: &M) -> f64 {
    let n = metric.len();
    if n < 4 {
        return 0.0;
    }
    // Accumulate one partial sum per outer index and fold them in order:
    // this fixes the floating-point reduction tree so the parallel variant
    // (same per-`w` partials, merged in the same order) is bit-identical.
    let (total, count) = (0..n)
        .map(|w| epsilon_partial_generic(metric, w))
        .fold((0.0, 0u64), |(t, c), (pt, pc)| (t + pt, c + pc));
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Sum and count of finite quartet `ε` over quartets whose smallest member
/// is `w`, via per-element [`FiniteMetric::distance`] access.
fn epsilon_partial_generic<M: FiniteMetric>(metric: &M, w: usize) -> (f64, u64) {
    let n = metric.len();
    let mut total = 0.0;
    let mut count = 0u64;
    for x in (w + 1)..n {
        for y in (x + 1)..n {
            for z in (y + 1)..n {
                let e = quartet_epsilon(metric, w, x, y, z);
                if e.is_finite() {
                    total += e;
                    count += 1;
                }
            }
        }
    }
    (total, count)
}

/// Sum and count of finite quartet `ε` over quartets whose smallest member
/// is `w`, as a cache-tight row kernel: the three active rows stay resident
/// while the innermost loop streams three contiguous slices, with no
/// per-element bounds assertion. Numerically identical to
/// [`epsilon_partial_generic`] (same values, same order, shared
/// [`sums_of`]/[`epsilon_of`] kernel).
fn epsilon_partial_rows(d: &DistanceMatrix, w: usize) -> (f64, u64) {
    let n = d.len();
    let row_w = &d.row(w)[..n];
    let mut total = 0.0;
    let mut count = 0u64;
    for x in (w + 1)..n {
        let row_x = &d.row(x)[..n];
        let d_wx = row_w[x];
        for y in (x + 1)..n {
            let row_y = &d.row(y)[..n];
            let (d_wy, d_xy) = (row_w[y], row_x[y]);
            for z in (y + 1)..n {
                let e = epsilon_of(sums_of(d_wx, row_y[z], d_wy, row_x[z], row_w[z], d_xy));
                if e.is_finite() {
                    total += e;
                    count += 1;
                }
            }
        }
    }
    (total, count)
}

/// Parallel [`epsilon_avg_exact`]: materializes the metric once, spreads the
/// outer quartet index over the `bcc-par` pool, and folds the per-index
/// partial sums in index order. Bit-identical to the serial scan for any
/// thread count (see `DESIGN.md`, "Deterministic parallel kernels").
pub fn epsilon_avg_exact_par<M: FiniteMetric>(metric: &M) -> f64 {
    let n = metric.len();
    if n < 4 {
        return 0.0;
    }
    let d = metric.to_matrix();
    let (total, count) = bcc_par::par_reduce(
        n,
        |w| epsilon_partial_rows(&d, w),
        (0.0, 0u64),
        |(t, c), (pt, pc)| (t + pt, c + pc),
    );
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Monte-Carlo estimate of the average quartet `ε` from `samples` random
/// quartets.
///
/// This is how `ε_avg` is evaluated for full-size datasets, where the exact
/// `C(n, 4)` enumeration (≈ 410 M quartets at `n = 317`) is wasteful: the
/// estimator converges to two decimal places within a few tens of thousands
/// of samples.
///
/// # Panics
///
/// Panics if `metric` has fewer than four points.
pub fn epsilon_avg_sampled<M: FiniteMetric, R: Rng>(
    metric: &M,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let n = metric.len();
    assert!(n >= 4, "sampled epsilon needs at least four points");
    let mut total = 0.0;
    let mut count = 0u64;
    for _ in 0..samples {
        let q = sample_quartet(n, rng);
        let e = quartet_epsilon(metric, q[0], q[1], q[2], q[3]);
        if e.is_finite() {
            total += e;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Exact maximum quartet `ε` (ignoring degenerate infinite quartets).
pub fn epsilon_max_exact<M: FiniteMetric>(metric: &M) -> f64 {
    let n = metric.len();
    let mut max = 0.0f64;
    for w in 0..n {
        for x in (w + 1)..n {
            for y in (x + 1)..n {
                for z in (y + 1)..n {
                    let e = quartet_epsilon(metric, w, x, y, z);
                    if e.is_finite() {
                        max = max.max(e);
                    }
                }
            }
        }
    }
    max
}

/// Parallel [`epsilon_max_exact`] on the `bcc-par` pool. `max` is an exact
/// (order-independent) reduction, so the result equals the serial scan's.
pub fn epsilon_max_exact_par<M: FiniteMetric>(metric: &M) -> f64 {
    let d = metric.to_matrix();
    let n = d.len();
    bcc_par::par_reduce(
        n,
        |w| {
            let row_w = &d.row(w)[..n];
            let mut max = 0.0f64;
            for x in (w + 1)..n {
                let row_x = &d.row(x)[..n];
                let d_wx = row_w[x];
                for y in (x + 1)..n {
                    let row_y = &d.row(y)[..n];
                    let (d_wy, d_xy) = (row_w[y], row_x[y]);
                    for z in (y + 1)..n {
                        let e = epsilon_of(sums_of(d_wx, row_y[z], d_wy, row_x[z], row_w[z], d_xy));
                        if e.is_finite() {
                            max = max.max(e);
                        }
                    }
                }
            }
            max
        },
        0.0f64,
        f64::max,
    )
}

/// Transforms an unbounded `ε_avg ∈ [0, ∞)` to the paper's bounded treeness
/// variable `ε*_avg = 1 − 1 / (1 + ε_avg) ∈ [0, 1)`.
pub fn epsilon_star(epsilon_avg: f64) -> f64 {
    assert!(epsilon_avg >= 0.0, "epsilon_avg must be non-negative");
    1.0 - 1.0 / (1.0 + epsilon_avg)
}

fn sample_quartet<R: Rng>(n: usize, rng: &mut R) -> [usize; 4] {
    // Rejection-sample four distinct indices; for n >= 4 this terminates
    // quickly (collision probability is tiny for the n used in practice).
    loop {
        let q = [
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(0..n),
        ];
        if q[0] != q[1]
            && q[0] != q[2]
            && q[0] != q[3]
            && q[1] != q[2]
            && q[1] != q[3]
            && q[2] != q[3]
        {
            return q;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistanceMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Star metric: d(i, j) = w[i] + w[j]. Induced by a star tree, so a
    /// perfect tree metric.
    fn star_metric(weights: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(weights.len(), |i, j| weights[i] + weights[j])
    }

    /// Points on a line: also a tree metric (path graph).
    fn line_metric(pos: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn star_metric_is_tree_metric() {
        let d = star_metric(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(satisfies_four_point(&d, 1e-12));
        assert_eq!(epsilon_avg_exact(&d), 0.0);
        assert_eq!(epsilon_max_exact(&d), 0.0);
    }

    #[test]
    fn line_metric_is_tree_metric() {
        let d = line_metric(&[0.0, 1.5, 4.0, 9.0, 11.0]);
        assert!(satisfies_four_point(&d, 1e-12));
        assert!(epsilon_avg_exact(&d) < 1e-12);
    }

    #[test]
    fn unit_square_violates_four_point() {
        // Corners of a unit square with Euclidean distances: the classic
        // non-tree metric (s1 = 2√2 diagonal sum vs s2 = 2 side sum).
        let d = DistanceMatrix::from_fn(4, |i, j| {
            let p = [(0.0f64, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
            let (xi, yi) = p[i];
            let (xj, yj) = p[j];
            (xi - xj).hypot(yi - yj)
        });
        assert!(!satisfies_four_point(&d, 1e-9));
        let e = quartet_epsilon(&d, 0, 1, 2, 3);
        // gap = 2√2 − 2, min pair distance in smallest sum... all side sums
        // are 2, diagonal sum is 2√2: sorted sums are [2√2, 2, 2].
        let expected = (2.0 * 2f64.sqrt() - 2.0) / 2.0;
        assert!((e - expected).abs() < 1e-9, "e = {e}, expected {expected}");
    }

    #[test]
    fn quartet_sums_sorted() {
        let d = star_metric(&[1.0, 2.0, 3.0, 4.0]);
        let q = quartet_sums(&d, 0, 1, 2, 3);
        assert!(q.sums[0] >= q.sums[1] && q.sums[1] >= q.sums[2]);
    }

    #[test]
    fn epsilon_is_permutation_invariant() {
        let d = DistanceMatrix::from_fn(4, |i, j| ((i + 1) * (j + 2)) as f64);
        let base = quartet_epsilon(&d, 0, 1, 2, 3);
        for perm in [[1, 0, 2, 3], [2, 3, 0, 1], [3, 1, 2, 0], [0, 2, 1, 3]] {
            let e = quartet_epsilon(&d, perm[0], perm[1], perm[2], perm[3]);
            assert!((e - base).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_quartet_with_gap_is_infinite() {
        // Two coincident points (distance 0) but a 4PC gap.
        let mut d = DistanceMatrix::new(4);
        d.set(0, 1, 0.0);
        d.set(2, 3, 0.0);
        d.set(0, 2, 1.0);
        d.set(0, 3, 5.0);
        d.set(1, 2, 9.0);
        d.set(1, 3, 2.0);
        let e = quartet_epsilon(&d, 0, 1, 2, 3);
        assert!(e.is_infinite());
        // ...and it must be excluded from the exact average.
        assert!(epsilon_avg_exact(&d).is_finite());
    }

    #[test]
    fn fewer_than_four_points_is_trivially_tree() {
        let d = DistanceMatrix::from_fn(3, |i, j| (i + j) as f64);
        assert_eq!(epsilon_avg_exact(&d), 0.0);
        assert!(satisfies_four_point(&d, 0.0));
    }

    #[test]
    fn sampled_epsilon_close_to_exact() {
        // A noisy metric where epsilon is strictly positive.
        let mut rng = StdRng::seed_from_u64(7);
        let d = DistanceMatrix::from_fn(12, |i, j| 1.0 + ((i * 31 + j * 17) % 13) as f64 / 3.0);
        let exact = epsilon_avg_exact(&d);
        let sampled = epsilon_avg_sampled(&d, 40_000, &mut rng);
        assert!(exact > 0.0);
        assert!(
            (sampled - exact).abs() / exact < 0.1,
            "sampled {sampled} too far from exact {exact}"
        );
    }

    #[test]
    #[should_panic(expected = "at least four")]
    fn sampled_epsilon_needs_four_points() {
        let d = DistanceMatrix::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        epsilon_avg_sampled(&d, 10, &mut rng);
    }

    #[test]
    fn epsilon_star_bounds() {
        assert_eq!(epsilon_star(0.0), 0.0);
        assert!((epsilon_star(1.0) - 0.5).abs() < 1e-12);
        assert!(epsilon_star(1e9) < 1.0);
        // Monotone.
        assert!(epsilon_star(0.2) < epsilon_star(0.4));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn epsilon_star_rejects_negative() {
        epsilon_star(-0.1);
    }

    #[test]
    fn parallel_scans_bit_identical_to_serial() {
        // A noisy non-tree metric with strictly positive epsilon.
        let d = DistanceMatrix::from_fn(14, |i, j| 1.0 + ((i * 31 + j * 17) % 13) as f64 / 3.0);
        for threads in [1, 2, 8] {
            bcc_par::set_threads(threads);
            assert_eq!(
                epsilon_avg_exact(&d).to_bits(),
                epsilon_avg_exact_par(&d).to_bits(),
                "threads = {threads}"
            );
            assert_eq!(
                epsilon_max_exact(&d).to_bits(),
                epsilon_max_exact_par(&d).to_bits(),
                "threads = {threads}"
            );
            assert_eq!(
                satisfies_four_point(&d, 1e-9),
                satisfies_four_point_par(&d, 1e-9)
            );
        }
        bcc_par::set_threads(0);
    }

    #[test]
    fn parallel_scans_on_tree_metric() {
        let d = star_metric(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(epsilon_avg_exact_par(&d), 0.0);
        assert_eq!(epsilon_max_exact_par(&d), 0.0);
        assert!(satisfies_four_point_par(&d, 1e-12));
        // Degenerate sizes short-circuit like the serial scans.
        let tiny = DistanceMatrix::new(3);
        assert_eq!(epsilon_avg_exact_par(&tiny), 0.0);
        assert!(satisfies_four_point_par(&tiny, 0.0));
    }
}
