use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::MetricError;

/// Dense symmetric matrix of pairwise `f64` values over `n` nodes.
///
/// Storage is a full `n × n` square kept symmetric by construction: setting
/// `(i, j)` also sets `(j, i)`. The diagonal is owned by the wrapper types
/// ([`DistanceMatrix`] keeps it at `0`, [`BandwidthMatrix`] at `+∞`).
///
/// ```
/// use bcc_metric::SymMatrix;
/// let mut m = SymMatrix::new(3, 0.0);
/// m.set(0, 2, 7.5);
/// assert_eq!(m.get(2, 0), 7.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymMatrix {
    len: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Creates an `n × n` symmetric matrix with every off-diagonal entry and
    /// the diagonal set to `fill`.
    pub fn new(len: usize, fill: f64) -> Self {
        SymMatrix {
            len,
            data: vec![fill; len * len],
        }
    }

    /// Number of nodes (matrix dimension).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the matrix covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.len && j < self.len, "index out of bounds");
        self.data[i * self.len + j]
    }

    /// Writes `value` at `(i, j)` and `(j, i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.len && j < self.len, "index out of bounds");
        self.data[i * self.len + j] = value;
        self.data[j * self.len + i] = value;
    }

    /// Borrows row `i` as a contiguous `&[f64]` of length [`len`](Self::len).
    ///
    /// `row(i)[j] == get(i, j)` for every `j`; the diagonal entry holds
    /// whatever the wrapper type fixed it to. This is the cache-tight access
    /// path for the hot kernels: the inner loops of Algorithm 1 and the
    /// quartet scans sweep row slices instead of paying an asserted
    /// 2-D index computation per element.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds (`debug_assert` with a friendly
    /// message in debug builds; the slice-bounds check backstops release).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.len, "row index out of bounds");
        &self.data[i * self.len..(i + 1) * self.len]
    }

    /// Iterates over the strict upper triangle as `(i, j, value)` with `i < j`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.len).flat_map(move |i| ((i + 1)..self.len).map(move |j| (i, j, self.get(i, j))))
    }

    /// Collects the strict-upper-triangle values into a vector.
    pub fn pair_values(&self) -> Vec<f64> {
        self.iter_pairs().map(|(_, _, v)| v).collect()
    }

    /// Validates that every off-diagonal entry is finite and satisfies `pred`.
    pub fn validate(&self, pred: impl Fn(f64) -> bool) -> Result<(), MetricError> {
        for (i, j, v) in self.iter_pairs() {
            if !v.is_finite() || !pred(v) {
                return Err(MetricError::InvalidValue { i, j, value: v });
            }
        }
        Ok(())
    }
}

/// Symmetric pairwise distances over `n` nodes, diagonal fixed at `0`.
///
/// This is the `(V, d)` of the paper once bandwidth has been passed through
/// the rational transform. Construct it directly for test fixtures or via
/// [`RationalTransform::distance_matrix`](crate::RationalTransform::distance_matrix)
/// for real data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    inner: SymMatrix,
}

impl DistanceMatrix {
    /// Creates a distance matrix over `len` nodes with all off-diagonal
    /// distances set to `0`.
    pub fn new(len: usize) -> Self {
        DistanceMatrix {
            inner: SymMatrix::new(len, 0.0),
        }
    }

    /// Builds a distance matrix from a closure giving the distance of each
    /// unordered pair `i < j`.
    ///
    /// ```
    /// use bcc_metric::DistanceMatrix;
    /// let d = DistanceMatrix::from_fn(4, |i, j| (i + j) as f64);
    /// assert_eq!(d.get(1, 3), 4.0);
    /// ```
    pub fn from_fn(len: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DistanceMatrix::new(len);
        for i in 0..len {
            for j in (i + 1)..len {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if the matrix covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Distance between `i` and `j` (`0` when `i == j`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            0.0
        } else {
            self.inner.get(i, j)
        }
    }

    /// Sets the distance of the pair `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or `i == j` (the diagonal is
    /// immutable).
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert_ne!(i, j, "diagonal of a distance matrix is fixed at zero");
        self.inner.set(i, j, value);
    }

    /// Borrows row `i` as a contiguous slice of distances from node `i` to
    /// every node (diagonal entry `0`). See [`SymMatrix::row`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        self.inner.row(i)
    }

    /// Iterates over unordered pairs `(i, j, d)` with `i < j`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.inner.iter_pairs()
    }

    /// Collects the strict-upper-triangle distances.
    pub fn pair_values(&self) -> Vec<f64> {
        self.inner.pair_values()
    }

    /// Checks non-negativity and finiteness of all pairwise distances.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidValue`] for the first entry that is
    /// negative, `NaN` or infinite.
    pub fn validate(&self) -> Result<(), MetricError> {
        self.inner.validate(|v| v >= 0.0)
    }

    /// Checks the triangle inequality within an additive tolerance `tol`.
    ///
    /// Returns the first violating triple `(i, j, via)` where
    /// `d(i, j) > d(i, via) + d(via, j) + tol`, or `None` when the matrix is a
    /// (semi-)metric.
    pub fn triangle_violation(&self, tol: f64) -> Option<(usize, usize, usize)> {
        let n = self.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let dij = self.get(i, j);
                for via in 0..n {
                    if via == i || via == j {
                        continue;
                    }
                    if dij > self.get(i, via) + self.get(via, j) + tol {
                        return Some((i, j, via));
                    }
                }
            }
        }
        None
    }

    /// Restricts the matrix to `nodes`, renumbering them `0..nodes.len()` in
    /// the given order.
    ///
    /// # Panics
    ///
    /// Panics if any index in `nodes` is out of bounds.
    pub fn restrict(&self, nodes: &[usize]) -> DistanceMatrix {
        DistanceMatrix::from_fn(nodes.len(), |a, b| self.get(nodes[a], nodes[b]))
    }
}

impl fmt::Display for DistanceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DistanceMatrix({} nodes)", self.len())?;
        for i in 0..self.len().min(8) {
            for j in 0..self.len().min(8) {
                write!(f, "{:9.3} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        if self.len() > 8 {
            writeln!(f, "... ({} more rows)", self.len() - 8)?;
        }
        Ok(())
    }
}

/// Symmetric pairwise bandwidth over `n` nodes, diagonal fixed at `+∞`.
///
/// Mirrors the paper's `BW(u, u) = ∞` convention so the rational transform
/// maps the diagonal to distance `0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthMatrix {
    inner: SymMatrix,
}

impl BandwidthMatrix {
    /// Creates a bandwidth matrix over `len` nodes with all off-diagonal
    /// bandwidths set to `0`.
    pub fn new(len: usize) -> Self {
        BandwidthMatrix {
            inner: SymMatrix::new(len, 0.0),
        }
    }

    /// Builds a bandwidth matrix from a closure over unordered pairs `i < j`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = BandwidthMatrix::new(len);
        for i in 0..len {
            for j in (i + 1)..len {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Builds a symmetric matrix from an asymmetric measurement matrix by
    /// averaging forward and reverse directions — exactly the preprocessing
    /// the paper applies to both PlanetLab datasets.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::DimensionMismatch`] if `forward` is not square,
    /// and [`MetricError::InvalidValue`] if any off-diagonal measurement is
    /// non-finite or negative.
    pub fn from_asymmetric(forward: &[Vec<f64>]) -> Result<Self, MetricError> {
        let n = forward.len();
        for row in forward {
            if row.len() != n {
                return Err(MetricError::DimensionMismatch {
                    left: n,
                    right: row.len(),
                });
            }
        }
        let mut m = BandwidthMatrix::new(n);
        #[allow(clippy::needless_range_loop)] // paired (i, j)/(j, i) access
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (forward[i][j], forward[j][i]);
                if !a.is_finite() || a < 0.0 {
                    return Err(MetricError::InvalidValue { i, j, value: a });
                }
                if !b.is_finite() || b < 0.0 {
                    return Err(MetricError::InvalidValue {
                        i: j,
                        j: i,
                        value: b,
                    });
                }
                m.set(i, j, 0.5 * (a + b));
            }
        }
        Ok(m)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if the matrix covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Bandwidth between `i` and `j` (`+∞` when `i == j`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            f64::INFINITY
        } else {
            self.inner.get(i, j)
        }
    }

    /// Sets the bandwidth of the pair `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or `i == j`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert_ne!(i, j, "diagonal of a bandwidth matrix is fixed at infinity");
        self.inner.set(i, j, value);
    }

    /// Iterates over unordered pairs `(i, j, bw)` with `i < j`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.inner.iter_pairs()
    }

    /// Collects the strict-upper-triangle bandwidths.
    pub fn pair_values(&self) -> Vec<f64> {
        self.inner.pair_values()
    }

    /// Checks positivity and finiteness of all pairwise bandwidths.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidValue`] for the first non-finite or
    /// non-positive off-diagonal entry (zero bandwidth would map to an
    /// infinite distance under the rational transform).
    pub fn validate(&self) -> Result<(), MetricError> {
        self.inner.validate(|v| v > 0.0)
    }

    /// Restricts the matrix to `nodes`, renumbering them `0..nodes.len()`.
    ///
    /// # Panics
    ///
    /// Panics if any index in `nodes` is out of bounds.
    pub fn restrict(&self, nodes: &[usize]) -> BandwidthMatrix {
        BandwidthMatrix::from_fn(nodes.len(), |a, b| self.get(nodes[a], nodes[b]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_matrix_sets_both_triangles() {
        let mut m = SymMatrix::new(4, 0.0);
        m.set(1, 3, 2.5);
        assert_eq!(m.get(3, 1), 2.5);
        assert_eq!(m.get(1, 3), 2.5);
    }

    #[test]
    fn sym_matrix_pair_iteration_covers_upper_triangle() {
        let m = SymMatrix::new(4, 1.0);
        let pairs: Vec<_> = m.iter_pairs().collect();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.iter().all(|&(i, j, v)| i < j && v == 1.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sym_matrix_get_out_of_bounds_panics() {
        SymMatrix::new(2, 0.0).get(0, 2);
    }

    #[test]
    fn row_matches_get() {
        let mut m = SymMatrix::new(3, 0.0);
        m.set(0, 2, 7.0);
        m.set(1, 2, 3.0);
        for i in 0..3 {
            let row = m.row(i);
            assert_eq!(row.len(), 3);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m.get(i, j), "({i}, {j})");
            }
        }
    }

    #[test]
    fn distance_row_has_zero_diagonal() {
        let mut d = DistanceMatrix::new(3);
        d.set(0, 1, 2.0);
        d.set(1, 2, 4.0);
        assert_eq!(d.row(1), &[2.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn row_out_of_bounds_panics() {
        SymMatrix::new(2, 0.0).row(2);
    }

    #[test]
    fn distance_diagonal_is_zero() {
        let d = DistanceMatrix::from_fn(3, |_, _| 5.0);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(d.get(0, 2), 5.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn distance_diagonal_set_panics() {
        DistanceMatrix::new(3).set(1, 1, 4.0);
    }

    #[test]
    fn bandwidth_diagonal_is_infinite() {
        let b = BandwidthMatrix::new(2);
        assert_eq!(b.get(0, 0), f64::INFINITY);
    }

    #[test]
    fn from_asymmetric_averages() {
        let fwd = vec![
            vec![0.0, 10.0, 30.0],
            vec![20.0, 0.0, 50.0],
            vec![30.0, 70.0, 0.0],
        ];
        let m = BandwidthMatrix::from_asymmetric(&fwd).unwrap();
        assert_eq!(m.get(0, 1), 15.0);
        assert_eq!(m.get(1, 2), 60.0);
        assert_eq!(m.get(0, 2), 30.0);
    }

    #[test]
    fn from_asymmetric_rejects_ragged() {
        let fwd = vec![vec![0.0, 1.0], vec![1.0]];
        assert!(matches!(
            BandwidthMatrix::from_asymmetric(&fwd),
            Err(MetricError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_asymmetric_rejects_negative() {
        let fwd = vec![vec![0.0, -1.0], vec![1.0, 0.0]];
        assert!(matches!(
            BandwidthMatrix::from_asymmetric(&fwd),
            Err(MetricError::InvalidValue { .. })
        ));
    }

    #[test]
    fn validate_catches_nan() {
        let mut d = DistanceMatrix::new(3);
        d.set(0, 1, f64::NAN);
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_catches_negative_distance() {
        let mut d = DistanceMatrix::new(2);
        d.set(0, 1, -1.0);
        assert!(d.validate().is_err());
    }

    #[test]
    fn bandwidth_validate_rejects_zero() {
        let b = BandwidthMatrix::new(2); // off-diagonal defaults to 0
        assert!(b.validate().is_err());
    }

    #[test]
    fn triangle_violation_detects() {
        let mut d = DistanceMatrix::new(3);
        d.set(0, 1, 1.0);
        d.set(1, 2, 1.0);
        d.set(0, 2, 10.0);
        assert_eq!(d.triangle_violation(1e-9), Some((0, 2, 1)));
    }

    #[test]
    fn triangle_holds_for_line_metric() {
        // Points on a line at 0, 1, 3: distances are |differences|.
        let pos = [0.0f64, 1.0, 3.0];
        let d = DistanceMatrix::from_fn(3, |i, j| (pos[i] - pos[j]).abs());
        assert_eq!(d.triangle_violation(1e-9), None);
    }

    #[test]
    fn restrict_renumbers() {
        let d = DistanceMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        let r = d.restrict(&[3, 1]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0, 1), d.get(3, 1));
    }

    #[test]
    fn display_truncates() {
        let d = DistanceMatrix::new(20);
        let s = d.to_string();
        assert!(s.contains("more rows"));
    }
}
