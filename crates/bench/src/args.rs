//! Shared command-line parsing for the figure/bench binaries.
//!
//! Every binary used to hand-roll the same `--flag` / `--key value` scan;
//! this module centralizes it. The grammar stays deliberately tiny — no
//! short options, no `=` syntax — matching what the binaries documented
//! all along:
//!
//! ```text
//! bcc-bench chaos --smoke --out target --seed 42
//! ```

use std::fmt::Display;
use std::str::FromStr;

/// The process arguments of a bench binary, with typed accessors.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    argv: Vec<String>,
}

impl BenchArgs {
    /// Captures the process arguments (program name excluded).
    pub fn from_env() -> Self {
        BenchArgs {
            argv: std::env::args().skip(1).collect(),
        }
    }

    /// Wraps an explicit argument list (for tests).
    pub fn new(argv: Vec<String>) -> Self {
        BenchArgs { argv }
    }

    /// Whether the boolean flag `name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.argv.iter().any(|a| a == name)
    }

    /// The token following `name`, if both are present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.argv
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    /// `Some(value)` when `name` is present (falling back to `default`
    /// when it is the last token), `None` when absent. This is the shape
    /// `--json` options use: present-without-value means stdout (`-`).
    pub fn value_or(&self, name: &str, default: &str) -> Option<String> {
        self.argv.iter().position(|a| a == name).map(|i| {
            self.argv
                .get(i + 1)
                .cloned()
                .unwrap_or_else(|| default.to_string())
        })
    }

    /// Parses the value of `name` as a `T`.
    ///
    /// # Errors
    ///
    /// When `name` is present without a following token, or the token does
    /// not parse as `T`. An absent flag is `Ok(None)`.
    pub fn parsed<T>(&self, name: &str) -> Result<Option<T>, String>
    where
        T: FromStr,
        T::Err: Display,
    {
        match self.argv.iter().position(|a| a == name) {
            None => Ok(None),
            Some(i) => {
                let raw = self
                    .argv
                    .get(i + 1)
                    .ok_or_else(|| format!("{name} needs a value"))?;
                raw.parse()
                    .map(Some)
                    .map_err(|e| format!("bad {name}: {e}"))
            }
        }
    }

    /// [`BenchArgs::parsed`] with a default for an absent flag.
    ///
    /// # Errors
    ///
    /// Same as [`BenchArgs::parsed`].
    pub fn parsed_or<T>(&self, name: &str, default: T) -> Result<T, String>
    where
        T: FromStr,
        T::Err: Display,
    {
        Ok(self.parsed(name)?.unwrap_or(default))
    }

    /// Rejects tokens that are neither a known boolean `flag`, a known
    /// value-taking option, nor the value position of one.
    ///
    /// # Errors
    ///
    /// Names the first unknown token.
    pub fn expect_known(&self, flags: &[&str], values: &[&str]) -> Result<(), String> {
        let mut i = 0;
        while i < self.argv.len() {
            let token = self.argv[i].as_str();
            if flags.contains(&token) {
                i += 1;
            } else if values.contains(&token) {
                i += 2; // skip the value slot (may be absent at the end)
            } else {
                return Err(format!("unknown flag {token:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> BenchArgs {
        BenchArgs::new(s.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_and_values() {
        let a = args(&["--smoke", "--seed", "42", "--out", "target"]);
        assert!(a.flag("--smoke"));
        assert!(!a.flag("--paper"));
        assert_eq!(a.value("--seed"), Some("42"));
        assert_eq!(a.value("--missing"), None);
        assert_eq!(a.parsed::<u64>("--seed"), Ok(Some(42)));
        assert_eq!(a.parsed::<u64>("--missing"), Ok(None));
        assert_eq!(a.parsed_or::<usize>("--steps", 24), Ok(24));
        assert_eq!(a.value_or("--out", "-"), Some("target".to_string()));
        assert_eq!(a.value_or("--json", "-"), None);
    }

    #[test]
    fn trailing_value_flag_falls_back() {
        let a = args(&["--json"]);
        assert_eq!(a.value_or("--json", "-"), Some("-".to_string()));
        assert!(
            a.parsed::<u64>("--json").is_err(),
            "typed access still errors"
        );
    }

    #[test]
    fn bad_parse_is_an_error() {
        let a = args(&["--seed", "nope"]);
        let err = a.parsed::<u64>("--seed").unwrap_err();
        assert!(err.contains("bad --seed"), "{err}");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let a = args(&["--smoke", "--seed", "1", "--bogus"]);
        a.expect_known(&["--smoke"], &["--seed"]).unwrap_err();
        a.expect_known(&["--smoke", "--bogus"], &["--seed"])
            .unwrap();
    }
}
