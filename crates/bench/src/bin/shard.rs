//! `shard` — scatter–gather coordinator validation and scaling study of
//! the `bcc-shard` sharded serving layer, checked in as
//! `BENCH_shard.json`.
//!
//! ```sh
//! # Full sweep: 200 chaos seeds + the shard-count scaling study:
//! cargo run --release -p bcc-bench --bin shard
//!
//! # CI smoke sweep (byte-stable BENCH_shard.json):
//! cargo run --release -p bcc-bench --bin shard -- --smoke
//!
//! # One seed, saving its replay artifact:
//! cargo run --release -p bcc-bench --bin shard -- --seed 3 \
//!     --save tests/chaos_corpus/shard/chaos-seed3.json
//! ```
//!
//! Two measurements:
//!
//! - **Chaos sweep** — [`bcc_shard::harness::shard_chaos`] over many
//!   seeds: churn schedules with deterministic shard-partition windows
//!   drive an unsharded baseline and coordinators at shard counts
//!   {1, 2, 4} in lockstep. The binary exits non-zero on any stale cached
//!   serve or any answer that diverges from the unsharded baseline.
//! - **Scaling study** — a hierarchical block universe (fast inside a
//!   group, medium across sibling groups, slow across super-groups: an
//!   exact anchor-tree hierarchy, so contiguous shard plans align with
//!   subtrees at every shard count) serves an identical churn + query
//!   stream at S ∈ {1, 2, 4}. Costs are *logical* (label-distance
//!   evaluations), so the study is exactly reproducible: coordinator
//!   overhead on shard-local queries (the prune certificates paid on top
//!   of the unsharded kernel work) must stay ≤ 10 %, and churn must stay
//!   region-local (a churn op touches the owning shard's region and only
//!   rarely any other).
//!
//! The JSON report contains only deterministic counters — never
//! wall-clock — so two runs at the same arguments produce byte-identical
//! files.

use std::process::ExitCode;

use bcc_bench::BenchArgs;
use bcc_core::BandwidthClasses;
use bcc_metric::{BandwidthMatrix, NodeId, RationalTransform};
use bcc_service::ServiceConfig;
use bcc_shard::harness::{
    generate_shard_schedule, shard_chaos, ShardArtifact, ShardChaosConfig, SHARD_COUNTS,
};
use bcc_shard::{CoordOutcome, Coordinator, ShardPlan};
use bcc_simnet::SystemConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 2011;

/// FNV-1a offset basis / prime — the digest discipline shared with the
/// harnesses, applied over per-seed digests and per-query answers.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Aggregated chaos-sweep counters.
#[derive(Default)]
struct Sweep {
    seeds: u64,
    queries: u64,
    exact: u64,
    degraded: u64,
    cache_hits: u64,
    pruned: u64,
    stale_hits: u64,
    divergences: u64,
    digest: u64,
}

fn sweep(seeds: u64, cfg: &ShardChaosConfig) -> Sweep {
    let mut s = Sweep {
        digest: FNV_OFFSET,
        ..Sweep::default()
    };
    for seed in 0..seeds {
        let r = shard_chaos(seed, cfg);
        s.seeds += 1;
        s.queries += r.queries;
        s.exact += r.exact;
        s.degraded += r.degraded;
        s.cache_hits += r.cache_hits;
        s.pruned += r.pruned;
        s.stale_hits += r.stale_hits;
        s.divergences += r.divergences;
        s.digest = fnv1a(s.digest, &r.digest.to_le_bytes());
        if (seed + 1) % 50 == 0 {
            println!("  chaos {} / {seeds} seeds", seed + 1);
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Scaling study
// ---------------------------------------------------------------------------

/// One shard count's scaling measurements over the shared stream.
struct Scaling {
    shards: usize,
    /// Per-query (consulted, work_units) of the uncached measurement pass.
    costs: Vec<(usize, u64)>,
    /// Digest over the ordered answer stream — must match across shard
    /// counts.
    answers_digest: u64,
    cache_hits: u64,
    pruned: u64,
    forwarded: u64,
    merge_candidates: u64,
    /// Churn ops applied and how many shard regions each touched.
    churn_ops: u64,
    region_touches: u64,
}

/// The scaling universe: four equal groups of contiguous ids arranged as
/// a two-level hierarchy — 100 Mbps inside a group, 15 Mbps between
/// sibling groups of a super-group, 5 Mbps across super-groups. The
/// distance matrix is an exact tree metric, so the anchor tree recovers
/// the hierarchy and [`ShardPlan::contiguous`] aligns shards with anchor
/// subtrees at every shard count in {1, 2, 4}: a b = 59 query ball
/// (radius 2·100/60 ≈ 3.3) stays inside one group — shard-local at both
/// S = 2 and S = 4, every other shard pruned — while a b = 24 ball
/// (radius 8) spans one super-group (sibling distance 100/15 ≈ 6.7):
/// shard-local at S = 2, a genuine two-shard scatter–merge at S = 4.
/// Nothing crosses super-groups (distance 20).
fn block_bandwidth(universe: usize) -> BandwidthMatrix {
    let group = universe / 4;
    BandwidthMatrix::from_fn(universe, |i, j| {
        if i == j || i / group == j / group {
            100.0
        } else if i / (2 * group) == j / (2 * group) {
            15.0
        } else {
            5.0
        }
    })
}

/// Runs the shared churn + query stream at one shard count. Everything is
/// derived from `SEED`, so every shard count sees the identical stream.
fn scaling_run(universe: usize, shards: usize, churn_steps: usize, queries: usize) -> Scaling {
    let classes = BandwidthClasses::new(vec![25.0, 60.0], RationalTransform::default());
    let mut coord = Coordinator::new(
        block_bandwidth(universe),
        SystemConfig::new(classes),
        ShardPlan::contiguous(universe, shards),
        ServiceConfig::default(),
    )
    .expect("valid scaling deployment");
    for h in 0..universe {
        coord.join(NodeId::new(h)).expect("join fresh host");
    }

    let mut out = Scaling {
        shards,
        costs: Vec::with_capacity(queries),
        answers_digest: FNV_OFFSET,
        cache_hits: 0,
        pruned: 0,
        forwarded: 0,
        merge_candidates: 0,
        churn_ops: 0,
        region_touches: 0,
    };

    // Churn phase: the shared schedule, counting how many shard regions
    // each op touches (digest moved) — the locality measurement.
    let schedule = generate_shard_schedule(SEED, universe, churn_steps);
    for event in schedule {
        let before: Vec<u64> = coord.shards().iter().map(|s| s.region().digest()).collect();
        let applied = match event {
            bcc_shard::harness::ShardEvent::Join(h) => coord.join(NodeId::new(h)),
            bcc_shard::harness::ShardEvent::Leave(h) => coord.leave(NodeId::new(h)),
            bcc_shard::harness::ShardEvent::Crash(h) => coord.crash(NodeId::new(h)),
            bcc_shard::harness::ShardEvent::Recover(h) => coord.recover(NodeId::new(h)),
        };
        if applied.is_err() {
            continue; // benign skip, same as the harness
        }
        out.churn_ops += 1;
        out.region_touches += coord
            .shards()
            .iter()
            .zip(&before)
            .filter(|(s, &b)| s.region().digest() != b)
            .count() as u64;
    }

    // Query phase. Two passes per query: a cached serve (real traffic —
    // feeds hit-rate and per-shard gauges) and an uncached measurement
    // pass whose work_units are the logical cost the overhead comparison
    // uses (cache hits would otherwise hide the scatter cost).
    let live: Vec<NodeId> = coord.active().collect();
    let mut qrng = StdRng::seed_from_u64(SEED ^ 0x0DD5_CA1E);
    for _ in 0..queries {
        let start = live[qrng.gen_range(0..live.len())];
        let k = [2usize, 3, 4][qrng.gen_range(0..3usize)];
        let b = [24.0f64, 59.0][qrng.gen_range(0..2usize)];
        let _ = coord.cluster_near(start, k, b).expect("live start");
        let resp = coord
            .cluster_near_uncached(start, k, b)
            .expect("live start");
        out.costs.push((resp.consulted, resp.work_units));
        let line = format!(
            "{}|{}|{}|{:?}\n",
            start.index(),
            k,
            b,
            resp.outcome.cluster()
        );
        out.answers_digest = fnv1a(out.answers_digest, line.as_bytes());
        if let CoordOutcome::Degraded { .. } = resp.outcome {
            panic!("scaling stream degraded with every shard reachable");
        }
    }

    out.cache_hits = coord.cache_stats().hits;
    let stats = coord.stats();
    out.pruned = stats.pruned;
    for sh in coord.shards() {
        out.forwarded += sh.stats().forwarded;
        out.merge_candidates += sh.stats().merge_candidates;
    }
    out
}

/// Coordinator overhead on shard-local queries: for queries the sharded
/// run answered from a single shard (`consulted == 1`), compare its total
/// work against the unsharded (S = 1) work on the very same queries. The
/// difference is pure coordination: the boundary prune certificates.
fn local_overhead_percent(sharded: &Scaling, unsharded: &Scaling) -> (u64, u64, u64, f64) {
    let mut local = 0u64;
    let mut local_work = 0u64;
    let mut base_work = 0u64;
    for (i, &(consulted, work)) in sharded.costs.iter().enumerate() {
        if consulted == 1 {
            local += 1;
            local_work += work;
            base_work += unsharded.costs[i].1;
        }
    }
    let overhead = if base_work == 0 {
        0.0
    } else {
        100.0 * (local_work as f64 - base_work as f64) / base_work as f64
    };
    (local, local_work, base_work, overhead)
}

fn run() -> Result<ExitCode, String> {
    let args = BenchArgs::from_env();
    args.expect_known(&["--smoke"], &["--json", "--seed", "--save"])?;
    let smoke = args.flag("--smoke");
    let json_path = args
        .value("--json")
        .unwrap_or("BENCH_shard.json")
        .to_string();

    let chaos_cfg = ShardChaosConfig::default();

    // Single-seed mode: run (and optionally save) one replay artifact.
    if let Some(seed) = args.parsed::<u64>("--seed")? {
        let (artifact, report) = ShardArtifact::capture(seed, &chaos_cfg);
        println!(
            "seed {seed}: {} queries, {} exact, {} degraded, {} cache hits, \
             {} pruned, digest {:016x}",
            report.queries,
            report.exact,
            report.degraded,
            report.cache_hits,
            report.pruned,
            report.digest,
        );
        if let Some(path) = args.value("--save") {
            std::fs::write(path, artifact.to_json()).map_err(|e| format!("write {path}: {e}"))?;
            println!("saved shard artifact to {path}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    // Deterministic logical time for span durations: the obs layer never
    // contributes wall-clock to anything this binary writes.
    bcc_obs::set_logical_time(1_000);

    let (chaos_seeds, universe, churn_steps, queries) = if smoke {
        (16u64, 40, 24, 48)
    } else {
        (200u64, 64, 48, 128)
    };

    println!("=== shard — scatter–gather coordination over anchor-tree regions ===");
    println!(
        "threads = {}, smoke = {smoke}, chaos universe = {}, scaling universe = {universe}",
        bcc_par::current_threads(),
        chaos_cfg.universe,
    );
    println!();

    let start = std::time::Instant::now();
    let s = sweep(chaos_seeds, &chaos_cfg);
    println!(
        "chaos: {} seeds, {} queries ({} exact / {} degraded over shard counts \
         {{1,2,4}}), {} cache hits, {} pruned, {} stale, {} divergences",
        s.seeds,
        s.queries,
        s.exact,
        s.degraded,
        s.cache_hits,
        s.pruned,
        s.stale_hits,
        s.divergences,
    );

    // Scaling study over the identical stream per shard count.
    let runs: Vec<Scaling> = SHARD_COUNTS
        .iter()
        .map(|&shards| scaling_run(universe, shards, churn_steps, queries))
        .collect();
    for r in &runs[1..] {
        if r.answers_digest != runs[0].answers_digest {
            return Err(format!(
                "scaling answers diverged: S={} digest {:016x}, S=1 digest {:016x}",
                r.shards, r.answers_digest, runs[0].answers_digest
            ));
        }
    }

    let mut scaling_json = Vec::new();
    let mut worst_overhead = 0.0f64;
    for r in &runs {
        let (local, local_work, base_work, overhead) = local_overhead_percent(r, &runs[0]);
        let total_work: u64 = r.costs.iter().map(|&(_, w)| w).sum();
        let locality = r.region_touches as f64 / r.churn_ops.max(1) as f64;
        println!(
            "S={}: work {total_work} evals over {} queries ({local} shard-local, \
             overhead {overhead:.2}%), {} cache hits, {} pruned, {} forwarded, \
             churn touches {locality:.2} regions/op",
            r.shards,
            r.costs.len(),
            r.cache_hits,
            r.pruned,
            r.forwarded,
        );
        if r.shards > 1 {
            worst_overhead = worst_overhead.max(overhead);
            if local == 0 {
                return Err(format!(
                    "S={}: no shard-local queries — the overhead bound is vacuous",
                    r.shards
                ));
            }
        }
        scaling_json.push(format!(
            "{{\"shards\": {}, \"queries\": {}, \"work_units\": {total_work}, \
             \"local_queries\": {local}, \"local_work_units\": {local_work}, \
             \"unsharded_local_work_units\": {base_work}, \
             \"local_overhead_percent\": {overhead:.2}, \"cache_hits\": {}, \
             \"pruned\": {}, \"forwarded\": {}, \"merge_candidates\": {}, \
             \"churn_ops\": {}, \"region_touches\": {}, \
             \"regions_per_churn_op\": {locality:.3}}}",
            r.shards,
            r.costs.len(),
            r.cache_hits,
            r.pruned,
            r.forwarded,
            r.merge_candidates,
            r.churn_ops,
            r.region_touches,
        ));
    }
    println!("sweep finished in {:.1?}", start.elapsed());
    println!();

    let json = format!(
        "{{\n  \"bench\": \"shard\",\n  \"smoke\": {smoke},\n  \"chaos\": \
         {{\"seeds\": {}, \"universe\": {}, \"steps\": {}, \"queries\": {}, \
         \"exact\": {}, \"degraded\": {}, \"cache_hits\": {}, \"pruned\": {}, \
         \"stale_hits\": {}, \"divergences\": {}, \"digest\": \"{:016x}\"}},\n  \
         \"scaling\": {{\"universe\": {universe}, \"churn_steps\": {churn_steps}, \
         \"shard_counts\": [\n    {}\n  ]}}\n}}\n",
        s.seeds,
        chaos_cfg.universe,
        chaos_cfg.steps,
        s.queries,
        s.exact,
        s.degraded,
        s.cache_hits,
        s.pruned,
        s.stale_hits,
        s.divergences,
        s.digest,
        scaling_json.join(",\n    "),
    );
    if json_path == "-" {
        println!("{json}");
    } else {
        std::fs::write(&json_path, &json).map_err(|e| format!("write {json_path}: {e}"))?;
        println!("wrote {json_path}");
    }

    if s.stale_hits != 0 {
        return Err(format!("{} stale cached serve(s)", s.stale_hits));
    }
    if s.divergences != 0 {
        return Err(format!(
            "{} answer(s) diverged from the unsharded baseline",
            s.divergences
        ));
    }
    if s.degraded == 0 || s.cache_hits == 0 || s.pruned == 0 {
        return Err(format!(
            "chaos sweep never exercised the full coordination surface: \
             degraded {}, cache_hits {}, pruned {}",
            s.degraded, s.cache_hits, s.pruned
        ));
    }
    if worst_overhead > 10.0 {
        return Err(format!(
            "coordinator overhead on shard-local queries is {worst_overhead:.2}% (bound: 10%)"
        ));
    }
    println!(
        "all shard oracles held across {} chaos seeds; worst shard-local overhead {:.2}%",
        s.seeds, worst_overhead
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("shard: {e}");
            ExitCode::FAILURE
        }
    }
}
