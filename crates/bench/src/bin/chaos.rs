//! Deterministic chaos runner: schedule exploration, shrinking and replay
//! for the decentralized clustering stack (see `bcc_simnet::chaos`).
//!
//! ```sh
//! # Explore 1000 seeds (the default), stop at the first violation:
//! cargo run --release -p bcc-bench --bin chaos
//!
//! # CI smoke sweep (~200 schedules):
//! cargo run --release -p bcc-bench --bin chaos -- --smoke
//!
//! # One seed, verbosely:
//! cargo run --release -p bcc-bench --bin chaos -- --seed 42
//!
//! # Re-execute a failure artifact bit-identically:
//! cargo run --release -p bcc-bench --bin chaos -- --replay chaos-failure-42.json
//!
//! # Record a passing seed as a regression artifact:
//! cargo run --release -p bcc-bench --bin chaos -- --seed 7 --save tests/chaos_corpus/seed7.json
//! ```
//!
//! On a violation the schedule is shrunk to a minimal failing prefix and
//! written as `chaos-failure-<seed>.json` (override the directory with
//! `--out <dir>`); the process exits with status 1. `--nemesis <name>`
//! enables a deliberate state-corruption hook (e.g. `crt-stale`) to prove
//! the oracles catch broken builds.

use std::process::ExitCode;

use bcc_bench::BenchArgs;
use bcc_simnet::chaos::{capture, ChaosConfig, ReplayArtifact};

struct Args {
    seeds: u64,
    seed: Option<u64>,
    steps: usize,
    universe: usize,
    replay: Option<String>,
    nemesis: Option<String>,
    save: Option<String>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let argv = BenchArgs::from_env();
    argv.expect_known(
        &["--smoke"],
        &[
            "--seeds",
            "--seed",
            "--steps",
            "--universe",
            "--replay",
            "--nemesis",
            "--save",
            "--out",
        ],
    )?;
    Ok(Args {
        seeds: argv.parsed_or("--seeds", if argv.flag("--smoke") { 200 } else { 1000 })?,
        seed: argv.parsed("--seed")?,
        steps: argv.parsed_or("--steps", ChaosConfig::default().steps)?,
        universe: argv.parsed_or("--universe", ChaosConfig::default().universe)?,
        replay: argv.value("--replay").map(str::to_string),
        nemesis: argv.value("--nemesis").map(str::to_string),
        save: argv.value("--save").map(str::to_string),
        out: argv.value("--out").unwrap_or(".").to_string(),
    })
}

fn replay_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let artifact = ReplayArtifact::from_json(&text)?;
    println!(
        "replaying {path}: seed {}, universe {}, {} events{}",
        artifact.seed,
        artifact.universe,
        artifact.schedule.len(),
        match &artifact.nemesis {
            Some(n) => format!(", nemesis {n}"),
            None => String::new(),
        }
    );
    artifact.replay()?;
    match &artifact.violation {
        Some(v) => println!("reproduced bit-identically: {v}"),
        None => println!(
            "reproduced bit-identically: passed, final digest {:?}",
            artifact.final_digest
        ),
    }
    Ok(())
}

fn run_seed(seed: u64, args: &Args) -> Result<bool, String> {
    let cfg = ChaosConfig {
        universe: args.universe,
        steps: args.steps,
    };
    let artifact = capture(seed, &cfg, args.nemesis.as_deref())?;
    if let Some(path) = &args.save {
        std::fs::write(path, artifact.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        println!("saved seed {seed} artifact to {path}");
    }
    match &artifact.violation {
        None => Ok(true),
        Some(v) => {
            let path = format!("{}/chaos-failure-{seed}.json", args.out);
            std::fs::write(&path, artifact.to_json()).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("seed {seed} VIOLATION: {v}");
            eprintln!(
                "shrunk to {} events; replay artifact written to {path}",
                artifact.schedule.len()
            );
            eprintln!("re-execute with: bcc-bench chaos --replay {path}");
            Ok(false)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if let Some(path) = &args.replay {
        replay_file(path)?;
        return Ok(ExitCode::SUCCESS);
    }
    let start = std::time::Instant::now();
    let seeds: Vec<u64> = match args.seed {
        Some(s) => vec![s],
        None => (0..args.seeds).collect(),
    };
    println!(
        "chaos: {} schedule(s), universe {}, {} steps each{}",
        seeds.len(),
        args.universe,
        args.steps,
        match &args.nemesis {
            Some(n) => format!(", nemesis {n}"),
            None => String::new(),
        }
    );
    for (done, &seed) in seeds.iter().enumerate() {
        if !run_seed(seed, &args)? {
            return Ok(ExitCode::FAILURE);
        }
        if (done + 1) % 100 == 0 {
            println!("  {} / {} seeds clean", done + 1, seeds.len());
        }
    }
    println!(
        "all {} schedule(s) passed every oracle in {:.1?}",
        seeds.len(),
        start.elapsed()
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("chaos: {e}");
            ExitCode::from(2)
        }
    }
}
