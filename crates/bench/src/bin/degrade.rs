//! `degrade` — graceful-degradation validation of the budgeted
//! `bcc-service` serving layer, checked in as `BENCH_degrade.json`.
//!
//! ```sh
//! # Full sweep: 1000 slow-lane seeds + 200 stall seeds, replay spot checks:
//! cargo run --release -p bcc-bench --bin degrade
//!
//! # CI smoke sweep (byte-stable BENCH_degrade.json):
//! cargo run --release -p bcc-bench --bin degrade -- --smoke
//!
//! # One seed, saving its replay artifact:
//! cargo run --release -p bcc-bench --bin degrade -- --seed 3 \
//!     --nemesis slow-lane --save tests/chaos_corpus/degrade/slow-lane-seed3.json
//! ```
//!
//! Every seed runs [`bcc_service::degrade_chaos`]: a churn-and-fault
//! schedule executes under a work-cost nemesis (`slow-lane` inflates the
//! per-pair cost 8–128×, `stall` saturates it) while a budgeted repeated
//! workload hammers the service. The binary enforces the degradation
//! oracles over the whole sweep and exits non-zero on any violation:
//!
//! - zero unlabeled degraded responses (every non-exact answer carries its
//!   [`bcc_service::Tier`], and every `Exact` answer bit-matches a fresh
//!   unbudgeted recomputation — so no stale answer is ever served as
//!   exact);
//! - zero stuck-open breakers (every lane re-closes within the bounded
//!   recovery window once the nemesis ends);
//! - replay spot checks: captured artifacts re-execute bit-identically
//!   under 1, 2 and 8 `bcc-par` threads.
//!
//! The JSON report contains only deterministic counters (tier mix,
//! breaker transitions, shed rates, digest-of-digests) — never wall-clock
//! — so two runs at the same arguments produce byte-identical files.

use std::process::ExitCode;

use bcc_bench::BenchArgs;
use bcc_service::{degrade_chaos, DegradeArtifact, DegradeChaosConfig, DegradeNemesis};

/// FNV-1a offset basis / prime — the same digest discipline the harness
/// uses for response streams, applied here over per-seed run digests.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fold_digest(mut h: u64, seed_digest: u64) -> u64 {
    for b in seed_digest.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Aggregated sweep counters for one nemesis.
#[derive(Default)]
struct Sweep {
    seeds: u64,
    responses: u64,
    exact: u64,
    stale_cache: u64,
    partial: u64,
    submitted: u64,
    breaker_opened: u64,
    breaker_closed: u64,
    breaker_shed: u64,
    unlabeled_degraded: u64,
    stuck_open: u64,
    digest: u64,
}

fn sweep(nemesis: DegradeNemesis, seeds: u64, cfg: &DegradeChaosConfig) -> Sweep {
    let cfg = DegradeChaosConfig { nemesis, ..*cfg };
    let mut s = Sweep {
        digest: FNV_OFFSET,
        ..Sweep::default()
    };
    for seed in 0..seeds {
        let r = degrade_chaos(seed, &cfg);
        s.seeds += 1;
        s.responses += r.responses;
        s.exact += r.exact;
        s.stale_cache += r.stale_cache;
        s.partial += r.partial;
        s.submitted += r.service.submitted;
        s.breaker_opened += r.breaker.opened;
        s.breaker_closed += r.breaker.closed;
        s.breaker_shed += r.breaker.shed;
        s.unlabeled_degraded += r.unlabeled_degraded;
        s.stuck_open += r.stuck_open;
        s.digest = fold_digest(s.digest, r.digest);
        if (seed + 1) % 200 == 0 {
            println!("  {} {} / {seeds} seeds", cfg.nemesis.as_str(), seed + 1);
        }
    }
    s
}

fn sweep_json(s: &Sweep) -> String {
    // Shed rate relative to admission attempts the breakers saw: the
    // counters are integers, so the fixed-precision rendering is
    // byte-stable.
    let attempts = s.submitted + s.breaker_shed;
    let shed_rate = s.breaker_shed as f64 / attempts.max(1) as f64;
    format!(
        "{{\"seeds\": {}, \"responses\": {}, \"exact\": {}, \"stale_cache\": {}, \
         \"partial\": {}, \"breaker_opened\": {}, \"breaker_closed\": {}, \
         \"breaker_shed\": {}, \"shed_rate\": {shed_rate:.4}, \
         \"unlabeled_degraded\": {}, \"stuck_open\": {}, \"digest\": \"{:016x}\"}}",
        s.seeds,
        s.responses,
        s.exact,
        s.stale_cache,
        s.partial,
        s.breaker_opened,
        s.breaker_closed,
        s.breaker_shed,
        s.unlabeled_degraded,
        s.stuck_open,
        s.digest,
    )
}

/// Captures `seeds` artifacts and replays each under 1, 2 and 8 threads —
/// the bit-identity acceptance check for degraded runs.
fn replay_across_threads(
    seeds: u64,
    cfg: &DegradeChaosConfig,
    nemesis: DegradeNemesis,
) -> Result<(), String> {
    let cfg = DegradeChaosConfig { nemesis, ..*cfg };
    for seed in 0..seeds {
        let (artifact, _) = DegradeArtifact::capture(seed, &cfg);
        let json = artifact.to_json();
        let parsed = DegradeArtifact::from_json(&json)?;
        if parsed != artifact {
            return Err(format!(
                "{} seed {seed}: JSON round trip diverged",
                nemesis.as_str()
            ));
        }
        for threads in [1usize, 2, 8] {
            bcc_par::set_threads(threads);
            parsed.replay().map_err(|e| {
                format!(
                    "{} seed {seed} under {threads} thread(s): {e}",
                    nemesis.as_str()
                )
            })?;
        }
        bcc_par::set_threads(0);
    }
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let args = BenchArgs::from_env();
    args.expect_known(&["--smoke"], &["--json", "--seed", "--nemesis", "--save"])?;
    let smoke = args.flag("--smoke");
    let json_path = args
        .value("--json")
        .unwrap_or("BENCH_degrade.json")
        .to_string();

    let cfg = DegradeChaosConfig::default();

    // Single-seed mode: run (and optionally save) one replay artifact.
    if let Some(seed) = args.parsed::<u64>("--seed")? {
        let nemesis = match args.value("--nemesis") {
            Some(name) => DegradeNemesis::from_name(name)
                .ok_or_else(|| format!("unknown nemesis {name:?}"))?,
            None => cfg.nemesis,
        };
        let cfg = DegradeChaosConfig { nemesis, ..cfg };
        let (artifact, report) = DegradeArtifact::capture(seed, &cfg);
        println!(
            "seed {seed} ({}): {} responses ({} exact, {} stale-cache, {} partial), \
             breakers opened {} closed {}, digest {:016x}",
            nemesis.as_str(),
            report.responses,
            report.exact,
            report.stale_cache,
            report.partial,
            report.breaker.opened,
            report.breaker.closed,
            report.digest,
        );
        if report.unlabeled_degraded != 0 || report.stuck_open != 0 {
            return Err(format!(
                "seed {seed} violated a degradation oracle: {report:?}"
            ));
        }
        if let Some(path) = args.value("--save") {
            std::fs::write(path, artifact.to_json()).map_err(|e| format!("write {path}: {e}"))?;
            println!("saved degradation artifact to {path}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    // Deterministic logical time for span durations: the obs layer never
    // contributes wall-clock to anything this binary writes.
    bcc_obs::set_logical_time(1_000);

    let (slow_seeds, stall_seeds, replay_seeds) = if smoke { (24, 12, 2) } else { (1000, 200, 8) };

    println!("=== degrade — budgeted serving under slow/stall nemeses ===");
    println!(
        "threads = {}, smoke = {smoke}, universe = {}, steps = {}, budget = {}",
        bcc_par::current_threads(),
        cfg.universe,
        cfg.steps,
        cfg.budget,
    );
    println!();

    let start = std::time::Instant::now();
    let slow = sweep(DegradeNemesis::SlowLane, slow_seeds, &cfg);
    let stall = sweep(DegradeNemesis::Stall, stall_seeds, &cfg);
    println!(
        "slow-lane: {} seeds, {} responses ({} exact / {} stale-cache / {} partial), \
         breakers opened {} closed {} shed {}",
        slow.seeds,
        slow.responses,
        slow.exact,
        slow.stale_cache,
        slow.partial,
        slow.breaker_opened,
        slow.breaker_closed,
        slow.breaker_shed,
    );
    println!(
        "stall:     {} seeds, {} responses ({} exact / {} stale-cache / {} partial), \
         breakers opened {} closed {} shed {}",
        stall.seeds,
        stall.responses,
        stall.exact,
        stall.stale_cache,
        stall.partial,
        stall.breaker_opened,
        stall.breaker_closed,
        stall.breaker_shed,
    );

    replay_across_threads(replay_seeds, &cfg, DegradeNemesis::SlowLane)?;
    replay_across_threads(replay_seeds, &cfg, DegradeNemesis::Stall)?;
    println!("replayed {replay_seeds} artifact(s) per nemesis bit-identically under 1/2/8 threads");
    println!("sweep finished in {:.1?}", start.elapsed());
    println!();

    let json = format!(
        "{{\n  \"bench\": \"degrade\",\n  \"smoke\": {smoke},\n  \"universe\": {},\n  \
         \"steps\": {},\n  \"queries_per_step\": {},\n  \"budget\": {},\n  \
         \"slow_lane\": {},\n  \"stall\": {},\n  \"replayed_per_nemesis\": {replay_seeds}\n}}\n",
        cfg.universe,
        cfg.steps,
        cfg.queries_per_step,
        cfg.budget,
        sweep_json(&slow),
        sweep_json(&stall),
    );
    if json_path == "-" {
        println!("{json}");
    } else {
        std::fs::write(&json_path, &json).map_err(|e| format!("write {json_path}: {e}"))?;
        println!("wrote {json_path}");
    }

    for (name, s) in [("slow-lane", &slow), ("stall", &stall)] {
        if s.unlabeled_degraded != 0 {
            return Err(format!(
                "{name}: {} degraded response(s) served unlabeled",
                s.unlabeled_degraded
            ));
        }
        if s.stuck_open != 0 {
            return Err(format!(
                "{name}: {} breaker lane(s) failed to re-close",
                s.stuck_open
            ));
        }
    }
    // The sweeps must actually exercise the ladder, or the oracles above
    // pass vacuously.
    for (name, s) in [("slow-lane", &slow), ("stall", &stall)] {
        if s.stale_cache == 0 || s.partial == 0 || s.breaker_opened == 0 {
            return Err(format!(
                "{name}: sweep never exercised the full degradation ladder: \
                 stale_cache {}, partial {}, breaker_opened {}",
                s.stale_cache, s.partial, s.breaker_opened
            ));
        }
    }
    println!(
        "all degradation oracles held across {} seeds",
        slow.seeds + stall.seeds
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("degrade: {e}");
            ExitCode::FAILURE
        }
    }
}
