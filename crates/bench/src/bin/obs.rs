//! `obs` — observability smoke: runs a fixed seeded serving workload
//! twice in logical-time mode and asserts the two [`bcc_obs`] snapshots
//! are **byte-identical**. This is the determinism contract for the
//! observability layer itself: at a fixed seed and thread count, counters,
//! histogram buckets, and the rendered JSON must not depend on scheduling.
//!
//! ```sh
//! cargo run --release -p bcc-bench --bin obs
//! cargo run --release -p bcc-bench --bin obs -- --json out.json
//! ```
//!
//! Exits non-zero (panics) if the two snapshots differ.

use bcc_bench::BenchArgs;
use bcc_metric::NodeId;
use bcc_service::{seeded_service, ClusterQuery, ClusterService, ServiceConfig};

const SEED: u64 = 2011;
const UNIVERSE: usize = 32;
const JOINED: usize = 32;
const POOL: usize = 8;
const REPEATS: usize = 6;

fn build() -> ClusterService {
    let mut service = seeded_service(SEED, UNIVERSE, ServiceConfig::default());
    for h in 0..JOINED {
        service.join(NodeId::new(h)).expect("join fresh host");
    }
    service
}

/// One full instrumented pass: serve the repeated workload, publish the
/// service/cache stats bridge, and render the registry snapshot.
fn instrumented_pass() -> String {
    let ks = [8usize, 16, 24];
    let bands = [20.0f64, 55.0];
    let mut service = build();
    for r in 0..REPEATS {
        for i in 0..POOL {
            let q = ClusterQuery::new(
                NodeId::new(i % JOINED),
                ks[i % ks.len()],
                bands[(i + r) % bands.len()],
            );
            service.submit(q).expect("workload query admitted");
            if service.in_flight() >= service.config().batch_max {
                let _ = service.drain();
            }
        }
    }
    let _ = service.drain();
    service.publish_obs();
    bcc_obs::snapshot().to_json()
}

fn main() {
    let args = BenchArgs::from_env();
    let json_path = args.value("--json").map(str::to_string);

    // Logical time from the very first span: durations become per-histogram
    // ordinals × step, a pure function of span counts.
    bcc_obs::set_logical_time(1_000);
    // Exercise the trace sink too; only counts are compared (event order in
    // the ring depends on worker interleaving, the multiset does not).
    bcc_obs::enable_span_ring(256);

    println!("=== obs — observability byte-stability smoke ===");
    println!("threads = {}, seed = {SEED}", bcc_par::current_threads());

    let first = instrumented_pass();
    let (events, evicted) = bcc_obs::span_events();
    println!(
        "first pass: {} bytes, {} ring events ({} evicted)",
        first.len(),
        events.len(),
        evicted
    );

    bcc_obs::reset();
    let second = instrumented_pass();
    println!("second pass: {} bytes", second.len());

    if let Some(path) = json_path {
        if path == "-" {
            println!("{first}");
        } else {
            std::fs::write(&path, &first).expect("write obs snapshot");
            println!("wrote {path}");
        }
    }

    assert_eq!(
        first, second,
        "obs snapshot must be byte-stable across identical runs"
    );
    println!("snapshots byte-identical: true");
}
