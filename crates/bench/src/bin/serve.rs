//! `serve` — throughput and correctness baseline of the `bcc-service`
//! serving layer, checked in as `BENCH_service.json`.
//!
//! ```sh
//! cargo run --release -p bcc-bench --bin serve
//! cargo run --release -p bcc-bench --bin serve -- --smoke
//! cargo run --release -p bcc-bench --bin serve -- --json out.json
//! ```
//!
//! Two measurements:
//!
//! - **Throughput** — a repeated-query workload (a small pool of distinct
//!   `(start, k, b)` queries, each submitted many times) served twice over
//!   identical systems: once by the uncached baseline, once with the
//!   churn-aware cache. The binary asserts the two response streams are
//!   bit-identical and reports the speedup (the acceptance bar for the
//!   serving layer is ≥ 5×).
//! - **Churn chaos** — [`bcc_service::serve_chaos`] over several seeds:
//!   churn-heavy schedules with fault windows while a repeated workload
//!   hammers the cache, every cached answer audited against a fresh
//!   recomputation. The binary exits non-zero if any audited hit was
//!   stale.
//!
//! The obs snapshot additionally carries a sharded-deployment section: a
//! small [`bcc_shard::Coordinator`] serves a deterministic region-query
//! stream and publishes its `shard.<id>.*` gauges (queries, forwarded,
//! merge_candidates, epoch) plus the `coord.*` totals.

use std::time::Instant;

use bcc_bench::BenchArgs;
use bcc_metric::NodeId;
use bcc_service::{
    seeded_service, serve_chaos, ClusterQuery, ClusterService, ServeChaosConfig, ServiceConfig,
    ServiceResponse,
};

const SEED: u64 = 2011;

/// The repeated workload: `pool` distinct queries over the first `joined`
/// hosts, submitted round-robin `repeats` times each. Sizes are chosen so
/// queries route multiple hops (k ≥ 8) — the serving regime where compute
/// dominates and a cache can actually help; bandwidths snap to both
/// classes of the seeded universe.
fn workload(joined: usize, pool: usize, repeats: usize) -> Vec<ClusterQuery> {
    let ks = [16usize, 24, 32];
    let bands = [20.0f64, 55.0];
    let distinct: Vec<ClusterQuery> = (0..pool)
        .map(|i| {
            ClusterQuery::new(
                NodeId::new(i % joined),
                ks[i % ks.len()],
                bands[(i / ks.len()) % bands.len()],
            )
        })
        .collect();
    let mut all = Vec::with_capacity(pool * repeats);
    for _ in 0..repeats {
        all.extend(distinct.iter().copied());
    }
    all
}

fn build(universe: usize, joined: usize, config: ServiceConfig) -> ClusterService {
    let mut service = seeded_service(SEED, universe, config);
    for h in 0..joined {
        service.join(NodeId::new(h)).expect("join fresh host");
    }
    service
}

/// Serves the whole workload, returning wall time (ms) and the responses.
fn run(service: &mut ClusterService, queries: &[ClusterQuery]) -> (f64, Vec<ServiceResponse>) {
    let start = Instant::now();
    let mut responses = Vec::with_capacity(queries.len());
    for &q in queries {
        service.submit(q).expect("workload query admitted");
        // Keep the queue bounded: drain whenever a full batch is ready.
        if service.in_flight() >= service.config().batch_max {
            responses.extend(service.drain());
        }
    }
    responses.extend(service.drain());
    (start.elapsed().as_secs_f64() * 1e3, responses)
}

fn main() {
    let args = BenchArgs::from_env();
    let smoke = args.flag("--smoke");
    let json_path = args
        .value("--json")
        .unwrap_or("BENCH_service.json")
        .to_string();
    let obs_path = args.value("--obs").unwrap_or("BENCH_obs.json").to_string();

    let (universe, joined, pool, repeats, chaos_seeds, chaos_steps) = if smoke {
        (48, 48, 12, 16, 2u64, 12)
    } else {
        (128, 128, 24, 48, 5u64, 24)
    };

    // Smoke runs record span durations in deterministic logical time, so
    // the obs snapshot is byte-stable across runs at a fixed seed and
    // thread count — what the CI obs job diffs. Full runs keep wall-clock
    // timings (real latencies, not reproducible bit-for-bit).
    if smoke {
        bcc_obs::set_logical_time(1_000);
    }

    println!("=== serve — batched, churn-aware cluster-query serving ===");
    println!(
        "threads = {}, smoke = {smoke}, universe = {universe}, joined = {joined}",
        bcc_par::current_threads()
    );
    println!();

    // Throughput: identical workload, identical system, cache off vs on.
    let queries = workload(joined, pool, repeats);
    let mut baseline = build(universe, joined, ServiceConfig::default().uncached());
    let (uncached_ms, uncached_responses) = run(&mut baseline, &queries);
    let mut cached = build(universe, joined, ServiceConfig::default());
    let (cached_ms, cached_responses) = run(&mut cached, &queries);

    let identical = uncached_responses.len() == cached_responses.len()
        && uncached_responses
            .iter()
            .zip(&cached_responses)
            .all(|(u, c)| u.ticket == c.ticket && u.outcome == c.outcome);
    let speedup = if cached_ms > 0.0 {
        uncached_ms / cached_ms
    } else {
        f64::INFINITY
    };
    let stats = cached.cache_stats();
    let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;

    println!(
        "workload: {} queries ({} distinct × {} repeats)",
        queries.len(),
        pool,
        repeats
    );
    println!("  uncached: {uncached_ms:>10.2} ms");
    println!("  cached:   {cached_ms:>10.2} ms   ({speedup:.1}x, hit rate {hit_rate:.2})");
    println!("  bit-identical responses: {identical}");
    println!();

    // Churn chaos: the no-stale-answer audit under churn-heavy schedules.
    let chaos_cfg = ServeChaosConfig {
        universe: 8,
        steps: chaos_steps,
        queries_per_step: 6,
    };
    let mut chaos_responses = 0u64;
    let mut chaos_cached = 0u64;
    let mut stale_hits = 0u64;
    let chaos_start = Instant::now();
    for seed in 0..chaos_seeds {
        let report = serve_chaos(seed, &chaos_cfg);
        chaos_responses += report.responses;
        chaos_cached += report.cached;
        stale_hits += report.stale_hits;
    }
    println!(
        "chaos: {chaos_seeds} seeds × {chaos_steps} steps in {:.1?}: \
         {chaos_responses} responses, {chaos_cached} audited cache hits, {stale_hits} stale",
        chaos_start.elapsed()
    );
    println!();

    let json = format!(
        "{{\n  \"bench\": \"service\",\n  \"seed\": {SEED},\n  \"threads\": {},\n  \
         \"smoke\": {smoke},\n  \"workload\": {{\"queries\": {}, \"distinct\": {pool}, \
         \"repeats\": {repeats}, \"uncached_ms\": {uncached_ms:.3}, \"cached_ms\": {cached_ms:.3}, \
         \"speedup\": {speedup:.3}, \"hit_rate\": {hit_rate:.4}, \"identical\": {identical}}},\n  \
         \"chaos\": {{\"seeds\": {chaos_seeds}, \"steps\": {chaos_steps}, \
         \"responses\": {chaos_responses}, \"cached\": {chaos_cached}, \
         \"stale_hits\": {stale_hits}}}\n}}\n",
        bcc_par::current_threads(),
        queries.len(),
    );
    if json_path == "-" {
        println!("{json}");
    } else {
        std::fs::write(&json_path, json).expect("write JSON output");
        println!("wrote {json_path}");
    }

    // Sharded deployment gauges: a 4-shard coordinator over a small
    // universe serves every live host once per class, then publishes its
    // per-shard gauges into the same registry the snapshot below reads.
    // Counters only — deterministic at a fixed seed and thread count.
    let mut coord = bcc_shard::harness::seeded_coordinator(SEED, 12, 4);
    for h in 0..12 {
        coord.join(NodeId::new(h)).expect("join fresh host");
    }
    let mut shard_exact = 0u64;
    for h in 0..12 {
        for b in [24.0, 59.0] {
            let resp = coord
                .cluster_near(NodeId::new(h), 3, b)
                .expect("live start");
            if resp.outcome.is_exact() {
                shard_exact += 1;
            }
        }
    }
    coord.publish_obs();
    let coord_stats = coord.stats();
    println!(
        "shard: 4 shards over 12 hosts, {} queries ({shard_exact} exact, {} cache hits, \
         {} pruned)",
        coord_stats.queries, coord_stats.cache_hits, coord_stats.pruned
    );
    println!();

    // Unified observability snapshot: the instrumented hot paths' counters
    // and latency histograms, plus the ServiceStats/CacheStats bridge.
    cached.publish_obs();
    let snapshot = bcc_obs::snapshot();
    for name in [
        "service.query",
        "service.batch.execute",
        "service.cache.lookup",
    ] {
        if let Some((_, h)) = snapshot.histograms.iter().find(|(n, _)| n == name) {
            println!(
                "obs {name}: count {} p50 {} p95 {} p99 {}",
                h.count,
                h.p50(),
                h.p95(),
                h.p99()
            );
        }
    }
    if obs_path == "-" {
        println!("{}", snapshot.to_json());
    } else {
        std::fs::write(&obs_path, snapshot.to_json()).expect("write obs snapshot");
        println!("wrote {obs_path}");
    }

    assert!(
        identical,
        "cached and uncached serving must return bit-identical responses"
    );
    assert_eq!(stale_hits, 0, "a stale cache hit was served under chaos");
}
