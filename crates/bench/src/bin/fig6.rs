//! Regenerates Fig. 6: scalability — mean query routing hops vs system
//! size.
//!
//! ```sh
//! cargo run --release -p bcc-bench --bin fig6
//! cargo run --release -p bcc-bench --bin fig6 -- --paper
//! ```

use bcc_bench::{banner, Effort};
use bcc_eval::{run_fig6, Fig6Config};

fn main() {
    let effort = Effort::from_args();
    banner("Fig. 6 (scalability: routing hops vs n)", effort);

    let cfg = match effort {
        Effort::Fast => Fig6Config::fast(),
        Effort::Standard => {
            let mut cfg = Fig6Config::paper();
            cfg.subsets_per_size = 3;
            cfg.rounds_per_subset = 2;
            cfg.queries_per_round = 100;
            cfg
        }
        Effort::Paper => Fig6Config::paper(),
    };

    let start = std::time::Instant::now();
    let result = run_fig6(&cfg);
    let table = result.table();
    println!("{}", table.render());
    println!("{}", table.render_chart(12));
    println!(
        "subsets/size = {}, rounds/subset = {}, queries/round = {}, elapsed = {:.1?}",
        cfg.subsets_per_size,
        cfg.rounds_per_subset,
        cfg.queries_per_round,
        start.elapsed()
    );
}
