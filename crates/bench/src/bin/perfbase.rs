//! `perfbase` — the serial-vs-parallel baseline for the clustering hot
//! paths, checked in as `BENCH_clustering.json` so perf regressions show up
//! as a diff.
//!
//! ```sh
//! cargo run --release -p bcc-bench --bin perfbase
//! cargo run --release -p bcc-bench --bin perfbase -- --smoke
//! cargo run --release -p bcc-bench --bin perfbase -- --json out.json
//! ```
//!
//! Seeded workloads over the synthetic dataset family:
//!
//! - Algorithm 1 (`find_cluster`) with a satisfiable query (early exit) and
//!   an unsatisfiable one (`k = n`, forces the full `O(n³)` scan), plus
//!   `max_cluster_size`, at n ∈ {128, 256, 512, 1024};
//! - the exact `O(n⁴)` treeness statistics (`epsilon_avg_exact`,
//!   `epsilon_max_exact`, `delta_hyperbolicity_exact`,
//!   `satisfies_four_point`) at n = 128.
//!
//! Every kernel runs both serial and on the `bcc-par` pool; the binary
//! asserts the two agree bit-for-bit and records wall times, speedup and
//! the thread count (speedups near 1 are expected on single-core runners —
//! compare like with like).

use std::time::Instant;

use bcc_core::{find_cluster, find_cluster_par, max_cluster_size, max_cluster_size_par};
use bcc_datasets::{generate, SynthConfig};
use bcc_metric::fourpoint::{
    epsilon_avg_exact, epsilon_avg_exact_par, epsilon_max_exact, epsilon_max_exact_par,
    satisfies_four_point, satisfies_four_point_par,
};
use bcc_metric::gromov::{delta_hyperbolicity_exact, delta_hyperbolicity_exact_par};
use bcc_metric::{DistanceMatrix, RationalTransform};

const SEED: u64 = 123;

fn dataset(n: usize) -> DistanceMatrix {
    let mut cfg = SynthConfig::small(SEED);
    cfg.nodes = n;
    RationalTransform::default().distance_matrix(&generate(&cfg))
}

/// One measured kernel: serial and parallel wall times plus an agreement
/// flag (bit-identical results).
struct Entry {
    kernel: &'static str,
    n: usize,
    serial_ms: f64,
    parallel_ms: f64,
    identical: bool,
}

impl Entry {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Best-of-`reps` wall time in milliseconds, plus the last result.
fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

fn measure<T: PartialEq>(
    kernel: &'static str,
    n: usize,
    reps: usize,
    serial: impl FnMut() -> T,
    parallel: impl FnMut() -> T,
) -> Entry {
    let (serial_ms, s) = time(reps, serial);
    let (parallel_ms, p) = time(reps, parallel);
    Entry {
        kernel,
        n,
        serial_ms,
        parallel_ms,
        identical: s == p,
    }
}

fn to_json(entries: &[Entry], smoke: bool) -> String {
    let mut out = String::from("{\n  \"bench\": \"perfbase\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"threads\": {},\n", bcc_par::current_threads()));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"serial_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}{}\n",
            e.kernel,
            e.n,
            e.serial_ms,
            e.parallel_ms,
            e.speedup(),
            e.identical,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = bcc_bench::BenchArgs::from_env();
    let smoke = args.flag("--smoke");
    let json_path = args
        .value("--json")
        .unwrap_or("BENCH_clustering.json")
        .to_string();

    let (sizes, treeness_n, reps): (&[usize], usize, usize) = if smoke {
        (&[64, 128], 48, 1)
    } else {
        (&[128, 256, 512, 1024], 128, 3)
    };

    println!("=== perfbase — serial vs parallel clustering kernels ===");
    println!(
        "threads = {}, smoke = {smoke}, reps = {reps} (best-of)",
        bcc_par::current_threads()
    );
    println!();

    let t = RationalTransform::default();
    let mut entries: Vec<Entry> = Vec::new();

    for &n in sizes {
        let d = dataset(n);
        // Satisfiable: k = 5 % of n at a generous constraint — measures
        // the early-exit path.
        let k_sat = (n / 20).max(2);
        let l_sat = t.distance_constraint(20.0);
        entries.push(measure(
            "find_cluster_sat",
            n,
            reps,
            || find_cluster(&d, k_sat, l_sat),
            || find_cluster_par(&d, k_sat, l_sat),
        ));
        // Unsatisfiable: k = n with a mid-range constraint — every
        // qualifying pair is checked against all n hosts, the full O(n³)
        // scan of Algorithm 1.
        let l_unsat = t.distance_constraint(30.0);
        entries.push(measure(
            "find_cluster_unsat",
            n,
            reps,
            || find_cluster(&d, n, l_unsat),
            || find_cluster_par(&d, n, l_unsat),
        ));
        entries.push(measure(
            "max_cluster_size",
            n,
            reps,
            || max_cluster_size(&d, l_unsat),
            || max_cluster_size_par(&d, l_unsat),
        ));
    }

    // Exact O(n⁴) treeness statistics. Compare by bit pattern — the whole
    // point of the deterministic reduction order.
    let d = dataset(treeness_n);
    entries.push(measure(
        "epsilon_avg_exact",
        treeness_n,
        reps,
        || epsilon_avg_exact(&d).to_bits(),
        || epsilon_avg_exact_par(&d).to_bits(),
    ));
    entries.push(measure(
        "epsilon_max_exact",
        treeness_n,
        reps,
        || epsilon_max_exact(&d).to_bits(),
        || epsilon_max_exact_par(&d).to_bits(),
    ));
    entries.push(measure(
        "delta_hyperbolicity",
        treeness_n,
        reps,
        || delta_hyperbolicity_exact(&d).to_bits(),
        || delta_hyperbolicity_exact_par(&d).to_bits(),
    ));
    // Huge tolerance: no quartet violates, so the scan cannot early-exit.
    entries.push(measure(
        "satisfies_four_point",
        treeness_n,
        reps,
        || satisfies_four_point(&d, 1e9),
        || satisfies_four_point_par(&d, 1e9),
    ));

    println!(
        "{:<22} {:>6} {:>12} {:>12} {:>9} {:>10}",
        "kernel", "n", "serial (ms)", "par (ms)", "speedup", "identical"
    );
    let mut all_identical = true;
    for e in &entries {
        all_identical &= e.identical;
        println!(
            "{:<22} {:>6} {:>12.3} {:>12.3} {:>8.2}x {:>10}",
            e.kernel,
            e.n,
            e.serial_ms,
            e.parallel_ms,
            e.speedup(),
            e.identical
        );
    }
    println!();

    let json = to_json(&entries, smoke);
    if json_path == "-" {
        println!("{json}");
    } else {
        std::fs::write(&json_path, json).expect("write JSON output");
        println!("wrote {json_path}");
    }

    assert!(
        all_identical,
        "a parallel kernel diverged from its serial twin"
    );
}
