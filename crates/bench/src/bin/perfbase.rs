//! `perfbase` — the serial-vs-parallel-vs-indexed baseline for the
//! clustering hot paths, checked in as `BENCH_clustering.json` so perf
//! regressions show up as a diff.
//!
//! ```sh
//! cargo run --release -p bcc-bench --bin perfbase
//! cargo run --release -p bcc-bench --bin perfbase -- --smoke
//! cargo run --release -p bcc-bench --bin perfbase -- --smoke --stable --json run.json
//! cargo run --release -p bcc-bench --bin perfbase -- --large 8192 --probe-budget-ms 60000
//! ```
//!
//! Seeded workloads over the synthetic dataset family:
//!
//! - Algorithm 1 (`find_cluster`) with a satisfiable query (early exit) and
//!   an unsatisfiable one (`k = n`, forces the full `O(n³)` scan), plus
//!   `max_cluster_size`, at n ∈ {128, 256, 512, 1024} — each as the
//!   pair-sweep kernel *and* the `ClusterIndex` range-scan kernel;
//! - an indexed-only probe at `--large N` (default 8192 in full mode),
//!   where the pair sweep is no longer affordable;
//! - the exact `O(n⁴)` treeness statistics at n = 128.
//!
//! Every kernel records a thread-scaling curve ({1,2,4,8} full, {1,2}
//! smoke): the serial entry point once, then the `_par` twin at each pool
//! width. The binary asserts serial, every curve point, and (at n ≤ 1024)
//! the brute-force pair-sweep oracle all agree bit-for-bit. Indexed
//! entries also record `sweep_ms`/`gain` — the pair-sweep serial time at
//! the same n and the resulting indexed speedup. Speedups near 1 across
//! the curve are expected on single-core runners — compare like with like.
//!
//! `--stable` zeroes every wall-time field after the identity checks so
//! two runs emit byte-identical JSON (the CI determinism gate).
//! `--probe-budget-ms M` asserts each large-n indexed probe finished
//! within M ms (the CI time-budget gate).

use std::time::Instant;

use bcc_core::{
    find_cluster, find_cluster_indexed, find_cluster_indexed_par, find_cluster_par,
    max_cluster_size, max_cluster_size_indexed, max_cluster_size_indexed_par, max_cluster_size_par,
    ClusterIndex,
};
use bcc_datasets::{generate, SynthConfig};
use bcc_metric::fourpoint::{
    epsilon_avg_exact, epsilon_avg_exact_par, epsilon_max_exact, epsilon_max_exact_par,
    satisfies_four_point, satisfies_four_point_par,
};
use bcc_metric::gromov::{delta_hyperbolicity_exact, delta_hyperbolicity_exact_par};
use bcc_metric::{DistanceMatrix, RationalTransform};

const SEED: u64 = 123;

fn dataset(n: usize) -> DistanceMatrix {
    let mut cfg = SynthConfig::small(SEED);
    cfg.nodes = n;
    RationalTransform::default().distance_matrix(&generate(&cfg))
}

/// One measured kernel: serial wall time, a threads → wall-time curve,
/// an agreement flag (bit-identical results across serial, every curve
/// point, and — for indexed kernels at oracle-affordable n — the
/// pair-sweep oracle), and the oracle's own wall time when measured.
struct Entry {
    kernel: String,
    n: usize,
    serial_ms: f64,
    curve: Vec<(usize, f64)>,
    identical: bool,
    sweep_ms: Option<f64>,
}

impl Entry {
    /// Best wall time across the thread curve (serial time when the
    /// kernel has no parallel twin).
    fn parallel_ms(&self) -> f64 {
        self.curve
            .iter()
            .map(|&(_, ms)| ms)
            .fold(f64::INFINITY, f64::min)
            .min(self.serial_ms)
    }

    fn speedup(&self) -> f64 {
        let p = self.parallel_ms();
        if p > 0.0 {
            self.serial_ms / p
        } else {
            0.0
        }
    }

    /// Pair-sweep serial time / indexed serial time, when the sweep ran.
    fn gain(&self) -> Option<f64> {
        let sweep = self.sweep_ms?;
        if self.serial_ms > 0.0 {
            Some(sweep / self.serial_ms)
        } else {
            Some(0.0)
        }
    }

    fn zero_times(&mut self) {
        self.serial_ms = 0.0;
        for point in &mut self.curve {
            point.1 = 0.0;
        }
        if self.sweep_ms.is_some() {
            self.sweep_ms = Some(0.0);
        }
    }
}

/// Best-of-`reps` wall time in milliseconds, plus the last result.
fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

/// Measures `serial` (best-of-`reps`) and `parallel` once per pool width
/// in `threads`, checking every result against the serial one — and
/// against a pre-measured oracle `(ms, value)` when given.
fn measure<T: PartialEq>(
    kernel: &str,
    n: usize,
    reps: usize,
    threads: &[usize],
    serial: impl FnMut() -> T,
    mut parallel: impl FnMut() -> T,
    oracle: Option<(f64, T)>,
) -> Entry {
    let (serial_ms, s) = time(reps, serial);
    let mut identical = true;
    let mut curve = Vec::with_capacity(threads.len());
    for &t in threads {
        bcc_par::set_threads(t);
        let (ms, p) = time(1, &mut parallel);
        identical &= p == s;
        curve.push((t, ms));
    }
    bcc_par::set_threads(0);
    let sweep_ms = oracle.map(|(ms, value)| {
        identical &= value == s;
        ms
    });
    Entry {
        kernel: kernel.to_string(),
        n,
        serial_ms,
        curve,
        identical,
        sweep_ms,
    }
}

fn to_json(entries: &[Entry], smoke: bool, stable: bool) -> String {
    let mut out = String::from("{\n  \"bench\": \"perfbase\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"stable\": {stable},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let curve = e
            .curve
            .iter()
            .map(|&(t, ms)| format!("{{\"threads\": {t}, \"ms\": {ms:.3}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        let sweep = match (e.sweep_ms, e.gain()) {
            (Some(ms), Some(gain)) => {
                format!(", \"sweep_ms\": {ms:.3}, \"gain\": {gain:.3}")
            }
            _ => String::new(),
        };
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"serial_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}{}, \
             \"curve\": [{}]}}{}\n",
            e.kernel,
            e.n,
            e.serial_ms,
            e.parallel_ms(),
            e.speedup(),
            e.identical,
            sweep,
            curve,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = bcc_bench::BenchArgs::from_env();
    args.expect_known(
        &["--smoke", "--stable"],
        &["--json", "--large", "--probe-budget-ms"],
    )
    .unwrap_or_else(|e| panic!("{e}"));
    let smoke = args.flag("--smoke");
    let stable = args.flag("--stable");
    let json_path = args
        .value("--json")
        .unwrap_or("BENCH_clustering.json")
        .to_string();
    let large: usize = args
        .parsed_or("--large", if smoke { 0 } else { 8192 })
        .unwrap_or_else(|e| panic!("{e}"));
    let probe_budget_ms: f64 = args
        .parsed_or("--probe-budget-ms", 0.0)
        .unwrap_or_else(|e| panic!("{e}"));

    let (sizes, treeness_n, reps): (&[usize], usize, usize) = if smoke {
        (&[64, 128], 48, 1)
    } else {
        (&[128, 256, 512, 1024], 128, 3)
    };
    let threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    println!("=== perfbase — pair-sweep vs indexed clustering kernels ===");
    println!(
        "smoke = {smoke}, stable = {stable}, reps = {reps} (best-of), \
         thread curve = {threads:?}, large = {large}",
    );
    println!();

    let t = RationalTransform::default();
    let mut entries: Vec<Entry> = Vec::new();

    for &n in sizes {
        let d = dataset(n);
        let k_sat = (n / 20).max(2);
        let l_sat = t.distance_constraint(20.0);
        let l_unsat = t.distance_constraint(30.0);

        // Pair-sweep kernels: satisfiable (early exit), unsatisfiable
        // (k = n, the full O(n³) scan), and the maximization variant.
        entries.push(measure(
            "find_cluster_sat",
            n,
            reps,
            threads,
            || find_cluster(&d, k_sat, l_sat),
            || find_cluster_par(&d, k_sat, l_sat),
            None,
        ));
        entries.push(measure(
            "find_cluster_unsat",
            n,
            reps,
            threads,
            || find_cluster(&d, n, l_unsat),
            || find_cluster_par(&d, n, l_unsat),
            None,
        ));
        entries.push(measure(
            "max_cluster_size",
            n,
            reps,
            threads,
            || max_cluster_size(&d, l_unsat),
            || max_cluster_size_par(&d, l_unsat),
            None,
        ));

        // The indexed kernels answer the same probes from sorted
        // distance labels. Build once, probe many.
        let (build_ms, index) = time(reps, || ClusterIndex::from_metric(&d));
        entries.push(Entry {
            kernel: "index_build".to_string(),
            n,
            serial_ms: build_ms,
            curve: Vec::new(),
            identical: index.digest() == ClusterIndex::from_metric(&d).digest(),
            sweep_ms: None,
        });
        let sweep_at = |entries: &[Entry], kernel: &str| {
            entries
                .iter()
                .find(|e| e.kernel == kernel && e.n == n)
                .map(|e| e.serial_ms)
                .expect("sweep entry measured above")
        };
        let sat_sweep = sweep_at(&entries, "find_cluster_sat");
        let unsat_sweep = sweep_at(&entries, "find_cluster_unsat");
        let mcs_sweep = sweep_at(&entries, "max_cluster_size");
        entries.push(measure(
            "find_cluster_sat_indexed",
            n,
            reps,
            threads,
            || find_cluster_indexed(&d, &index, k_sat, l_sat),
            || find_cluster_indexed_par(&d, &index, k_sat, l_sat),
            Some((sat_sweep, find_cluster(&d, k_sat, l_sat))),
        ));
        entries.push(measure(
            "find_cluster_unsat_indexed",
            n,
            reps,
            threads,
            || find_cluster_indexed(&d, &index, n, l_unsat),
            || find_cluster_indexed_par(&d, &index, n, l_unsat),
            Some((unsat_sweep, find_cluster(&d, n, l_unsat))),
        ));
        entries.push(measure(
            "max_cluster_size_indexed",
            n,
            reps,
            threads,
            || max_cluster_size_indexed(&d, &index, l_unsat),
            || max_cluster_size_indexed_par(&d, &index, l_unsat),
            Some((mcs_sweep, max_cluster_size(&d, l_unsat))),
        ));
    }

    // Indexed-only probes beyond the pair-sweep horizon: no oracle, the
    // identity check is indexed-serial vs indexed-par.
    let mut large_probe_ms: Vec<(String, f64)> = Vec::new();
    if large > 0 {
        let d = dataset(large);
        let k_sat = (large / 20).max(2);
        let l_sat = t.distance_constraint(20.0);
        let l_unsat = t.distance_constraint(30.0);
        let (build_ms, index) = time(1, || ClusterIndex::from_metric(&d));
        entries.push(Entry {
            kernel: "index_build".to_string(),
            n: large,
            serial_ms: build_ms,
            curve: Vec::new(),
            identical: true,
            sweep_ms: None,
        });
        for (kernel, entry) in [
            (
                "find_cluster_sat_indexed",
                measure(
                    "find_cluster_sat_indexed",
                    large,
                    1,
                    threads,
                    || find_cluster_indexed(&d, &index, k_sat, l_sat),
                    || find_cluster_indexed_par(&d, &index, k_sat, l_sat),
                    None,
                ),
            ),
            (
                "find_cluster_unsat_indexed",
                measure(
                    "find_cluster_unsat_indexed",
                    large,
                    1,
                    threads,
                    || find_cluster_indexed(&d, &index, large, l_unsat),
                    || find_cluster_indexed_par(&d, &index, large, l_unsat),
                    None,
                ),
            ),
            (
                "max_cluster_size_indexed",
                measure(
                    "max_cluster_size_indexed",
                    large,
                    1,
                    threads,
                    || max_cluster_size_indexed(&d, &index, l_unsat),
                    || max_cluster_size_indexed_par(&d, &index, l_unsat),
                    None,
                ),
            ),
        ] {
            large_probe_ms.push((kernel.to_string(), entry.serial_ms));
            entries.push(entry);
        }
    }

    // Exact O(n⁴) treeness statistics. Compare by bit pattern — the whole
    // point of the deterministic reduction order.
    let d = dataset(treeness_n);
    entries.push(measure(
        "epsilon_avg_exact",
        treeness_n,
        reps,
        threads,
        || epsilon_avg_exact(&d).to_bits(),
        || epsilon_avg_exact_par(&d).to_bits(),
        None,
    ));
    entries.push(measure(
        "epsilon_max_exact",
        treeness_n,
        reps,
        threads,
        || epsilon_max_exact(&d).to_bits(),
        || epsilon_max_exact_par(&d).to_bits(),
        None,
    ));
    entries.push(measure(
        "delta_hyperbolicity",
        treeness_n,
        reps,
        threads,
        || delta_hyperbolicity_exact(&d).to_bits(),
        || delta_hyperbolicity_exact_par(&d).to_bits(),
        None,
    ));
    // Huge tolerance: no quartet violates, so the scan cannot early-exit.
    entries.push(measure(
        "satisfies_four_point",
        treeness_n,
        reps,
        threads,
        || satisfies_four_point(&d, 1e9),
        || satisfies_four_point_par(&d, 1e9),
        None,
    ));

    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>9} {:>9} {:>10}",
        "kernel", "n", "serial (ms)", "par (ms)", "speedup", "gain", "identical"
    );
    let mut all_identical = true;
    for e in &entries {
        all_identical &= e.identical;
        let gain = e
            .gain()
            .map(|g| format!("{g:>8.2}x"))
            .unwrap_or_else(|| format!("{:>9}", "-"));
        println!(
            "{:<28} {:>6} {:>12.3} {:>12.3} {:>8.2}x {gain} {:>10}",
            e.kernel,
            e.n,
            e.serial_ms,
            e.parallel_ms(),
            e.speedup(),
            e.identical
        );
    }
    println!();

    // Perf gates — only meaningful on a real timed full run.
    if !smoke && !stable {
        for e in entries.iter().filter(|e| e.kernel == "find_cluster_sat") {
            assert!(
                e.speedup() >= 0.1,
                "find_cluster_sat n={} parallel pessimization: speedup {:.3} < 0.1",
                e.n,
                e.speedup()
            );
        }
        for kernel in ["find_cluster_unsat_indexed", "max_cluster_size_indexed"] {
            let gain = entries
                .iter()
                .find(|e| e.kernel == kernel && e.n == 1024)
                .and_then(Entry::gain)
                .expect("n=1024 indexed entry present in full mode");
            assert!(
                gain >= 10.0,
                "{kernel} n=1024 gain {gain:.2}x < 10x over the pair sweep"
            );
        }
    }
    if probe_budget_ms > 0.0 {
        for (kernel, ms) in &large_probe_ms {
            assert!(
                *ms <= probe_budget_ms,
                "{kernel} n={large} took {ms:.1} ms > budget {probe_budget_ms:.1} ms"
            );
        }
    }

    if stable {
        for e in &mut entries {
            e.zero_times();
        }
    }
    let json = to_json(&entries, smoke, stable);
    if json_path == "-" {
        println!("{json}");
    } else {
        std::fs::write(&json_path, json).expect("write JSON output");
        println!("wrote {json_path}");
    }

    assert!(
        all_identical,
        "a parallel or indexed kernel diverged from its serial twin"
    );
}
