//! Regenerates the robustness extension: query success, retries and
//! re-convergence under injected message loss and host crashes.
//!
//! ```sh
//! cargo run --release -p bcc-bench --bin robustness
//! cargo run --release -p bcc-bench --bin robustness -- --paper
//! cargo run --release -p bcc-bench --bin robustness -- --json robustness.json
//! ```
//!
//! `--json <path>` additionally writes the full grid as figure-style JSON
//! (`-` for stdout).

use bcc_bench::{banner, BenchArgs, Effort};
use bcc_eval::{run_robustness, RobustnessConfig};

fn main() {
    let args = BenchArgs::from_env();
    let effort = Effort::from_args();
    banner("Robustness (fault injection: loss × crashes)", effort);

    let cfg = match effort {
        Effort::Fast => RobustnessConfig::fast(),
        Effort::Standard => {
            let mut cfg = RobustnessConfig::standard();
            cfg.size = 60;
            cfg.trials = 2;
            cfg.queries_per_trial = 16;
            cfg
        }
        Effort::Paper => RobustnessConfig::standard(),
    };

    let start = std::time::Instant::now();
    let result = run_robustness(&cfg);
    for table in result.tables() {
        println!("{}", table.render());
        println!("{}", table.render_chart(12));
    }
    println!(
        "hosts = {}, trials/cell = {}, queries/trial = {}, k = {}, elapsed = {:.1?}",
        cfg.size,
        cfg.trials,
        cfg.queries_per_trial,
        cfg.k,
        start.elapsed()
    );

    if let Some(path) = args.value_or("--json", "-") {
        let json = result.to_json();
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(&path, json).expect("write JSON output");
            println!("wrote {path}");
        }
    }
}
