//! `recovery` — kill-restart validation of the durability layer, checked
//! in as `BENCH_recovery.json`.
//!
//! ```sh
//! # Full sweep: 340 clean + 160 corrupted-storage seeds, replay spot
//! # checks, warm-vs-cold restore scaling at n ∈ {256, 1024, 8192}:
//! cargo run --release -p bcc-bench --bin recovery
//!
//! # CI smoke sweep (byte-stable JSON, no wall-clock section):
//! cargo run --release -p bcc-bench --bin recovery -- --smoke --json run1.json
//!
//! # One seed, saving its kill-restart artifact for the corpus:
//! cargo run --release -p bcc-bench --bin recovery -- --seed 11 \
//!     --torn 0.5 --flip 0.5 --save tests/chaos_corpus/recovery/faulty-seed11.json
//! ```
//!
//! Every seed runs [`bcc_simnet::run_recovery_schedule`]: an ordinary
//! chaos schedule during which the nemesis snapshots the live
//! [`DynamicSystem`] on one cadence and, on another, *kills* it and
//! recovers a replacement from (optionally fault-injecting) storage. The
//! binary enforces the recovery oracles over the whole sweep and exits
//! non-zero on any violation:
//!
//! - every recovered system is bit-identical to the killed one (same
//!   epoch, live overlay digest, cold-restart fixpoint and index stamp)
//!   with zero from-scratch index rebuilds;
//! - in the corrupted tier, injected torn writes and bit flips are always
//!   detected by the snapshot checksums and recovered from a previous
//!   generation — the sweep must actually exercise that fallback path;
//! - captured [`RecoveryArtifact`]s survive a JSON round trip and replay
//!   bit-identically.
//!
//! A failing seed is shrunk (smallest schedule length that still fails)
//! and saved as `recovery-failure-seed<seed>.json` under `--out` so CI
//! can upload it.
//!
//! The sweep sections of the JSON report contain only deterministic
//! counters; the full (non-smoke) report appends a `restore_scaling`
//! section timing warm (snapshot decode + restore) against cold
//! (from-scratch bootstrap) restarts — the acceptance bar is warm ≥ 10×
//! faster at n = 1024.
//!
//! [`DynamicSystem`]: bcc_simnet::DynamicSystem

use std::process::ExitCode;
use std::time::Instant;

use bcc_bench::BenchArgs;
use bcc_core::BandwidthClasses;
use bcc_metric::{BandwidthMatrix, NodeId, RationalTransform};
use bcc_simnet::{
    run_recovery_schedule, ChaosConfig, DynamicSystem, RecoveryArtifact, RecoveryConfig,
    StorageFaultPlan, SystemConfig, SystemSnapshot,
};

/// FNV-1a offset basis / prime — folds per-seed final digests into one
/// sweep digest, the same discipline the other sweep binaries use.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Fault probabilities of the corrupted tier: high enough that most
/// sweeps hit the fallback path, low enough that torn-then-flipped
/// double corruption stays plausible rather than certain.
const TORN_WRITE: f64 = 0.45;
const BIT_FLIP: f64 = 0.45;

fn fold_digest(mut h: u64, seed_digest: u64) -> u64 {
    for b in seed_digest.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Aggregated counters for one sweep tier.
#[derive(Default)]
struct Sweep {
    seeds: u64,
    kills: u64,
    snapshots: u64,
    fallback_recoveries: u64,
    corruption_detected: u64,
    corrupted_writes: u64,
    replayed_ops: u64,
    cold_hits: u64,
    cold_misses: u64,
    digest: u64,
    failed_seeds: Vec<u64>,
}

fn tier_config(faulty: bool, seed: u64) -> RecoveryConfig {
    RecoveryConfig {
        storage_faults: faulty.then(|| {
            StorageFaultPlan::new(seed)
                .torn_write(TORN_WRITE)
                .bit_flip(BIT_FLIP)
        }),
        ..RecoveryConfig::default()
    }
}

fn sweep(name: &str, faulty: bool, seeds: u64, cfg: &ChaosConfig, out_dir: &str) -> Sweep {
    let mut s = Sweep {
        digest: FNV_OFFSET,
        ..Sweep::default()
    };
    for seed in 0..seeds {
        let rcfg = tier_config(faulty, seed);
        let out = run_recovery_schedule(seed, cfg, &rcfg);
        s.seeds += 1;
        s.kills += out.kills;
        s.snapshots += out.snapshots;
        s.fallback_recoveries += out.fallback_recoveries;
        s.corruption_detected += out.corruption_detected;
        s.corrupted_writes += out.corrupted_writes;
        s.replayed_ops += out.replayed_ops;
        s.cold_hits += out.oracle_stats.cold_hits;
        s.cold_misses += out.oracle_stats.cold_misses;
        s.digest = fold_digest(s.digest, out.final_digest().unwrap_or(0));
        if !out.passed() {
            s.failed_seeds.push(seed);
            save_shrunk_failure(seed, faulty, cfg, out_dir);
        }
        if (seed + 1) % 100 == 0 {
            println!("  {name} {} / {seeds} seeds", seed + 1);
        }
    }
    s
}

/// Re-runs a failing seed at shrinking schedule lengths and saves the
/// smallest configuration that still fails, so the pinned reproducer is
/// as short as the failure allows.
fn save_shrunk_failure(seed: u64, faulty: bool, cfg: &ChaosConfig, out_dir: &str) {
    let rcfg = tier_config(faulty, seed);
    let mut shrunk = cfg.steps;
    let mut failures = Vec::new();
    for steps in 1..=cfg.steps {
        let out = run_recovery_schedule(seed, &ChaosConfig { steps, ..*cfg }, &rcfg);
        if !out.passed() {
            shrunk = steps;
            failures = out.failures;
            break;
        }
    }
    let (torn, flip) = if faulty {
        (TORN_WRITE, BIT_FLIP)
    } else {
        (0.0, 0.0)
    };
    let body = format!(
        "{{\"seed\": {seed}, \"universe\": {}, \"steps\": {shrunk}, \
         \"snapshot_every\": {}, \"kill_every\": {}, \"torn_write\": {torn}, \
         \"bit_flip\": {flip}, \"failures\": {:?}}}\n",
        cfg.universe, rcfg.snapshot_every, rcfg.kill_every, failures,
    );
    let path = format!("{out_dir}/recovery-failure-seed{seed}.json");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("recovery: could not save failure artifact {path}: {e}");
    } else {
        eprintln!("recovery: seed {seed} failed; shrunk reproducer saved to {path}");
    }
}

fn sweep_json(s: &Sweep) -> String {
    format!(
        "{{\"seeds\": {}, \"kills\": {}, \"snapshots\": {}, \
         \"fallback_recoveries\": {}, \"corruption_detected\": {}, \
         \"corrupted_writes\": {}, \"replayed_ops\": {}, \"cold_hits\": {}, \
         \"cold_misses\": {}, \"failed\": {}, \"digest\": \"{:016x}\"}}",
        s.seeds,
        s.kills,
        s.snapshots,
        s.fallback_recoveries,
        s.corruption_detected,
        s.corrupted_writes,
        s.replayed_ops,
        s.cold_hits,
        s.cold_misses,
        s.failed_seeds.len(),
        s.digest,
    )
}

/// Captures `seeds` artifacts per tier and replays each — the
/// bit-identity acceptance check for kill-restart runs.
fn replay_artifacts(seeds: u64, cfg: &ChaosConfig) -> Result<(), String> {
    for faulty in [false, true] {
        for seed in 0..seeds {
            let rcfg = tier_config(faulty, seed);
            let tier = if faulty { "corrupted" } else { "clean" };
            let artifact = RecoveryArtifact::capture(seed, cfg, &rcfg)
                .map_err(|e| format!("{tier} seed {seed}: capture failed: {e}"))?;
            let parsed = RecoveryArtifact::from_json(&artifact.to_json())
                .map_err(|e| format!("{tier} seed {seed}: JSON round trip failed: {e}"))?;
            if parsed != artifact {
                return Err(format!("{tier} seed {seed}: JSON round trip diverged"));
            }
            parsed
                .replay()
                .map_err(|e| format!("{tier} seed {seed}: {e}"))?;
        }
    }
    Ok(())
}

/// One warm-vs-cold restore measurement.
struct ScalePoint {
    n: usize,
    snapshot_bytes: usize,
    cold_ms: f64,
    decode_ms: f64,
    warm_ms: f64,
}

impl ScalePoint {
    fn speedup(&self) -> f64 {
        self.cold_ms / self.warm_ms.max(1e-9)
    }
}

/// Tiered access-link universe, the same shape the perf baselines use.
fn scale_universe(n: usize) -> (BandwidthMatrix, SystemConfig) {
    let tiers = [100.0f64, 60.0, 30.0, 12.0];
    let bandwidth = BandwidthMatrix::from_fn(n, |i, j| tiers[i % 4].min(tiers[j % 4]));
    let classes = BandwidthClasses::new(vec![25.0, 60.0], RationalTransform::default());
    (bandwidth, SystemConfig::new(classes))
}

/// Times a cold bootstrap of `n` hosts against a warm restore (snapshot
/// decode + reassembly) of the same membership, verifying the warm
/// replica is bit-identical before trusting its timing.
fn measure_restore(n: usize) -> Result<ScalePoint, String> {
    let (bandwidth, config) = scale_universe(n);
    let hosts: Vec<NodeId> = (0..n).map(NodeId::new).collect();

    let cold_start = Instant::now();
    let sys = DynamicSystem::bootstrap(bandwidth.clone(), config.clone(), &hosts)
        .map_err(|e| format!("n={n}: cold bootstrap failed: {e}"))?;
    let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;

    let bytes = SystemSnapshot::capture(&sys).encode();
    let snapshot_bytes = bytes.len();

    let mut warm_ms = f64::INFINITY;
    let mut decode_ms = f64::INFINITY;
    for _ in 0..3 {
        let warm_start = Instant::now();
        let snap =
            SystemSnapshot::decode(&bytes).map_err(|e| format!("n={n}: decode failed: {e}"))?;
        decode_ms = decode_ms.min(warm_start.elapsed().as_secs_f64() * 1e3);
        let restored = snap
            .restore(&bandwidth, &config)
            .map_err(|e| format!("n={n}: warm restore failed: {e}"))?;
        warm_ms = warm_ms.min(warm_start.elapsed().as_secs_f64() * 1e3);
        if restored.live_digest() != sys.live_digest()
            || restored.epoch() != sys.epoch()
            || restored.index_stamp() != sys.index_stamp()
        {
            return Err(format!("n={n}: warm restore is not bit-identical"));
        }
        if restored.cluster_index().stats().full_builds != 0 {
            return Err(format!(
                "n={n}: warm restore rebuilt the index from scratch"
            ));
        }
    }
    Ok(ScalePoint {
        n,
        snapshot_bytes,
        cold_ms,
        decode_ms,
        warm_ms,
    })
}

fn run() -> Result<ExitCode, String> {
    let args = BenchArgs::from_env();
    args.expect_known(
        &["--smoke"],
        &[
            "--json", "--out", "--seed", "--torn", "--flip", "--save", "--sizes",
        ],
    )?;
    let smoke = args.flag("--smoke");
    let json_path = args
        .value("--json")
        .unwrap_or("BENCH_recovery.json")
        .to_string();
    let out_dir = args.value("--out").unwrap_or(".").to_string();

    let cfg = ChaosConfig::default();

    // Single-seed mode: capture (and optionally save) one artifact.
    if let Some(seed) = args.parsed::<u64>("--seed")? {
        let torn = args.parsed_or::<f64>("--torn", 0.0)?;
        let flip = args.parsed_or::<f64>("--flip", 0.0)?;
        let rcfg = RecoveryConfig {
            storage_faults: (torn > 0.0 || flip > 0.0)
                .then(|| StorageFaultPlan::new(seed).torn_write(torn).bit_flip(flip)),
            ..RecoveryConfig::default()
        };
        let artifact = RecoveryArtifact::capture(seed, &cfg, &rcfg)
            .map_err(|e| format!("seed {seed}: {e}"))?;
        println!(
            "seed {seed}: {} kills, {} fallback recoveries, {} corrupted writes, \
             {} replayed ops, digest {:?}",
            artifact.kills,
            artifact.fallback_recoveries,
            artifact.corrupted_writes,
            artifact.replayed_ops,
            artifact.final_digest,
        );
        if let Some(path) = args.value("--save") {
            std::fs::write(path, artifact.to_json()).map_err(|e| format!("write {path}: {e}"))?;
            println!("saved kill-restart artifact to {path}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    let (clean_seeds, faulty_seeds, replay_seeds) = if smoke { (16, 8, 2) } else { (340, 160, 6) };

    println!("=== recovery — kill-restart durability under chaos schedules ===");
    println!(
        "smoke = {smoke}, universe = {}, steps = {}, snapshot_every = {}, \
         kill_every = {}, corrupted tier at torn {TORN_WRITE} / flip {BIT_FLIP}",
        cfg.universe,
        cfg.steps,
        RecoveryConfig::default().snapshot_every,
        RecoveryConfig::default().kill_every,
    );
    println!();

    let start = Instant::now();
    let clean = sweep("clean", false, clean_seeds, &cfg, &out_dir);
    let faulty = sweep("corrupted", true, faulty_seeds, &cfg, &out_dir);
    for (name, s) in [("clean", &clean), ("corrupted", &faulty)] {
        println!(
            "{name}: {} seeds, {} kills / {} snapshots, {} fallback recoveries \
             ({} generations skipped, {} writes corrupted), {} ops replayed",
            s.seeds,
            s.kills,
            s.snapshots,
            s.fallback_recoveries,
            s.corruption_detected,
            s.corrupted_writes,
            s.replayed_ops,
        );
    }

    replay_artifacts(replay_seeds, &cfg)?;
    println!("replayed {replay_seeds} artifact(s) per tier bit-identically");
    println!("sweep finished in {:.1?}", start.elapsed());
    println!();

    // Warm-vs-cold restore scaling: wall-clock, so full mode only — the
    // smoke report must stay byte-identical across runs.
    let mut scaling: Vec<ScalePoint> = Vec::new();
    if !smoke {
        let sizes: Vec<usize> = match args.value("--sizes") {
            Some(list) => list
                .split(',')
                .map(|t| t.trim().parse().map_err(|e| format!("bad --sizes: {e}")))
                .collect::<Result<_, _>>()?,
            None => vec![256, 1024, 8192],
        };
        for n in sizes {
            let p = measure_restore(n)?;
            println!(
                "n = {:>5}: cold {:>10.1} ms, warm {:>8.1} ms (decode {:.1} ms, {:>6.1}x), snapshot {} bytes",
                p.n,
                p.cold_ms,
                p.warm_ms,
                p.decode_ms,
                p.speedup(),
                p.snapshot_bytes,
            );
            scaling.push(p);
        }
        println!();
    }

    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|p| {
            format!(
                "{{\"n\": {}, \"snapshot_bytes\": {}, \"cold_ms\": {:.3}, \
                 \"decode_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup\": {:.1}}}",
                p.n,
                p.snapshot_bytes,
                p.cold_ms,
                p.decode_ms,
                p.warm_ms,
                p.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"recovery\",\n  \"smoke\": {smoke},\n  \"universe\": {},\n  \
         \"steps\": {},\n  \"snapshot_every\": {},\n  \"kill_every\": {},\n  \
         \"torn_write\": {TORN_WRITE},\n  \"bit_flip\": {BIT_FLIP},\n  \
         \"clean\": {},\n  \"corrupted\": {},\n  \"replayed_per_tier\": {replay_seeds},\n  \
         \"restore_scaling\": [{}]\n}}\n",
        cfg.universe,
        cfg.steps,
        RecoveryConfig::default().snapshot_every,
        RecoveryConfig::default().kill_every,
        sweep_json(&clean),
        sweep_json(&faulty),
        scaling_json.join(", "),
    );
    if json_path == "-" {
        println!("{json}");
    } else {
        std::fs::write(&json_path, &json).map_err(|e| format!("write {json_path}: {e}"))?;
        println!("wrote {json_path}");
    }

    for (name, s) in [("clean", &clean), ("corrupted", &faulty)] {
        if !s.failed_seeds.is_empty() {
            return Err(format!(
                "{name}: {} seed(s) violated a recovery oracle: {:?}",
                s.failed_seeds.len(),
                s.failed_seeds
            ));
        }
    }
    // The tiers must behave like their names: a clean sweep never sees
    // corruption; the corrupted sweep must actually exercise detection
    // and fallback, or its oracles pass vacuously.
    if clean.corrupted_writes != 0 || clean.fallback_recoveries != 0 {
        return Err(format!(
            "clean tier saw corruption: {} writes, {} fallbacks",
            clean.corrupted_writes, clean.fallback_recoveries
        ));
    }
    if faulty.corrupted_writes == 0
        || faulty.fallback_recoveries == 0
        || faulty.corruption_detected == 0
    {
        return Err(format!(
            "corrupted tier never exercised the fallback path: {} writes corrupted, \
             {} detected, {} fallbacks",
            faulty.corrupted_writes, faulty.corruption_detected, faulty.fallback_recoveries
        ));
    }
    for p in &scaling {
        if p.n >= 1024 && p.speedup() < 10.0 {
            return Err(format!(
                "n={}: warm restore only {:.1}x faster than cold (acceptance bar is 10x)",
                p.n,
                p.speedup()
            ));
        }
    }
    println!(
        "all recovery oracles held across {} seeds",
        clean.seeds + faulty.seeds
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("recovery: {e}");
            ExitCode::FAILURE
        }
    }
}
