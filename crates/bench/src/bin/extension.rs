//! Runs the extension experiment: convergence cost of the decentralized
//! state vs system size, under both simulator engines.
//!
//! ```sh
//! cargo run --release -p bcc-bench --bin extension
//! ```

use bcc_bench::{banner, Effort};
use bcc_eval::{run_convergence, run_embedding, ConvergenceConfig, EmbeddingConfig};

fn main() {
    let effort = Effort::from_args();
    banner("Extension (convergence cost vs n)", effort);
    let cfg = match effort {
        Effort::Fast => ConvergenceConfig::fast(),
        Effort::Standard => ConvergenceConfig::standard(),
        Effort::Paper => {
            let mut cfg = ConvergenceConfig::standard();
            cfg.rounds = 10;
            cfg
        }
    };
    let start = std::time::Instant::now();
    let result = run_convergence(&cfg);
    let table = result.table();
    println!("{}", table.render());
    println!("{}", table.render_chart(12));
    println!(
        "rounds/size = {}, elapsed = {:.1?}",
        cfg.rounds,
        start.elapsed()
    );

    let emb_cfg = match effort {
        Effort::Fast => EmbeddingConfig::fast(),
        _ => EmbeddingConfig::standard(),
    };
    let emb = run_embedding(&emb_cfg);
    println!();
    println!("{}", emb.table().render());
    println!("strategies: {}", emb.legend());
}
