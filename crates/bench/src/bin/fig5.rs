//! Regenerates Fig. 5: the effect of treeness — WPR vs `f_b`, raw and
//! normalized by `(·)^{f_a*}` with `α = 3.2`, over a family of datasets of
//! varying `ε_avg`.
//!
//! ```sh
//! cargo run --release -p bcc-bench --bin fig5
//! cargo run --release -p bcc-bench --bin fig5 -- --paper
//! ```

use bcc_bench::{banner, Effort};
use bcc_eval::{run_fig5, Fig5Config};

fn main() {
    let effort = Effort::from_args();
    banner("Fig. 5 (effect of treeness on WPR)", effort);

    let cfg = match effort {
        Effort::Fast => Fig5Config::fast(),
        Effort::Standard => {
            let mut cfg = Fig5Config::paper();
            cfg.rounds = 3;
            cfg.queries_per_round = 500;
            cfg.eps_samples = 20_000;
            cfg
        }
        Effort::Paper => Fig5Config::paper(),
    };

    let start = std::time::Instant::now();
    let result = run_fig5(&cfg);
    for table in result.tables() {
        println!("{}", table.render());
        println!("{}", table.render_chart(12));
    }
    println!("datasets (noise sigma -> eps_avg):");
    for d in &result.datasets {
        println!(
            "  sigma = {:.2} -> eps_avg = {:.4}",
            d.noise_sigma, d.epsilon_avg
        );
    }
    println!(
        "rounds = {}, queries/round/dataset = {}, alpha = {}, elapsed = {:.1?}",
        cfg.rounds,
        cfg.queries_per_round,
        cfg.alpha,
        start.elapsed()
    );
}
