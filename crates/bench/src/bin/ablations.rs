//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. `n_cut` — message size vs decentralized return rate (the paper's
//!    tradeoff knob).
//! 2. Number of bandwidth classes — routing-table size vs accuracy of the
//!    snapped constraint.
//! 3. Rational vs linear bandwidth transform — the related-work claim that
//!    the linear transform embeds poorly.
//! 4. Embedding heuristics — naive 3-measurement placement vs base-candidate
//!    search + median-residual weight fitting.
//! 5. Vivaldi dimensionality (2-d vs 4-d) for the baseline.
//!
//! ```sh
//! cargo run --release -p bcc-bench --bin ablations
//! ```

use bcc_bench::{banner, Effort};
use bcc_core::BandwidthClasses;
use bcc_datasets::{generate, SynthConfig};
use bcc_embed::{FrameworkConfig, PredictionFramework};
use bcc_eval::{Series, Table};
use bcc_metric::stats::{relative_error, EmpiricalCdf};
use bcc_metric::{FiniteMetric, LinearTransform, NodeId, RationalTransform};
use bcc_simnet::{ClusterSystem, SystemConfig};
use bcc_vivaldi::{VivaldiConfig, VivaldiSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(effort: Effort) -> bcc_metric::BandwidthMatrix {
    let mut cfg = SynthConfig::small(77);
    cfg.nodes = match effort {
        Effort::Fast => 30,
        Effort::Standard => 80,
        Effort::Paper => 150,
    };
    generate(&cfg)
}

/// Median relative bandwidth-prediction error of a framework config.
fn embed_median_error(bw: &bcc_metric::BandwidthMatrix, config: FrameworkConfig) -> f64 {
    let t = RationalTransform::default();
    let d = t.distance_matrix(bw);
    let fw = PredictionFramework::build_from_matrix(&d, config);
    let predicted = fw.predicted_matrix();
    let errs: Vec<f64> = bw
        .iter_pairs()
        .map(|(i, j, real)| relative_error(real, t.to_bandwidth(predicted.get(i, j))))
        .collect();
    EmpiricalCdf::new(errs).percentile(50.0)
}

fn ablate_ncut(bw: &bcc_metric::BandwidthMatrix, queries: usize) {
    let t = RationalTransform::default();
    let n = bw.len();
    let ncuts = [2usize, 5, 10, 20];
    let mut rr_col = Vec::new();
    let mut bytes_col = Vec::new();
    for &n_cut in &ncuts {
        let classes = BandwidthClasses::linspace(10.0, 80.0, 10, t);
        let mut config = SystemConfig::new(classes);
        config.protocol = bcc_core::ProtocolConfig::new(n_cut, config.protocol.classes.clone());
        let system = ClusterSystem::build(bw.clone(), config);
        let mut rng = StdRng::seed_from_u64(1);
        let mut found = 0usize;
        for _ in 0..queries {
            let k = rng.gen_range(2..=(n / 3).max(2));
            let b = rng.gen_range(15.0..=70.0);
            let start = NodeId::new(rng.gen_range(0..n));
            if system.query(start, k, b).expect("valid").found() {
                found += 1;
            }
        }
        rr_col.push(Some(found as f64 / queries as f64));
        bytes_col.push(Some(system.network().traffic().bytes as f64));
    }
    let table = Table::new(
        "Ablation 1 — n_cut: gossip volume vs decentralized RR",
        "n_cut",
        ncuts.iter().map(|&v| v as f64).collect(),
        vec![
            Series::new("RR", rr_col),
            Series::new("GOSSIP-BYTES", bytes_col),
        ],
    );
    println!("{}", table.render());
}

fn ablate_class_count(bw: &bcc_metric::BandwidthMatrix, queries: usize) {
    let t = RationalTransform::default();
    let n = bw.len();
    let counts = [2usize, 4, 8, 16, 32];
    let mut wpr_col = Vec::new();
    let mut crt_bytes = Vec::new();
    for &count in &counts {
        let classes = BandwidthClasses::linspace(10.0, 80.0, count, t);
        let system = ClusterSystem::build(bw.clone(), SystemConfig::new(classes));
        let mut rng = StdRng::seed_from_u64(2);
        let (mut wrong, mut total) = (0usize, 0usize);
        for _ in 0..queries {
            let b = rng.gen_range(15.0..=70.0);
            let start = NodeId::new(rng.gen_range(0..n));
            if let Some(cluster) = system.query(start, 4, b).expect("valid").cluster {
                let (w, tt) = system.score_cluster(&cluster, b);
                wrong += w;
                total += tt;
            }
        }
        wpr_col.push(if total > 0 {
            Some(wrong as f64 / total as f64)
        } else {
            None
        });
        // One CRT row per neighbor per class: 4 bytes per entry.
        crt_bytes.push(Some((count * 4) as f64));
    }
    let table = Table::new(
        "Ablation 2 — bandwidth classes: CRT row size vs WPR at snapped constraints",
        "|L|",
        counts.iter().map(|&v| v as f64).collect(),
        vec![
            Series::new("WPR", wpr_col),
            Series::new("CRT-ROW-BYTES", crt_bytes),
        ],
    );
    println!("{}", table.render());
}

fn ablate_transform(bw: &bcc_metric::BandwidthMatrix) {
    // The related-work claim: embedding bandwidth into Euclidean space with
    // the *linear* transform d = C − BW is poor, while the *rational*
    // transform d = C / BW is workable. Run both through Vivaldi and
    // compare median relative bandwidth-prediction error.
    let rational = RationalTransform::default();
    let linear =
        LinearTransform::new(1.05 * bw.pair_values().iter().fold(0.0f64, |a, &b| a.max(b)));
    let vcfg = VivaldiConfig {
        rounds: 150,
        ..Default::default()
    };

    let median_err = |errs: Vec<f64>| EmpiricalCdf::new(errs).percentile(50.0);

    let pts = VivaldiSystem::embed(rational.distance_matrix(bw), vcfg);
    let rational_err = median_err(
        bw.iter_pairs()
            .map(|(i, j, real)| relative_error(real, rational.to_bandwidth(pts.distance(i, j))))
            .collect(),
    );

    let pts = VivaldiSystem::embed(linear.distance_matrix(bw), vcfg);
    let linear_err = median_err(
        bw.iter_pairs()
            .map(|(i, j, real)| relative_error(real, linear.to_bandwidth(pts.distance(i, j))))
            .collect(),
    );

    let table = Table::new(
        "Ablation 3 — bandwidth transform for the Euclidean baseline (median rel. error)",
        "variant",
        vec![0.0, 1.0],
        vec![Series::new(
            "MEDIAN-REL-ERR",
            vec![Some(rational_err), Some(linear_err)],
        )],
    );
    println!("{}", table.render());
    println!("variant 0 = rational d=C/BW, variant 1 = linear d=C-BW (Vivaldi 2-d for both)\n");
}

fn ablate_heuristics(bw: &bcc_metric::BandwidthMatrix) {
    let naive = FrameworkConfig {
        base_candidates: 1,
        fit_leaf_weight: false,
        ..Default::default()
    };
    let fit_only = FrameworkConfig {
        base_candidates: 1,
        fit_leaf_weight: true,
        ..Default::default()
    };
    let full = FrameworkConfig::default();
    let table = Table::new(
        "Ablation 4 — embedding heuristics (median rel. error of prediction)",
        "variant",
        vec![0.0, 1.0, 2.0],
        vec![Series::new(
            "MEDIAN-REL-ERR",
            vec![
                Some(embed_median_error(bw, naive)),
                Some(embed_median_error(bw, fit_only)),
                Some(embed_median_error(bw, full)),
            ],
        )],
    );
    println!("{}", table.render());
    println!("variant 0 = naive 3-measurement placement, 1 = + median-weight fit, 2 = + base candidates\n");
}

fn ablate_vivaldi_dim(bw: &bcc_metric::BandwidthMatrix) {
    let t = RationalTransform::default();
    let d = t.distance_matrix(bw);
    let mut errs = Vec::new();
    let dims = [2usize, 4, 8];
    for &dim in &dims {
        let cfg = VivaldiConfig {
            dim,
            rounds: 150,
            ..Default::default()
        };
        let pts = VivaldiSystem::embed(d.clone(), cfg);
        let sample: Vec<f64> = bw
            .iter_pairs()
            .map(|(i, j, real)| relative_error(real, t.to_bandwidth(pts.distance(i, j))))
            .collect();
        errs.push(Some(EmpiricalCdf::new(sample).percentile(50.0)));
    }
    let table = Table::new(
        "Ablation 5 — Vivaldi dimensionality (median rel. error of prediction)",
        "dim",
        dims.iter().map(|&v| v as f64).collect(),
        vec![Series::new("MEDIAN-REL-ERR", errs)],
    );
    println!("{}", table.render());
}

fn ablate_route_policy(bw: &bcc_metric::BandwidthMatrix, queries: usize) {
    use bcc_core::RoutePolicy;
    let t = RationalTransform::default();
    let n = bw.len();
    let classes = BandwidthClasses::linspace(10.0, 80.0, 10, t);
    let system = ClusterSystem::build(bw.clone(), SystemConfig::new(classes));
    let policies = [
        RoutePolicy::FirstFit,
        RoutePolicy::BestFit,
        RoutePolicy::TightestFit,
    ];
    let mut hops_col = Vec::new();
    let mut rr_col = Vec::new();
    for &policy in &policies {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut hops, mut found) = (0usize, 0usize);
        for _ in 0..queries {
            let k = rng.gen_range(2..=(n / 4).max(2));
            let b = rng.gen_range(15.0..=70.0);
            let start = NodeId::new(rng.gen_range(0..n));
            let out = system
                .network()
                .query_with_policy(start, k, b, policy)
                .expect("valid");
            hops += out.hops;
            if out.found() {
                found += 1;
            }
        }
        hops_col.push(Some(hops as f64 / queries as f64));
        rr_col.push(Some(found as f64 / queries as f64));
    }
    let table = Table::new(
        "Ablation 6 — query forwarding policy (same CRTs, identical feasibility)",
        "policy",
        vec![0.0, 1.0, 2.0],
        vec![
            Series::new("MEAN-HOPS", hops_col),
            Series::new("RR", rr_col),
        ],
    );
    println!("{}", table.render());
    println!("policy 0 = first-fit (paper's 'any neighbor'), 1 = best-fit, 2 = tightest-fit\n");
}

fn ablate_ensemble(bw: &bcc_metric::BandwidthMatrix) {
    use bcc_embed::{EnsembleConfig, TreeEnsemble};
    let t = RationalTransform::default();
    let d = t.distance_matrix(bw);
    let sizes = [1usize, 3, 5, 7];
    let mut err_col = Vec::new();
    let mut probe_col = Vec::new();
    for &members in &sizes {
        let ens = TreeEnsemble::build_from_matrix(
            &d,
            EnsembleConfig {
                members,
                ..Default::default()
            },
        );
        let pred = ens.predicted_matrix();
        let errs: Vec<f64> = bw
            .iter_pairs()
            .map(|(i, j, real)| relative_error(real, t.to_bandwidth(pred.get(i, j))))
            .collect();
        err_col.push(Some(EmpiricalCdf::new(errs).percentile(50.0)));
        probe_col.push(Some(ens.probe_count() as f64));
    }
    let table = Table::new(
        "Ablation 7 — prediction-tree ensemble size (median rel. error vs probe cost)",
        "members",
        sizes.iter().map(|&v| v as f64).collect(),
        vec![
            Series::new("MEDIAN-REL-ERR", err_col),
            Series::new("PROBES", probe_col),
        ],
    );
    println!("{}", table.render());
}

fn ablate_measurement_noise(bw: &bcc_metric::BandwidthMatrix) {
    use bcc_embed::MeasurementModel;
    let t = RationalTransform::default();
    let d = t.distance_matrix(bw);
    let repeats = [1usize, 2, 4, 8];
    let mut err_col = Vec::new();
    for &r in &repeats {
        let model = MeasurementModel::new(0.25, r, 13);
        let mut oracle = model.wrap(|a: NodeId, b: NodeId| d.get(a.index(), b.index()));
        let mut fw = PredictionFramework::new(FrameworkConfig::default());
        for i in 0..d.len() {
            fw.join(NodeId::new(i), &mut oracle).expect("fresh host");
        }
        let pred = fw.predicted_matrix();
        let errs: Vec<f64> = bw
            .iter_pairs()
            .map(|(i, j, real)| relative_error(real, t.to_bandwidth(pred.get(i, j))))
            .collect();
        err_col.push(Some(EmpiricalCdf::new(errs).percentile(50.0)));
    }
    let table = Table::new(
        "Ablation 8 — instrument noise (sigma 0.25): repeats-per-probe vs embedding error",
        "repeats",
        repeats.iter().map(|&v| v as f64).collect(),
        vec![Series::new("MEDIAN-REL-ERR", err_col)],
    );
    println!("{}", table.render());
}

fn ablate_sword_budget(bw: &bcc_metric::BandwidthMatrix, queries: usize) {
    // The related-work contrast: SWORD's budgeted exhaustive search is
    // k-Clique. On tree-like bandwidth data the threshold graph is benign
    // and the search completes easily; on an adversarial (uniform random)
    // metric near the clique threshold, absence proofs explode and the
    // budget times out -- while Algorithm 1's cost stays polynomial (and on
    // tree metrics its answer is guaranteed).
    use bcc_core::sword::find_cluster_budgeted;
    let t = RationalTransform::default();
    let tree_like = t.distance_matrix(bw);
    let n = tree_like.len();
    // Adversarial: i.i.d. uniform distances, l at the median -> G(n, 1/2).
    let adversarial = {
        let mut rng = StdRng::seed_from_u64(99);
        bcc_metric::DistanceMatrix::from_fn(n, |_, _| rng.gen_range(0.0..1.0))
    };

    let budgets = [100u64, 1000, 10_000, 100_000];
    let run = |metric: &bcc_metric::DistanceMatrix,
               l: f64,
               k: usize|
     -> (Vec<Option<f64>>, Vec<Option<f64>>) {
        let mut complete = Vec::new();
        let mut work = Vec::new();
        for &budget in &budgets {
            let (mut done, mut exp_total) = (0usize, 0u64);
            for q in 0..queries {
                let out = find_cluster_budgeted(metric, k, l, budget, q as u64);
                if !out.exhausted {
                    done += 1;
                }
                exp_total += out.expansions;
            }
            complete.push(Some(done as f64 / queries as f64));
            work.push(Some(exp_total as f64 / queries as f64));
        }
        (complete, work)
    };

    // Tree-like: ask just above the max cluster size (absence proof).
    let l_tree = t.distance_constraint(45.0);
    let k_tree = bcc_core::max_cluster_size(&tree_like, l_tree) + 1;
    let (tree_done, tree_work) = run(&tree_like, l_tree, k_tree);
    // Adversarial: k just above the expected max clique of G(n, 1/2).
    let k_adv = (2.0 * (n as f64).log2()) as usize + 2;
    let (adv_done, adv_work) = run(&adversarial, 0.5, k_adv);

    let table = Table::new(
        "Ablation 9 - SWORD-style budgeted search: completion rate and work per query",
        "budget",
        budgets.iter().map(|&v| v as f64).collect(),
        vec![
            Series::new("TREE-COMPLETE", tree_done),
            Series::new("TREE-EXPANSIONS", tree_work),
            Series::new("ADVERSARIAL-COMPLETE", adv_done),
            Series::new("ADVERSARIAL-EXPANSIONS", adv_work),
        ],
    );
    println!("{}", table.render());
    println!(
        "tree-like query: k = {k_tree} (just unsatisfiable); adversarial: k = {k_adv} on G(n, 1/2).\n\
         Algorithm 1 answers every query in O(n^3) regardless.\n"
    );
}

fn main() {
    let effort = Effort::from_args();
    banner("Ablations", effort);
    let bw = dataset(effort);
    let queries = effort.queries(200, 1000);

    ablate_ncut(&bw, queries);
    ablate_class_count(&bw, queries);
    ablate_transform(&bw);
    ablate_heuristics(&bw);
    ablate_vivaldi_dim(&bw);
    ablate_route_policy(&bw, queries);
    ablate_ensemble(&bw);
    ablate_measurement_noise(&bw);
    ablate_sword_budget(&bw, queries.min(300));
}
