//! Regenerates Fig. 4: the decentralization tradeoff (RR vs `k`) for both
//! datasets.
//!
//! ```sh
//! cargo run --release -p bcc-bench --bin fig4
//! cargo run --release -p bcc-bench --bin fig4 -- --paper
//! ```

use bcc_bench::{banner, Effort};
use bcc_datasets::SynthConfig;
use bcc_eval::{run_fig4, DatasetKind, Fig4Config};

fn main() {
    let effort = Effort::from_args();
    banner("Fig. 4 (tradeoff of decentralization: RR vs k)", effort);

    let configs: Vec<Fig4Config> = match effort {
        Effort::Fast => {
            let mut synth = SynthConfig::small(0);
            synth.nodes = 30;
            let mut cfg = Fig4Config::fast(DatasetKind::Custom(synth));
            cfg.b_range = (10.0, 60.0);
            vec![cfg]
        }
        Effort::Standard => {
            let mut hp = Fig4Config::paper_hp();
            hp.rounds = 10;
            let mut umd = Fig4Config::paper_umd();
            umd.rounds = 10;
            vec![hp, umd]
        }
        Effort::Paper => vec![Fig4Config::paper_hp(), Fig4Config::paper_umd()],
    };

    for cfg in &configs {
        let start = std::time::Instant::now();
        let result = run_fig4(cfg);
        let table = result.table();
        println!("{}", table.render());
        println!("{}", table.render_chart(12));
        println!(
            "[{}] rounds = {}, queries/round = {}, n_cut = {}, elapsed = {:.1?}",
            result.label,
            cfg.rounds,
            cfg.queries_per_round,
            cfg.n_cut,
            start.elapsed()
        );
        println!();
    }
}
