//! Regenerates Fig. 3: clustering accuracy (WPR vs `b`) and the
//! bandwidth-prediction relative-error CDFs, for both datasets.
//!
//! ```sh
//! cargo run --release -p bcc-bench --bin fig3            # standard effort
//! cargo run --release -p bcc-bench --bin fig3 -- --paper # full parameters
//! ```

use bcc_bench::{banner, Effort};
use bcc_datasets::SynthConfig;
use bcc_eval::{run_fig3, DatasetKind, Fig3Config};

fn main() {
    let effort = Effort::from_args();
    banner("Fig. 3 (accuracy: WPR vs b; prediction-error CDFs)", effort);

    let configs: Vec<Fig3Config> = match effort {
        Effort::Fast => {
            let mut synth = SynthConfig::small(0);
            synth.nodes = 30;
            let mut cfg = Fig3Config::fast(DatasetKind::Custom(synth));
            cfg.b_range = (10.0, 60.0);
            cfg.k = 3;
            vec![cfg]
        }
        Effort::Standard => {
            let mut hp = Fig3Config::paper_hp();
            hp.rounds = 3;
            hp.queries_per_round = 300;
            let mut umd = Fig3Config::paper_umd();
            umd.rounds = 3;
            umd.queries_per_round = 300;
            vec![hp, umd]
        }
        Effort::Paper => vec![Fig3Config::paper_hp(), Fig3Config::paper_umd()],
    };

    for cfg in &configs {
        let start = std::time::Instant::now();
        let result = run_fig3(cfg);
        for table in result.tables() {
            println!("{}", table.render());
            println!("{}", table.render_chart(12));
        }
        println!(
            "[{}] rounds = {}, queries/round = {}, RR (dec/cen/eucl) = {:?}, elapsed = {:.1?}",
            result.label,
            cfg.rounds,
            cfg.queries_per_round,
            result.rr,
            start.elapsed()
        );
        println!();
    }
}
