//! `churn` — per-op cost of incremental overlay maintenance vs the full
//! rebuild it replaced, checked in as `BENCH_churn.json`.
//!
//! ```sh
//! # Full sweep (64 / 256 / 1024 hosts, 200 ops each):
//! cargo run --release -p bcc-bench --bin churn
//!
//! # CI smoke sweep (byte-stable BENCH_churn.json):
//! cargo run --release -p bcc-bench --bin churn -- --smoke
//! ```
//!
//! Each size bootstraps a fully-joined [`bcc_simnet::DynamicSystem`] and
//! drives a deterministic join/leave/crash/recover schedule through it,
//! recording the overlay's own work counters ([`bcc_simnet::OverlayStats`])
//! per op. The rebuild baseline is measured, not assumed:
//! [`DynamicSystem::rebuild_cost_probe`] converges a blank overlay of the
//! same membership and reports its rounds, messages and predicted-matrix
//! entries — the cost every single churn op paid before incremental
//! maintenance.
//!
//! The binary enforces the maintenance oracles over the whole sweep and
//! exits non-zero on any violation:
//!
//! - zero full reconvergences after bootstrap (every op repaired the
//!   overlay in place);
//! - the live digest equals the cold-restart digest after every schedule
//!   (the incremental fixpoint is bit-identical to a rebuild's);
//! - at 1024 hosts the mean per-op work is at least 10x below the
//!   rebuild baseline.
//!
//! The JSON report contains only deterministic counters — never
//! wall-clock — so two runs at the same arguments produce byte-identical
//! files.

use std::process::ExitCode;

use bcc_bench::BenchArgs;
use bcc_core::BandwidthClasses;
use bcc_metric::{BandwidthMatrix, NodeId, RationalTransform};
use bcc_simnet::{DynamicSystem, SystemConfig};

/// Deterministic splitmix64 step — the schedule and bandwidth generator.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Access-link bandwidth model: every host gets a deterministic capacity
/// tier and a pair's bandwidth is the min of its endpoints' tiers.
fn universe(n: usize, seed: u64) -> BandwidthMatrix {
    let mut state = seed;
    let caps: Vec<f64> = (0..n)
        .map(|_| match mix(&mut state) % 4 {
            0 => 100.0,
            1 => 80.0,
            2 => 30.0,
            _ => 10.0,
        })
        .collect();
    BandwidthMatrix::from_fn(n, |i, j| caps[i].min(caps[j]))
}

/// Per-op maxima and totals accumulated over one schedule.
#[derive(Default)]
struct OpCosts {
    ops: u64,
    joins: u64,
    leaves: u64,
    crashes: u64,
    recovers: u64,
    messages: u64,
    messages_max: u64,
    rounds_max: u64,
    region_max: u64,
    predicted_entries: u64,
}

struct SizeReport {
    universe: usize,
    costs: OpCosts,
    rebuild_rounds: u64,
    rebuild_messages: u64,
    rebuild_entries: u64,
    speedup: f64,
    live_digest: u64,
}

/// Runs the deterministic churn schedule at one universe size and
/// measures incremental per-op cost against the rebuild baseline.
fn run_size(n: usize, ops: u64, seed: u64) -> Result<SizeReport, String> {
    let bw = universe(n, seed);
    let classes = BandwidthClasses::new(vec![25.0, 75.0], RationalTransform::default());
    let hosts: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let mut sys = DynamicSystem::bootstrap(bw, SystemConfig::new(classes), &hosts)
        .map_err(|e| format!("n={n}: bootstrap failed: {e}"))?;

    let mut state = seed ^ 0xC0FF_EE00_DEAD_BEEF;
    let mut costs = OpCosts::default();
    let mut out: Vec<NodeId> = Vec::new(); // left or crashed, crashed flagged below
    let mut crashed: Vec<NodeId> = Vec::new();
    for _ in 0..ops {
        let r = mix(&mut state);
        let kind = r % 4;
        let result = match kind {
            0 if !out.is_empty() => {
                let h = out.swap_remove((r >> 8) as usize % out.len());
                costs.joins += 1;
                sys.join(h)
            }
            1 if !crashed.is_empty() => {
                let h = crashed.swap_remove((r >> 8) as usize % crashed.len());
                costs.recovers += 1;
                sys.recover(h)
            }
            k => {
                // Departures dominate the generator's fallbacks, so cap
                // them at half the universe to keep the system busy.
                let active: Vec<NodeId> = sys.active().collect();
                if active.len() <= n / 2 {
                    let h = if out.is_empty() {
                        continue;
                    } else {
                        out.swap_remove((r >> 8) as usize % out.len())
                    };
                    costs.joins += 1;
                    sys.join(h)
                } else {
                    let h = active[(r >> 8) as usize % active.len()];
                    if k == 2 {
                        costs.crashes += 1;
                        crashed.push(h);
                        sys.crash(h)
                    } else {
                        costs.leaves += 1;
                        out.push(h);
                        sys.leave(h)
                    }
                }
            }
        };
        result.map_err(|e| format!("n={n}: churn op failed: {e}"))?;
        costs.ops += 1;
        let st = sys.overlay_stats();
        costs.messages += st.last_messages;
        costs.messages_max = costs.messages_max.max(st.last_messages);
        costs.rounds_max = costs.rounds_max.max(st.last_rounds);
        costs.region_max = costs.region_max.max(st.last_region);
        costs.predicted_entries += st.last_predicted_entries;
    }

    let stats = sys.overlay_stats();
    if stats.full_reconvergences != 1 {
        return Err(format!(
            "n={n}: {} full reconvergence(s) — only the bootstrap may pay one",
            stats.full_reconvergences
        ));
    }
    if stats.incremental_ops != costs.ops {
        return Err(format!(
            "n={n}: {} incremental op(s) recorded for {} applied",
            stats.incremental_ops, costs.ops
        ));
    }
    let live = sys
        .live_digest()
        .ok_or_else(|| format!("n={n}: schedule drained the membership"))?;
    let cold = sys
        .cold_restart_digest()
        .map_err(|e| format!("n={n}: cold reference failed: {e}"))?;
    if cold != Some(live) {
        return Err(format!(
            "n={n}: live digest {live:016x} differs from the cold-restart fixpoint {cold:?}"
        ));
    }

    let probe = sys
        .rebuild_cost_probe()
        .map_err(|e| format!("n={n}: rebuild probe failed: {e}"))?
        .expect("membership is non-empty");
    // Work = gossip messages + predicted-matrix entries computed; both
    // paths are measured in the same units.
    let op_work = (costs.messages + costs.predicted_entries) as f64 / costs.ops.max(1) as f64;
    let rebuild_work = (probe.messages + probe.predicted_entries) as f64;
    let speedup = rebuild_work / op_work.max(1.0);

    Ok(SizeReport {
        universe: n,
        costs,
        rebuild_rounds: probe.rounds,
        rebuild_messages: probe.messages,
        rebuild_entries: probe.predicted_entries,
        speedup,
        live_digest: live,
    })
}

fn size_json(r: &SizeReport) -> String {
    let c = &r.costs;
    let mean_messages = c.messages as f64 / c.ops.max(1) as f64;
    format!(
        "{{\"universe\": {}, \"ops\": {}, \"joins\": {}, \"leaves\": {}, \
         \"crashes\": {}, \"recovers\": {}, \
         \"op_messages_mean\": {mean_messages:.1}, \"op_messages_max\": {}, \
         \"op_rounds_max\": {}, \"op_region_max\": {}, \
         \"op_predicted_entries_total\": {}, \
         \"rebuild_rounds\": {}, \"rebuild_messages\": {}, \
         \"rebuild_predicted_entries\": {}, \
         \"per_op_speedup\": {:.1}, \"live_digest\": \"{:016x}\"}}",
        r.universe,
        c.ops,
        c.joins,
        c.leaves,
        c.crashes,
        c.recovers,
        c.messages_max,
        c.rounds_max,
        c.region_max,
        c.predicted_entries,
        r.rebuild_rounds,
        r.rebuild_messages,
        r.rebuild_entries,
        r.speedup,
        r.live_digest,
    )
}

fn run() -> Result<ExitCode, String> {
    let args = BenchArgs::from_env();
    args.expect_known(&["--smoke"], &["--json"])?;
    let smoke = args.flag("--smoke");
    let json_path = args
        .value("--json")
        .unwrap_or("BENCH_churn.json")
        .to_string();

    bcc_obs::set_logical_time(1_000);
    let ops = if smoke { 40 } else { 200 };
    let sizes = [64usize, 256, 1024];

    println!("=== churn — incremental overlay maintenance vs full rebuild ===");
    println!("smoke = {smoke}, sizes = {sizes:?}, ops per size = {ops}");
    println!();

    let start = std::time::Instant::now();
    let mut reports = Vec::new();
    for &n in &sizes {
        let r = run_size(n, ops, 0x5EED_0001 + n as u64)?;
        println!(
            "n = {:4}: {} ops ({} join / {} leave / {} crash / {} recover), \
             mean {:.1} msgs/op (max {}), rebuild {} msgs -> {:.1}x per-op speedup",
            r.universe,
            r.costs.ops,
            r.costs.joins,
            r.costs.leaves,
            r.costs.crashes,
            r.costs.recovers,
            r.costs.messages as f64 / r.costs.ops.max(1) as f64,
            r.costs.messages_max,
            r.rebuild_messages,
            r.speedup,
        );
        reports.push(r);
    }
    println!("sweep finished in {:.1?}", start.elapsed());
    println!();

    let json = format!(
        "{{\n  \"bench\": \"churn\",\n  \"smoke\": {smoke},\n  \"ops_per_size\": {ops},\n  \
         \"sizes\": [\n    {}\n  ]\n}}\n",
        reports
            .iter()
            .map(size_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    if json_path == "-" {
        println!("{json}");
    } else {
        std::fs::write(&json_path, &json).map_err(|e| format!("write {json_path}: {e}"))?;
        println!("wrote {json_path}");
    }

    // The headline acceptance bar: at 1024 hosts a churn op must cost at
    // least 10x less than the full rebuild it replaced.
    let big = reports
        .iter()
        .find(|r| r.universe == 1024)
        .expect("1024 is in the sweep");
    if big.speedup < 10.0 {
        return Err(format!(
            "per-op speedup at n=1024 is {:.1}x, below the 10x bar",
            big.speedup
        ));
    }
    println!(
        "all maintenance oracles held; n=1024 per-op speedup {:.1}x",
        big.speedup
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("churn: {e}");
            ExitCode::FAILURE
        }
    }
}
