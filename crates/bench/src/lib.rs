//! Benchmark and figure-regeneration support for the bandwidth-constrained
//! clustering reproduction.
//!
//! The binaries (`fig3`…`fig6`, `ablations`) regenerate every figure of the
//! paper's evaluation as plain-text tables; the Criterion benches measure
//! the algorithmic kernels (Algorithm 1, tree embedding, Vivaldi, bipartite
//! matching, query routing, treeness statistics).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;

pub use args::BenchArgs;

/// Effort level selected on the command line of a figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Seconds-scale smoke run (tiny synthetic datasets).
    Fast,
    /// Minutes-scale run at reduced round counts (default).
    Standard,
    /// The paper's full parameters.
    Paper,
}

impl Effort {
    /// Parses the process arguments: `--fast`, `--paper`, or nothing.
    pub fn from_args() -> Effort {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--fast") {
            Effort::Fast
        } else if args.iter().any(|a| a == "--paper") {
            Effort::Paper
        } else {
            Effort::Standard
        }
    }

    /// Scales a round count: fast → 1, standard → `standard`, paper →
    /// `paper`.
    pub fn rounds(self, standard: usize, paper: usize) -> usize {
        match self {
            Effort::Fast => 1,
            Effort::Standard => standard,
            Effort::Paper => paper,
        }
    }

    /// Scales a query count.
    pub fn queries(self, standard: usize, paper: usize) -> usize {
        match self {
            Effort::Fast => standard.min(50),
            Effort::Standard => standard,
            Effort::Paper => paper,
        }
    }
}

/// Prints the standard run header for a figure binary.
pub fn banner(figure: &str, effort: Effort) {
    println!("=== {figure} — Searching for Bandwidth-Constrained Clusters (ICDCS 2011) ===");
    println!("effort: {effort:?} (use --fast / --paper to change)");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_scaling() {
        assert_eq!(Effort::Fast.rounds(5, 10), 1);
        assert_eq!(Effort::Standard.rounds(5, 10), 5);
        assert_eq!(Effort::Paper.rounds(5, 10), 10);
        assert_eq!(Effort::Fast.queries(200, 1000), 50);
        assert_eq!(Effort::Paper.queries(200, 1000), 1000);
    }
}
