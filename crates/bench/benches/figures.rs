//! Not a Criterion microbench: running `cargo bench` regenerates every
//! paper figure at standard effort and prints the tables, so a single
//! command produces both kernel timings and the evaluation results.
//!
//! (Registered with `harness = false`, like the Criterion targets.)

use bcc_eval::{
    run_convergence, run_fig3, run_fig4, run_fig5, run_fig6, ConvergenceConfig, Fig3Config,
    Fig4Config, Fig5Config, Fig6Config,
};

fn main() {
    // Honor `cargo bench -- --test`: smoke mode runs the fast configs.
    let smoke = std::env::args().any(|a| a == "--test");

    println!(
        "=== Regenerating paper figures ({} effort) ===\n",
        if smoke { "fast" } else { "standard" }
    );

    let fig3_cfgs = if smoke {
        vec![Fig3Config::fast(bcc_eval::DatasetKind::Custom(
            bcc_datasets::SynthConfig::small(1),
        ))]
    } else {
        let mut hp = Fig3Config::paper_hp();
        hp.rounds = 3;
        hp.queries_per_round = 300;
        let mut umd = Fig3Config::paper_umd();
        umd.rounds = 3;
        umd.queries_per_round = 300;
        vec![hp, umd]
    };
    for cfg in &fig3_cfgs {
        for table in run_fig3(cfg).tables() {
            println!("{}", table.render());
        }
    }

    let fig4_cfgs = if smoke {
        vec![Fig4Config::fast(bcc_eval::DatasetKind::Custom(
            bcc_datasets::SynthConfig::small(1),
        ))]
    } else {
        let mut hp = Fig4Config::paper_hp();
        hp.rounds = 5;
        let mut umd = Fig4Config::paper_umd();
        umd.rounds = 5;
        vec![hp, umd]
    };
    for cfg in &fig4_cfgs {
        println!("{}", run_fig4(cfg).table().render());
    }

    let fig5_cfg = if smoke {
        Fig5Config::fast()
    } else {
        let mut cfg = Fig5Config::paper();
        cfg.rounds = 3;
        cfg.queries_per_round = 500;
        cfg.eps_samples = 20_000;
        cfg
    };
    for table in run_fig5(&fig5_cfg).tables() {
        println!("{}", table.render());
    }

    let fig6_cfg = if smoke {
        Fig6Config::fast()
    } else {
        let mut cfg = Fig6Config::paper();
        cfg.subsets_per_size = 3;
        cfg.rounds_per_subset = 2;
        cfg.queries_per_round = 100;
        cfg
    };
    println!("{}", run_fig6(&fig6_cfg).table().render());

    let conv_cfg = if smoke {
        ConvergenceConfig::fast()
    } else {
        ConvergenceConfig::standard()
    };
    println!("{}", run_convergence(&conv_cfg).table().render());
}
