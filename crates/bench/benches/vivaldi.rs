//! Criterion benches for the Vivaldi baseline embedding.

use bcc_datasets::{generate, SynthConfig};
use bcc_metric::RationalTransform;
use bcc_vivaldi::{VivaldiConfig, VivaldiSystem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn dataset(n: usize) -> bcc_metric::DistanceMatrix {
    let mut cfg = SynthConfig::small(555);
    cfg.nodes = n;
    RationalTransform::default().distance_matrix(&generate(&cfg))
}

fn bench_embed(c: &mut Criterion) {
    let mut group = c.benchmark_group("vivaldi_embed");
    group.sample_size(10);
    for &n in &[50usize, 100, 190] {
        let d = dataset(n);
        let cfg = VivaldiConfig {
            rounds: 100,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("rounds_100_dim2", n), &d, |b, d| {
            b.iter(|| black_box(VivaldiSystem::embed(d.clone(), cfg)))
        });
    }
    group.finish();
}

fn bench_step(c: &mut Criterion) {
    let d = dataset(100);
    let cfg = VivaldiConfig {
        rounds: 0,
        ..Default::default()
    };
    c.bench_function("vivaldi_single_round_n100", |b| {
        let mut sys = VivaldiSystem::new(d.clone(), cfg);
        b.iter(|| {
            sys.step();
            black_box(())
        })
    });
}

criterion_group!(benches, bench_embed, bench_step);
criterion_main!(benches);
