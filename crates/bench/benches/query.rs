//! Criterion benches for the end-to-end system: full stack construction,
//! gossip convergence, and decentralized vs centralized query latency.

use bcc_core::{find_cluster, BandwidthClasses};
use bcc_datasets::{generate, SynthConfig};
use bcc_metric::{NodeId, RationalTransform};
use bcc_simnet::{ClusterSystem, SystemConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn system(n: usize) -> ClusterSystem {
    let mut cfg = SynthConfig::small(888);
    cfg.nodes = n;
    let bw = generate(&cfg);
    let classes = BandwidthClasses::linspace(10.0, 80.0, 10, RationalTransform::default());
    ClusterSystem::build(bw, SystemConfig::new(classes))
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_build");
    group.sample_size(10);
    for &n in &[50usize, 100] {
        let mut cfg = SynthConfig::small(888);
        cfg.nodes = n;
        let bw = generate(&cfg);
        group.bench_with_input(BenchmarkId::from_parameter(n), &bw, |b, bw| {
            b.iter(|| {
                let classes =
                    BandwidthClasses::linspace(10.0, 80.0, 10, RationalTransform::default());
                black_box(ClusterSystem::build(bw.clone(), SystemConfig::new(classes)))
            })
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let sys = system(100);
    let predicted = sys.framework().predicted_matrix();
    let t = RationalTransform::default();
    let mut group = c.benchmark_group("query");
    group.bench_function("decentralized_easy", |b| {
        b.iter(|| black_box(sys.query(NodeId::new(0), 4, 30.0).unwrap()))
    });
    group.bench_function("decentralized_hard", |b| {
        b.iter(|| black_box(sys.query(NodeId::new(0), 40, 70.0).unwrap()))
    });
    group.bench_function("centralized_easy", |b| {
        b.iter(|| black_box(find_cluster(&predicted, 4, t.distance_constraint(30.0))))
    });
    group.bench_function("centralized_hard", |b| {
        b.iter(|| black_box(find_cluster(&predicted, 40, t.distance_constraint(70.0))))
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
