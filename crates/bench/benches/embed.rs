//! Criterion benches for the prediction-tree embedding: full framework
//! builds under both end strategies and with/without robustness heuristics.

use bcc_datasets::{generate, SynthConfig};
use bcc_embed::{EndStrategy, FrameworkConfig, PredictionFramework};
use bcc_metric::RationalTransform;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn dataset(n: usize) -> bcc_metric::DistanceMatrix {
    let mut cfg = SynthConfig::small(321);
    cfg.nodes = n;
    RationalTransform::default().distance_matrix(&generate(&cfg))
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("framework_build");
    group.sample_size(10);
    for &n in &[50usize, 100, 190] {
        let d = dataset(n);
        group.bench_with_input(BenchmarkId::new("exact_global", n), &d, |b, d| {
            b.iter(|| {
                black_box(PredictionFramework::build_from_matrix(
                    d,
                    FrameworkConfig::default(),
                ))
            })
        });
        let descent = FrameworkConfig {
            end: EndStrategy::AnchorDescent,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("anchor_descent", n), &d, |b, d| {
            b.iter(|| black_box(PredictionFramework::build_from_matrix(d, descent)))
        });
        let naive = FrameworkConfig {
            base_candidates: 1,
            fit_leaf_weight: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("naive_placement", n), &d, |b, d| {
            b.iter(|| black_box(PredictionFramework::build_from_matrix(d, naive)))
        });
    }
    group.finish();
}

fn bench_distance_queries(c: &mut Criterion) {
    let d = dataset(100);
    let fw = PredictionFramework::build_from_matrix(&d, FrameworkConfig::default());
    let mut group = c.benchmark_group("distance_query");
    group.bench_function("tree_bfs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100usize {
                acc += fw
                    .distance(
                        bcc_metric::NodeId::new(i),
                        bcc_metric::NodeId::new((i * 7 + 1) % 100),
                    )
                    .unwrap();
            }
            black_box(acc)
        })
    });
    group.bench_function("label_based", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100usize {
                acc += fw
                    .label_distance(
                        bcc_metric::NodeId::new(i),
                        bcc_metric::NodeId::new((i * 7 + 1) % 100),
                    )
                    .unwrap();
            }
            black_box(acc)
        })
    });
    group.bench_function("materialize_matrix", |b| {
        b.iter(|| black_box(fw.predicted_matrix()))
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_distance_queries);
criterion_main!(benches);
