//! Criterion benches for Algorithm 1 (`FindCluster`) and the max-cluster
//! size search, including the binary-search-vs-direct ablation from
//! Algorithm 3.

use bcc_core::{
    find_cluster, find_cluster_ordered, max_cluster_size, max_cluster_size_binary_search, PairOrder,
};
use bcc_datasets::{generate, SynthConfig};
use bcc_metric::RationalTransform;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn dataset(n: usize) -> bcc_metric::DistanceMatrix {
    let mut cfg = SynthConfig::small(123);
    cfg.nodes = n;
    RationalTransform::default().distance_matrix(&generate(&cfg))
}

fn bench_find_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_cluster");
    for &n in &[50usize, 100, 200] {
        let d = dataset(n);
        // Satisfiable query: k = 5% of n at a generous constraint.
        let l_easy = RationalTransform::default().distance_constraint(20.0);
        group.bench_with_input(BenchmarkId::new("satisfiable", n), &d, |b, d| {
            b.iter(|| black_box(find_cluster(d, (n / 20).max(2), l_easy)))
        });
        // Unsatisfiable query: forces the full O(n^3) scan.
        let l_hard = RationalTransform::default().distance_constraint(5000.0);
        group.bench_with_input(BenchmarkId::new("unsatisfiable", n), &d, |b, d| {
            b.iter(|| black_box(find_cluster(d, 3, l_hard)))
        });
    }
    group.finish();
}

fn bench_pair_order(c: &mut Criterion) {
    let d = dataset(100);
    let l = RationalTransform::default().distance_constraint(25.0);
    let mut group = c.benchmark_group("pair_order");
    group.bench_function("row_major", |b| {
        b.iter(|| black_box(find_cluster_ordered(&d, 5, l, PairOrder::RowMajor)))
    });
    group.bench_function("ascending_diameter", |b| {
        b.iter(|| black_box(find_cluster_ordered(&d, 5, l, PairOrder::AscendingDiameter)))
    });
    group.finish();
}

fn bench_max_cluster_size(c: &mut Criterion) {
    let d = dataset(80);
    let l = RationalTransform::default().distance_constraint(30.0);
    let mut group = c.benchmark_group("max_cluster_size");
    group.bench_function("direct", |b| b.iter(|| black_box(max_cluster_size(&d, l))));
    group.bench_function("binary_search", |b| {
        b.iter(|| black_box(max_cluster_size_binary_search(&d, l)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_find_cluster,
    bench_pair_order,
    bench_max_cluster_size
);
criterion_main!(benches);
