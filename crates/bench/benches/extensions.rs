//! Criterion benches for the extension kernels: hub search, the
//! minimum-diameter variant, the SWORD-style budgeted search, and ensemble
//! construction.

use bcc_core::{hub, min_diameter_cluster, sword};
use bcc_datasets::{generate, SynthConfig};
use bcc_embed::{EnsembleConfig, TreeEnsemble};
use bcc_metric::RationalTransform;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn dataset(n: usize) -> bcc_metric::DistanceMatrix {
    let mut cfg = SynthConfig::small(777);
    cfg.nodes = n;
    RationalTransform::default().distance_matrix(&generate(&cfg))
}

fn bench_hub(c: &mut Criterion) {
    let mut group = c.benchmark_group("hub_search");
    for &n in &[50usize, 200] {
        let d = dataset(n);
        let targets: Vec<usize> = (0..8).collect();
        group.bench_with_input(BenchmarkId::new("best_hub", n), &d, |b, d| {
            b.iter(|| black_box(hub::best_hub(d, &targets)))
        });
        group.bench_with_input(BenchmarkId::new("rank_hubs", n), &d, |b, d| {
            b.iter(|| black_box(hub::rank_hubs(d, &targets)))
        });
    }
    group.finish();
}

fn bench_min_diameter(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_diameter_cluster");
    for &n in &[50usize, 100] {
        let d = dataset(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            b.iter(|| black_box(min_diameter_cluster(d, n / 10)))
        });
    }
    group.finish();
}

fn bench_sword(c: &mut Criterion) {
    let d = dataset(80);
    let l = RationalTransform::default().distance_constraint(40.0);
    let mut group = c.benchmark_group("sword_budgeted");
    group.bench_function("satisfiable_k6", |b| {
        b.iter(|| black_box(sword::find_cluster_budgeted(&d, 6, l, 100_000, 1)))
    });
    let k_unsat = bcc_core::max_cluster_size(&d, l) + 1;
    group.bench_function("unsatisfiable", |b| {
        b.iter(|| black_box(sword::find_cluster_budgeted(&d, k_unsat, l, 100_000, 1)))
    });
    group.finish();
}

fn bench_ensemble(c: &mut Criterion) {
    let d = dataset(80);
    let mut group = c.benchmark_group("ensemble_build");
    group.sample_size(10);
    for &members in &[1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(members), &d, |b, d| {
            b.iter(|| {
                let cfg = EnsembleConfig {
                    members,
                    ..Default::default()
                };
                black_box(TreeEnsemble::build_from_matrix(d, cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hub,
    bench_min_diameter,
    bench_sword,
    bench_ensemble
);
criterion_main!(benches);
