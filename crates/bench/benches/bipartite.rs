//! Criterion benches for the bipartite matching / maximum-independent-set
//! substrate used by the Euclidean baseline clustering.

use bcc_core::bipartite::BipartiteGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_graph(left: usize, right: usize, p: f64, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = BipartiteGraph::new(left, right);
    for l in 0..left {
        for r in 0..right {
            if rng.gen_bool(p) {
                g.add_edge(l, r);
            }
        }
    }
    g
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopcroft_karp");
    for &n in &[32usize, 128, 512] {
        let g = random_graph(n, n, 0.1, 9);
        group.bench_with_input(BenchmarkId::new("sparse_p0.1", n), &g, |b, g| {
            b.iter(|| black_box(g.max_matching()))
        });
        let dense = random_graph(n, n, 0.5, 10);
        group.bench_with_input(BenchmarkId::new("dense_p0.5", n), &dense, |b, g| {
            b.iter(|| black_box(g.max_matching()))
        });
    }
    group.finish();
}

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_independent_set");
    for &n in &[32usize, 128, 512] {
        let g = random_graph(n, n, 0.2, 11);
        group.bench_with_input(BenchmarkId::new("p0.2", n), &g, |b, g| {
            b.iter(|| black_box(g.max_independent_set()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching, bench_mis);
criterion_main!(benches);
