//! Criterion benches for the treeness statistics (quartet ε, δ) that gate
//! dataset generation and the Fig. 5 experiment.

use bcc_datasets::{generate, SynthConfig};
use bcc_metric::{fourpoint, gromov, RationalTransform};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn dataset(n: usize) -> bcc_metric::DistanceMatrix {
    let mut cfg = SynthConfig::small(42);
    cfg.nodes = n;
    RationalTransform::default().distance_matrix(&generate(&cfg))
}

fn bench_epsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("epsilon_avg");
    let d30 = dataset(30);
    group.bench_function("exact_n30", |b| {
        b.iter(|| black_box(fourpoint::epsilon_avg_exact(&d30)))
    });
    for &n in &[100usize, 300] {
        let d = dataset(n);
        group.bench_with_input(BenchmarkId::new("sampled_20k", n), &d, |b, d| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(fourpoint::epsilon_avg_sampled(d, 20_000, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_quartets(c: &mut Criterion) {
    let d = dataset(100);
    c.bench_function("quartet_epsilon_single", |b| {
        b.iter(|| black_box(fourpoint::quartet_epsilon(&d, 1, 17, 42, 93)))
    });
    c.bench_function("delta_hyperbolicity_sampled_10k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(gromov::delta_hyperbolicity_sampled(&d, 10_000, &mut rng))
        })
    });
}

criterion_group!(benches, bench_epsilon, bench_quartets);
criterion_main!(benches);
