//! Fig. 5 — the effect of treeness: WPR vs `f_b`, raw and normalized.
//!
//! The paper's model (Eq. 1): `WPR = f_b^{(1/ε*)(1/f_a*)}` where `f_b` is
//! the bandwidth CDF at the constraint `b`, `f_a` the density near `b`, and
//! `ε*` the bounded treeness. Plotted raw, datasets of different `ε_avg`
//! overlap; normalizing WPR to `(WPR)^{f_a*}` with `α = 3.2` separates them
//! — worse treeness plots higher.

use bcc_metric::fourpoint::epsilon_star;
use bcc_metric::stats::EmpiricalCdf;
use bcc_metric::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bcc_core::BandwidthClasses;
use bcc_datasets::{treeness_family, SynthConfig, TreenessDataset};

use crate::metrics::{Buckets, MeanAccumulator, WprAccumulator};
use crate::report::{Series, Table};
use crate::setup::{build_tree_system, transform};

/// Configuration of the treeness experiment.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Base generator for the dataset family (`noise_sigma` is swept).
    pub base: SynthConfig,
    /// Noise levels — one dataset per entry (the paper used six).
    pub sigmas: Vec<f64>,
    /// Rounds (fresh framework per round; same datasets).
    pub rounds: usize,
    /// Queries per round per dataset.
    pub queries_per_round: usize,
    /// Fixed cluster-size constraint (the paper: 5).
    pub k: usize,
    /// Query bandwidth range — intentionally wide so `f_b` spans `[0, 1]`.
    pub b_range: (f64, f64),
    /// Normalization constant `α` (the paper: 3.2).
    pub alpha: f64,
    /// Window half-width for `f_a` (the paper: ±10 Mbps).
    pub fa_window: f64,
    /// Buckets along the `f_b` axis.
    pub buckets: usize,
    /// Quartet samples for `ε_avg` estimation.
    pub eps_samples: usize,
    /// Close-node aggregation cap.
    pub n_cut: usize,
    /// Number of bandwidth classes covering `b_range`.
    pub class_count: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Fig5Config {
    /// The paper's parameters: six 100-node datasets, 2000 queries × 10
    /// rounds, k = 5, b ∈ [5, 300], α = 3.2.
    pub fn paper() -> Self {
        let mut base = bcc_datasets::hp_config(42);
        base.nodes = 100;
        Fig5Config {
            base,
            sigmas: vec![0.02, 0.08, 0.16, 0.28, 0.45, 0.7],
            rounds: 10,
            queries_per_round: 2000,
            k: 5,
            b_range: (5.0, 300.0),
            alpha: 3.2,
            fa_window: 10.0,
            buckets: 10,
            eps_samples: 50_000,
            n_cut: 10,
            class_count: 24,
            seed: 3,
        }
    }

    /// A scaled-down configuration for tests and smoke runs.
    pub fn fast() -> Self {
        let mut base = SynthConfig::small(9);
        base.nodes = 30;
        Fig5Config {
            base,
            sigmas: vec![0.05, 0.5],
            rounds: 2,
            queries_per_round: 150,
            k: 3,
            b_range: (5.0, 200.0),
            alpha: 3.2,
            fa_window: 10.0,
            buckets: 5,
            eps_samples: 5_000,
            n_cut: 6,
            class_count: 12,
            seed: 4,
        }
    }
}

/// Per-dataset curves of the treeness experiment.
#[derive(Debug, Clone)]
pub struct Fig5DatasetResult {
    /// Noise σ of the dataset.
    pub noise_sigma: f64,
    /// Sampled `ε_avg` (the legend number in the paper's plots).
    pub epsilon_avg: f64,
    /// Raw WPR per `f_b` bucket.
    pub wpr: Vec<Option<f64>>,
    /// Normalized `(WPR)^{f_a*}` per `f_b` bucket.
    pub wpr_normalized: Vec<Option<f64>>,
}

/// Result: the shared `f_b` axis plus one curve pair per dataset.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Bucket centers along the `f_b` axis.
    pub fb_centers: Vec<f64>,
    /// One entry per dataset, in `sigmas` order.
    pub datasets: Vec<Fig5DatasetResult>,
}

/// Runs the experiment: datasets generated once, rounds parallelized.
pub fn run_fig5(cfg: &Fig5Config) -> Fig5Result {
    let t = transform();
    let family: Vec<TreenessDataset> = treeness_family(&cfg.base, &cfg.sigmas, cfg.eps_samples, t);

    let mut out_datasets = Vec::with_capacity(family.len());
    let mut fb_centers: Vec<f64> = Vec::new();

    for (di, ds) in family.iter().enumerate() {
        let cdf = EmpiricalCdf::new(ds.bandwidth.pair_values());
        type Slot = (WprAccumulator, MeanAccumulator); // (wpr, mean f_a*)

        let partials = bcc_par::par_map(cfg.rounds, |round| {
            let ds = &ds.bandwidth;
            let round_seed = cfg
                .seed
                .wrapping_add(di as u64 * 0xABCD_1234)
                .wrapping_add(round as u64 * 0x9E37_79B9);
            let mut rng = StdRng::seed_from_u64(round_seed);
            let classes =
                BandwidthClasses::linspace(cfg.b_range.0, cfg.b_range.1, cfg.class_count, t);
            let system = build_tree_system(ds.clone(), cfg.n_cut, classes, round_seed ^ 0xF162);
            let n = ds.len();

            let mut partial: Buckets<Slot> = Buckets::new(0.0, 1.0, cfg.buckets);
            for _ in 0..cfg.queries_per_round {
                let b = rng.gen_range(cfg.b_range.0..=cfg.b_range.1);
                let start = NodeId::new(rng.gen_range(0..n));
                let fb = cdf.fraction_below(b);
                let fa = cdf.fraction_in(b - cfg.fa_window, b + cfg.fa_window);
                let fa_star = (cfg.alpha - 1.0 / cfg.alpha) * fa + 1.0 / cfg.alpha;

                let outcome = system.query(start, cfg.k, b).expect("valid query");
                if let Some(cluster) = outcome.cluster {
                    let (wrong, total) = system.score_cluster(&cluster, b);
                    let slot = partial.slot_mut(fb);
                    slot.0.record(wrong, total);
                    slot.1.record(fa_star);
                }
            }
            partial
        });

        let mut buckets: Buckets<Slot> = Buckets::new(0.0, 1.0, cfg.buckets);
        for partial in partials {
            buckets.merge_with(partial, |a, b| {
                a.0.merge(b.0);
                a.1.merge(b.1);
            });
        }
        if fb_centers.is_empty() {
            fb_centers = buckets.iter().map(|(c, _)| c).collect();
        }
        let wpr: Vec<Option<f64>> = buckets.iter().map(|(_, s)| s.0.rate()).collect();
        let wpr_normalized: Vec<Option<f64>> = buckets
            .iter()
            .map(|(_, s)| match (s.0.rate(), s.1.mean()) {
                (Some(w), Some(fa_star)) => Some(w.powf(fa_star)),
                _ => None,
            })
            .collect();
        out_datasets.push(Fig5DatasetResult {
            noise_sigma: ds.noise_sigma,
            epsilon_avg: ds.epsilon_avg,
            wpr,
            wpr_normalized,
        });
    }

    Fig5Result {
        fb_centers,
        datasets: out_datasets,
    }
}

impl Fig5Result {
    /// Renders the two paper panels: raw WPR and normalized WPR vs `f_b`.
    pub fn tables(&self) -> Vec<Table> {
        let raw = Table::new(
            "Fig. 5 — WPR vs f_b (per-dataset ε_avg in legend)",
            "f_b",
            self.fb_centers.clone(),
            self.datasets
                .iter()
                .map(|d| Series::new(format!("eps={:.3}", d.epsilon_avg), d.wpr.clone()))
                .collect(),
        );
        let norm = Table::new(
            "Fig. 5 — (WPR)^(f_a*) vs f_b (alpha = 3.2)",
            "f_b",
            self.fb_centers.clone(),
            self.datasets
                .iter()
                .map(|d| {
                    Series::new(
                        format!("eps={:.3}", d.epsilon_avg),
                        d.wpr_normalized.clone(),
                    )
                })
                .collect(),
        );
        vec![raw, norm]
    }

    /// The paper's Eq. 1 prediction of the ε* exponent, used by tests: a
    /// tree-like dataset should show smaller WPR at the same `f_b`.
    pub fn epsilon_of(&self, idx: usize) -> f64 {
        epsilon_star(self.datasets[idx].epsilon_avg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_curve_per_sigma() {
        let r = run_fig5(&Fig5Config::fast());
        assert_eq!(r.datasets.len(), 2);
        assert_eq!(r.fb_centers.len(), 5);
        assert!(r.datasets[0].epsilon_avg < r.datasets[1].epsilon_avg);
    }

    #[test]
    fn wpr_grows_with_fb() {
        let r = run_fig5(&Fig5Config::fast());
        // For each dataset, WPR at low f_b should not exceed WPR at high
        // f_b (monotone trend; compare first and last populated buckets).
        for d in &r.datasets {
            let populated: Vec<f64> = d.wpr.iter().flatten().copied().collect();
            if populated.len() >= 2 {
                assert!(
                    populated.first().unwrap() <= populated.last().unwrap(),
                    "WPR curve should rise: {populated:?}"
                );
            }
        }
    }

    #[test]
    fn normalization_separates_treeness() {
        // The noisier dataset should have a higher normalized WPR in the
        // mid-range buckets (where both are populated).
        let r = run_fig5(&Fig5Config::fast());
        let (clean, noisy) = (&r.datasets[0], &r.datasets[1]);
        let mut cmp = Vec::new();
        for (a, b) in clean.wpr_normalized.iter().zip(&noisy.wpr_normalized) {
            if let (Some(a), Some(b)) = (a, b) {
                cmp.push((*a, *b));
            }
        }
        assert!(!cmp.is_empty(), "need overlapping buckets");
        let mean_clean: f64 = cmp.iter().map(|c| c.0).sum::<f64>() / cmp.len() as f64;
        let mean_noisy: f64 = cmp.iter().map(|c| c.1).sum::<f64>() / cmp.len() as f64;
        assert!(
            mean_noisy >= mean_clean,
            "noisy {mean_noisy} should plot above clean {mean_clean}"
        );
    }

    #[test]
    fn tables_render() {
        let r = run_fig5(&Fig5Config::fast());
        let tables = r.tables();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].render().contains("eps="));
    }
}
