//! Extension experiment: construction strategies for the prediction
//! framework — probe cost vs embedding accuracy.
//!
//! The paper inherits its framework from prior work and does not evaluate
//! construction alternatives; this experiment fills that in. Strategies:
//!
//! - `EXACT` — centralized Sequoia (measure everyone, `O(n)` probes/join);
//! - `DESCENT` — decentralized anchor descent (prune by Gromov product);
//! - `NAIVE` — exact probing but without the robustness heuristics;
//! - `ENSEMBLE-3` — three exact trees, median-aggregated.

use bcc_embed::{EndStrategy, EnsembleConfig, FrameworkConfig, PredictionFramework, TreeEnsemble};
use bcc_metric::stats::{relative_error, EmpiricalCdf};
use bcc_metric::DistanceMatrix;

use crate::metrics::MeanAccumulator;
use crate::report::{Series, Table};
use crate::setup::{transform, DatasetKind};

/// Configuration of the embedding-strategy experiment.
#[derive(Debug, Clone)]
pub struct EmbeddingConfig {
    /// Dataset to run on.
    pub dataset: DatasetKind,
    /// Rounds (fresh dataset per round).
    pub rounds: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl EmbeddingConfig {
    /// Default extension parameters (HP-like datasets).
    pub fn standard() -> Self {
        EmbeddingConfig {
            dataset: DatasetKind::Hp,
            rounds: 3,
            seed: 23,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn fast() -> Self {
        let mut synth = bcc_datasets::SynthConfig::small(3);
        synth.nodes = 30;
        EmbeddingConfig {
            dataset: DatasetKind::Custom(synth),
            rounds: 1,
            seed: 24,
        }
    }
}

/// Per-strategy aggregates.
#[derive(Debug, Clone)]
pub struct EmbeddingResult {
    /// Strategy labels, fixed order.
    pub labels: Vec<&'static str>,
    /// Mean probes per strategy.
    pub probes: Vec<Option<f64>>,
    /// Mean median-relative-error per strategy.
    pub median_error: Vec<Option<f64>>,
}

/// Runs the experiment, rounds parallelized on the `bcc-par` pool and
/// merged in round order (deterministic for any thread count).
pub fn run_embedding(cfg: &EmbeddingConfig) -> EmbeddingResult {
    const STRATEGIES: usize = 4;
    let t = transform();
    type Slot = (MeanAccumulator, MeanAccumulator); // (probes, median err)

    let rounds = bcc_par::par_map(cfg.rounds, |round| {
        let seed = cfg.seed.wrapping_add(round as u64 * 0x9E37_79B9);
        let bw = cfg.dataset.generate(seed);
        let d = t.distance_matrix(&bw);

        let median_err = |predicted: &DistanceMatrix| -> f64 {
            let errs: Vec<f64> = bw
                .iter_pairs()
                .map(|(i, j, real)| relative_error(real, t.to_bandwidth(predicted.get(i, j))))
                .collect();
            EmpiricalCdf::new(errs).percentile(50.0)
        };

        let mut results: Vec<(f64, f64)> = Vec::with_capacity(STRATEGIES);
        let exact = FrameworkConfig {
            seed,
            ..Default::default()
        };
        let fw = PredictionFramework::build_from_matrix(&d, exact);
        results.push((fw.probe_count() as f64, median_err(&fw.predicted_matrix())));

        let descent = FrameworkConfig {
            end: EndStrategy::AnchorDescent,
            seed,
            ..Default::default()
        };
        let fw = PredictionFramework::build_from_matrix(&d, descent);
        results.push((fw.probe_count() as f64, median_err(&fw.predicted_matrix())));

        let naive = FrameworkConfig {
            base_candidates: 1,
            fit_leaf_weight: false,
            seed,
            ..Default::default()
        };
        let fw = PredictionFramework::build_from_matrix(&d, naive);
        results.push((fw.probe_count() as f64, median_err(&fw.predicted_matrix())));

        let ens = TreeEnsemble::build_from_matrix(
            &d,
            EnsembleConfig {
                members: 3,
                seed,
                ..Default::default()
            },
        );
        results.push((
            ens.probe_count() as f64,
            median_err(&ens.predicted_matrix()),
        ));
        results
    });

    let mut m: Vec<Slot> = vec![Default::default(); STRATEGIES];
    for results in rounds {
        for (slot, (probes, err)) in m.iter_mut().zip(results) {
            slot.0.record(probes);
            slot.1.record(err);
        }
    }
    EmbeddingResult {
        labels: vec!["EXACT", "DESCENT", "NAIVE", "ENSEMBLE-3"],
        probes: m.iter().map(|s| s.0.mean()).collect(),
        median_error: m.iter().map(|s| s.1.mean()).collect(),
    }
}

impl EmbeddingResult {
    /// Renders the extension table (one row per strategy).
    pub fn table(&self) -> Table {
        Table::new(
            "Extension — embedding strategy: probes vs median prediction error",
            "strategy#",
            (0..self.labels.len()).map(|i| i as f64).collect(),
            vec![
                Series::new("PROBES", self.probes.clone()),
                Series::new("MEDIAN-REL-ERR", self.median_error.clone()),
            ],
        )
    }

    /// Legend mapping strategy indices to names.
    pub fn legend(&self) -> String {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| format!("{i} = {l}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_rank_as_expected() {
        let r = run_embedding(&EmbeddingConfig::fast());
        assert_eq!(r.labels.len(), 4);
        let probes: Vec<f64> = r.probes.iter().map(|v| v.unwrap()).collect();
        let errs: Vec<f64> = r.median_error.iter().map(|v| v.unwrap()).collect();
        // Descent probes fewer than exact; ensemble probes 3x exact.
        assert!(probes[1] <= probes[0]);
        assert!((probes[3] - 3.0 * probes[0]).abs() < 1e-6);
        // Naive placement is the least accurate.
        assert!(errs[2] >= errs[0]);
        // Ensemble is at least as accurate as a single exact tree (small
        // datasets can tie).
        assert!(errs[3] <= errs[0] * 1.10);
        // Table + legend render.
        assert!(r.table().render().contains("PROBES"));
        assert!(r.legend().contains("ENSEMBLE-3"));
    }

    #[test]
    fn deterministic() {
        let a = run_embedding(&EmbeddingConfig::fast());
        let b = run_embedding(&EmbeddingConfig::fast());
        assert_eq!(a.median_error, b.median_error);
    }
}
