//! Fig. 3 — clustering accuracy (WPR vs `b`) and bandwidth-prediction
//! relative-error CDFs, for the tree-metric approaches vs the Euclidean
//! baseline.
//!
//! Per round: generate the dataset, build the prediction framework +
//! overlay (`TREE-*`) and the Vivaldi embedding (`EUCL`), then fire
//! non-difficult queries `(k fixed, b uniform in the dataset's 20th–80th
//! percentile band)` at all three approaches and score every returned
//! cluster against ground truth.

use bcc_core::{find_cluster, find_cluster_euclidean, BandwidthClasses};
use bcc_metric::stats::relative_error;
use bcc_metric::{FiniteMetric, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{Buckets, RrAccumulator, WprAccumulator};
use crate::report::{Series, Table};
use crate::setup::{build_tree_system, build_vivaldi_points, transform, DatasetKind};

/// Configuration of the accuracy experiment.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Dataset to run on.
    pub dataset: DatasetKind,
    /// Number of rounds (fresh dataset + frameworks per round).
    pub rounds: usize,
    /// Queries per round.
    pub queries_per_round: usize,
    /// Fixed cluster-size constraint (the paper: 5% of nodes).
    pub k: usize,
    /// Query bandwidth range (uniform).
    pub b_range: (f64, f64),
    /// Close-node aggregation cap.
    pub n_cut: usize,
    /// Number of bandwidth classes covering `b_range`.
    pub class_count: usize,
    /// Number of WPR buckets along the `b` axis.
    pub buckets: usize,
    /// Vivaldi convergence rounds.
    pub vivaldi_rounds: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Fig3Config {
    /// The paper's HP-PlanetLab parameters (1000 queries × 10 rounds,
    /// k = 10, b ∈ [15, 75]).
    pub fn paper_hp() -> Self {
        Fig3Config {
            dataset: DatasetKind::Hp,
            rounds: 10,
            queries_per_round: 1000,
            k: 10,
            b_range: (15.0, 75.0),
            n_cut: 10,
            class_count: 16,
            buckets: 7,
            vivaldi_rounds: 200,
            seed: 1,
        }
    }

    /// The paper's UMD-PlanetLab parameters (k = 16, b ∈ [30, 110]).
    pub fn paper_umd() -> Self {
        Fig3Config {
            dataset: DatasetKind::Umd,
            rounds: 10,
            queries_per_round: 1000,
            k: 16,
            b_range: (30.0, 110.0),
            n_cut: 10,
            class_count: 16,
            buckets: 7,
            vivaldi_rounds: 200,
            seed: 1,
        }
    }

    /// A scaled-down configuration for tests and smoke runs.
    pub fn fast(dataset: DatasetKind) -> Self {
        let b_range = dataset.default_b_range();
        let k = dataset.default_k().min(5);
        Fig3Config {
            dataset,
            rounds: 2,
            queries_per_round: 40,
            k,
            b_range,
            n_cut: 8,
            class_count: 8,
            buckets: 4,
            vivaldi_rounds: 60,
            seed: 7,
        }
    }
}

/// Result of the accuracy experiment: one WPR curve per approach plus the
/// prediction-error CDFs.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Dataset label (`HP`/`UMD`/`CUSTOM`).
    pub label: &'static str,
    /// Bucket centers along the `b` axis.
    pub b_centers: Vec<f64>,
    /// WPR of the decentralized tree approach per bucket.
    pub wpr_tree_decentral: Vec<Option<f64>>,
    /// WPR of the centralized tree approach per bucket.
    pub wpr_tree_central: Vec<Option<f64>>,
    /// WPR of the centralized Euclidean baseline per bucket.
    pub wpr_eucl_central: Vec<Option<f64>>,
    /// Return rates over all queries (not the paper's headline metric, but
    /// confirms the queries were easy as intended).
    pub rr: [Option<f64>; 3],
    /// Relative-error CDF sample points (x axis).
    pub relerr_xs: Vec<f64>,
    /// CDF of tree-prediction relative error at each x.
    pub relerr_cdf_tree: Vec<Option<f64>>,
    /// CDF of Vivaldi-prediction relative error at each x.
    pub relerr_cdf_eucl: Vec<Option<f64>>,
}

/// Runs the experiment, rounds parallelized on the `bcc-par` pool and
/// merged in round order (deterministic for any thread count).
pub fn run_fig3(cfg: &Fig3Config) -> Fig3Result {
    assert!(
        cfg.rounds > 0 && cfg.queries_per_round > 0,
        "empty experiment"
    );
    let t = transform();

    struct Partial {
        wpr: [Buckets<WprAccumulator>; 3],
        rr: [RrAccumulator; 3],
        errs_tree: Vec<f64>,
        errs_eucl: Vec<f64>,
    }
    let make_buckets = || -> [Buckets<WprAccumulator>; 3] {
        std::array::from_fn(|_| Buckets::new(cfg.b_range.0, cfg.b_range.1, cfg.buckets))
    };

    let partials = bcc_par::par_map(cfg.rounds, |round| {
        let round_seed = cfg.seed.wrapping_add(round as u64 * 0x9E37_79B9);
        let mut rng = StdRng::seed_from_u64(round_seed);
        let bw = cfg.dataset.generate(round_seed);
        let n = bw.len();
        let real_d = t.distance_matrix(&bw);
        let classes = BandwidthClasses::linspace(cfg.b_range.0, cfg.b_range.1, cfg.class_count, t);
        let system = build_tree_system(bw.clone(), cfg.n_cut, classes, round_seed ^ 0xF00D);
        let predicted = system.framework().predicted_matrix();
        let points = build_vivaldi_points(&real_d, cfg.vivaldi_rounds, round_seed ^ 0xBEEF);

        let mut partial = Partial {
            wpr: make_buckets(),
            rr: [RrAccumulator::new(); 3],
            errs_tree: Vec::with_capacity(n * (n - 1) / 2),
            errs_eucl: Vec::with_capacity(n * (n - 1) / 2),
        };

        // Prediction relative errors over all pairs.
        for (i, j, real_bw) in bw.iter_pairs() {
            let pred_tree = t.to_bandwidth(predicted.get(i, j));
            let pred_eucl = t.to_bandwidth(points.distance(i, j));
            partial.errs_tree.push(relative_error(real_bw, pred_tree));
            partial.errs_eucl.push(relative_error(real_bw, pred_eucl));
        }

        // Queries.
        for _ in 0..cfg.queries_per_round {
            let b = rng.gen_range(cfg.b_range.0..=cfg.b_range.1);
            let l = t.distance_constraint(b);
            let start = NodeId::new(rng.gen_range(0..n));

            // TREE-DECENTRAL.
            let outcome = system.query(start, cfg.k, b).expect("valid query");
            partial.rr[0].record(outcome.found());
            if let Some(cluster) = outcome.cluster {
                let (wrong, total) = system.score_cluster(&cluster, b);
                partial.wpr[0].slot_mut(b).record(wrong, total);
            }

            // TREE-CENTRAL (exact l, no class snapping).
            let central = find_cluster(&predicted, cfg.k, l);
            partial.rr[1].record(central.is_some());
            if let Some(cluster) = central {
                let ids: Vec<NodeId> = cluster.into_iter().map(NodeId::new).collect();
                let (wrong, total) = system.score_cluster(&ids, b);
                partial.wpr[1].slot_mut(b).record(wrong, total);
            }

            // EUCL-CENTRAL.
            let eucl = find_cluster_euclidean(&points, cfg.k, l);
            partial.rr[2].record(eucl.is_some());
            if let Some(cluster) = eucl {
                let ids: Vec<NodeId> = cluster.into_iter().map(NodeId::new).collect();
                let (wrong, total) = system.score_cluster(&ids, b);
                partial.wpr[2].slot_mut(b).record(wrong, total);
            }
        }
        partial
    });

    let mut m = Partial {
        wpr: make_buckets(),
        rr: [RrAccumulator::new(); 3],
        errs_tree: Vec::new(),
        errs_eucl: Vec::new(),
    };
    for partial in partials {
        for (mine, theirs) in m.wpr.iter_mut().zip(partial.wpr) {
            mine.merge_with(theirs, |a, b| a.merge(b));
        }
        for (mine, theirs) in m.rr.iter_mut().zip(partial.rr) {
            mine.merge(theirs);
        }
        m.errs_tree.extend(partial.errs_tree);
        m.errs_eucl.extend(partial.errs_eucl);
    }
    let b_centers: Vec<f64> = m.wpr[0].iter().map(|(c, _)| c).collect();
    let curve =
        |i: usize| -> Vec<Option<f64>> { m.wpr[i].iter().map(|(_, acc)| acc.rate()).collect() };

    // Relative-error CDFs evaluated on a fixed grid over [0, 2].
    let relerr_xs: Vec<f64> = (0..=20).map(|i| i as f64 * 0.1).collect();
    let cdf_of = |errs: &[f64]| -> Vec<Option<f64>> {
        if errs.is_empty() {
            return vec![None; relerr_xs.len()];
        }
        let cdf = bcc_metric::stats::EmpiricalCdf::new(errs.to_vec());
        relerr_xs
            .iter()
            .map(|&x| Some(cdf.fraction_at_or_below(x)))
            .collect()
    };

    let relerr_cdf_tree = cdf_of(&m.errs_tree);
    let relerr_cdf_eucl = cdf_of(&m.errs_eucl);
    Fig3Result {
        label: cfg.dataset.label(),
        b_centers,
        wpr_tree_decentral: curve(0),
        wpr_tree_central: curve(1),
        wpr_eucl_central: curve(2),
        rr: [m.rr[0].rate(), m.rr[1].rate(), m.rr[2].rate()],
        relerr_xs,
        relerr_cdf_tree,
        relerr_cdf_eucl,
    }
}

impl Fig3Result {
    /// Renders the two paper panels (WPR vs `b`; relative-error CDF).
    pub fn tables(&self) -> Vec<Table> {
        let l = self.label;
        vec![
            Table::new(
                format!("Fig. 3 ({l}) — WPR vs b"),
                "b (Mbps)",
                self.b_centers.clone(),
                vec![
                    Series::new(
                        format!("{l}-TREE-DECENTRAL"),
                        self.wpr_tree_decentral.clone(),
                    ),
                    Series::new(format!("{l}-TREE-CENTRAL"), self.wpr_tree_central.clone()),
                    Series::new(format!("{l}-EUCL-CENTRAL"), self.wpr_eucl_central.clone()),
                ],
            ),
            Table::new(
                format!("Fig. 3 ({l}) — CDF of bandwidth prediction relative error"),
                "rel. error",
                self.relerr_xs.clone(),
                vec![
                    Series::new(format!("{l}-TREE"), self.relerr_cdf_tree.clone()),
                    Series::new(format!("{l}-EUCL"), self.relerr_cdf_eucl.clone()),
                ],
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_datasets::SynthConfig;

    fn small_cfg() -> Fig3Config {
        let mut synth = SynthConfig::small(0);
        synth.nodes = 30;
        let mut cfg = Fig3Config::fast(DatasetKind::Custom(synth));
        cfg.rounds = 2;
        cfg.queries_per_round = 25;
        cfg.k = 3;
        cfg.b_range = (10.0, 60.0);
        cfg
    }

    #[test]
    fn runs_and_produces_curves() {
        let r = run_fig3(&small_cfg());
        assert_eq!(r.b_centers.len(), 4);
        assert_eq!(r.wpr_tree_decentral.len(), 4);
        // Queries were easy: the majority should be answered.
        assert!(r.rr[1].unwrap() > 0.3, "central RR = {:?}", r.rr);
        // Tables render.
        let tables = r.tables();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].render().contains("TREE-DECENTRAL"));
    }

    #[test]
    fn tree_prediction_beats_euclidean() {
        // The headline claim of Fig. 3b: the tree CDF dominates.
        let r = run_fig3(&small_cfg());
        // Compare the CDFs at a mid-range error (0.3): higher is better.
        let idx = r
            .relerr_xs
            .iter()
            .position(|&x| (x - 0.3).abs() < 1e-9)
            .unwrap();
        let tree = r.relerr_cdf_tree[idx].unwrap();
        let eucl = r.relerr_cdf_eucl[idx].unwrap();
        assert!(
            tree > eucl,
            "tree CDF at 0.3 = {tree}, eucl = {eucl} (tree must predict better)"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_fig3(&small_cfg());
        let b = run_fig3(&small_cfg());
        assert_eq!(a.wpr_tree_decentral, b.wpr_tree_decentral);
        assert_eq!(a.relerr_cdf_eucl, b.relerr_cdf_eucl);
    }
}
