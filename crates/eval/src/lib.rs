//! Experiment harness reproducing the paper's evaluation (Sec. IV).
//!
//! One module per figure, each with a `paper()` configuration matching the
//! published parameters and a `fast()` configuration for smoke tests:
//!
//! - [`fig3`] — clustering accuracy (WPR vs `b`) and bandwidth-prediction
//!   error CDFs; tree metric vs the Vivaldi/Euclidean baseline.
//! - [`fig4`] — the decentralization tradeoff: RR vs `k`.
//! - [`fig5`] — the effect of treeness: WPR vs `f_b`, raw and normalized
//!   by `(·)^{f_a*}` with `α = 3.2`.
//! - [`fig6`] — scalability: mean routing hops vs system size.
//! - [`robustness`] — extension: query success, retries and re-convergence
//!   under injected message loss and host crashes.
//!
//! Shared machinery: [`metrics`] (WPR/RR accumulators, bucketing),
//! [`report`] (plain-text tables), [`setup`] (dataset selection and
//! approach builders). Rounds run in parallel with deterministic per-round
//! seeds, so results are reproducible regardless of thread scheduling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ext_convergence;
pub mod ext_embedding;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod metrics;
pub mod report;
pub mod robustness;
pub mod setup;

pub use ext_convergence::{run_convergence, ConvergenceConfig, ConvergenceResult};
pub use ext_embedding::{run_embedding, EmbeddingConfig, EmbeddingResult};
pub use fig3::{run_fig3, Fig3Config, Fig3Result};
pub use fig4::{run_fig4, Fig4Config, Fig4Result};
pub use fig5::{run_fig5, Fig5Config, Fig5Result};
pub use fig6::{run_fig6, Fig6Config, Fig6Result};
pub use report::{Series, Table};
pub use robustness::{run_robustness, RobustnessCell, RobustnessConfig, RobustnessResult};
pub use setup::DatasetKind;
