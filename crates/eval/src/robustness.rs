//! Robustness experiment (not in the paper): query success under message
//! loss and host crashes.
//!
//! The paper evaluates a fault-free simulator. This experiment sweeps a
//! grid of (uniform message-loss rate × crashed-host fraction) scenarios
//! over the cycle engine with a seeded [`FaultPlan`]: the overlay warms up
//! under loss, a batch of hosts crash-stops mid-run, and failure-aware
//! queries ([`bcc_simnet::SimNetwork::query_resilient`]) are scored against
//! the *live ground truth* — what Algorithm 1 finds on the predicted metric
//! restricted to surviving hosts. Reported per cell:
//!
//! - **success rate** — satisfiable queries answered with a valid cluster,
//! - **mean retries / dead hops** — the degradation the retry machinery
//!   absorbed ([`bcc_core::Degradation`]),
//! - **re-convergence rounds** — gossip rounds until the survivors'
//!   protocol state settles again after the crash wave,
//! - **observed loss** — dropped / sent messages, as a sanity check that
//!   the injected rate actually materialized.
//!
//! Everything is deterministic per seed; the `robustness` binary in
//! `crates/bench` renders tables and figure-style JSON.

use bcc_core::{find_cluster, BandwidthClasses, ProtocolConfig, RetryPolicy};
use bcc_embed::{FrameworkConfig, PredictionFramework};
use bcc_metric::{DistanceMatrix, NodeId};
use bcc_simnet::{FaultPlan, SimNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{MeanAccumulator, RrAccumulator};
use crate::report::{Series, Table};
use crate::setup::{transform, DatasetKind};

/// Configuration of the robustness experiment.
#[derive(Debug, Clone)]
pub struct RobustnessConfig {
    /// Dataset the host subsets are drawn from.
    pub dataset: DatasetKind,
    /// Hosts per trial.
    pub size: usize,
    /// Uniform message-loss rates to sweep (x-axis).
    pub loss_rates: Vec<f64>,
    /// Fractions of hosts crash-stopped mid-run (one curve each).
    pub crash_fracs: Vec<f64>,
    /// Independent trials per grid cell.
    pub trials: usize,
    /// Gossip rounds before the crash wave hits.
    pub warmup_rounds: usize,
    /// Post-crash convergence cap (rounds).
    pub max_rounds: usize,
    /// Queries issued per trial (from random live hosts).
    pub queries_per_trial: usize,
    /// Cluster size constraint `k` for every query.
    pub k: usize,
    /// Close-node aggregation cap.
    pub n_cut: usize,
    /// Number of bandwidth classes.
    pub class_count: usize,
    /// Retry/backoff policy for the failure-aware queries.
    pub retry: RetryPolicy,
    /// Base RNG seed.
    pub seed: u64,
}

impl RobustnessConfig {
    /// Default sweep: UMD-like hosts, loss up to 50 %, crashes up to 20 %.
    pub fn standard() -> Self {
        RobustnessConfig {
            dataset: DatasetKind::Umd,
            size: 100,
            loss_rates: vec![0.0, 0.1, 0.3, 0.5],
            crash_fracs: vec![0.0, 0.05, 0.1, 0.2],
            trials: 3,
            warmup_rounds: 48,
            max_rounds: 512,
            queries_per_trial: 32,
            k: 8,
            n_cut: 10,
            class_count: 16,
            retry: RetryPolicy::default(),
            seed: 0xB0B,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn fast() -> Self {
        RobustnessConfig {
            dataset: DatasetKind::Custom(bcc_datasets::SynthConfig::small(5)),
            size: 24,
            loss_rates: vec![0.0, 0.3],
            crash_fracs: vec![0.0, 0.1],
            trials: 1,
            warmup_rounds: 24,
            max_rounds: 256,
            queries_per_trial: 8,
            k: 3,
            n_cut: 6,
            class_count: 8,
            retry: RetryPolicy::default(),
            seed: 77,
        }
    }
}

/// Aggregated measurements for one (loss, crash-fraction) grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessCell {
    /// Injected uniform message-loss rate.
    pub loss: f64,
    /// Fraction of hosts crash-stopped mid-run.
    pub crash_frac: f64,
    /// Queries issued.
    pub queries: u64,
    /// Queries whose live ground truth was satisfiable.
    pub satisfiable: u64,
    /// Satisfiable queries answered with a valid live cluster.
    pub succeeded: u64,
    /// Mean retry attempts per query.
    pub mean_retries: Option<f64>,
    /// Mean dead next-hops encountered per query.
    pub mean_dead_encountered: Option<f64>,
    /// Fraction of queries that observed stale CRT state.
    pub stale_rate: Option<f64>,
    /// Mean gossip rounds for survivors to re-converge after the crash
    /// wave (`max_rounds` when a trial never settled).
    pub mean_reconvergence_rounds: Option<f64>,
    /// Dropped / sent messages actually observed.
    pub observed_loss: Option<f64>,
}

impl RobustnessCell {
    /// Satisfiable-query success rate, or `None` when nothing was
    /// satisfiable in this cell.
    pub fn success_rate(&self) -> Option<f64> {
        if self.satisfiable == 0 {
            None
        } else {
            Some(self.succeeded as f64 / self.satisfiable as f64)
        }
    }
}

/// Result of the robustness sweep, one cell per grid point.
#[derive(Debug, Clone)]
pub struct RobustnessResult {
    /// Swept loss rates (x-axis of every table).
    pub loss_rates: Vec<f64>,
    /// Swept crash fractions (one series each).
    pub crash_fracs: Vec<f64>,
    /// Cluster size constraint used by every query.
    pub k: usize,
    /// Grid cells in `crash_fracs`-major, `loss_rates`-minor order.
    pub cells: Vec<RobustnessCell>,
}

#[derive(Default, Clone)]
struct CellAccum {
    success: RrAccumulator,
    all_queries: u64,
    retries: MeanAccumulator,
    dead: MeanAccumulator,
    stale: RrAccumulator,
    reconv: MeanAccumulator,
    observed_loss: MeanAccumulator,
}

/// Runs the sweep, the flattened (cell, trial) grid parallelized on the
/// `bcc-par` pool and merged in task order (deterministic for any thread
/// count).
pub fn run_robustness(cfg: &RobustnessConfig) -> RobustnessResult {
    let n_cells = cfg.loss_rates.len() * cfg.crash_fracs.len();

    let trials = bcc_par::par_map(n_cells * cfg.trials, |task| {
        let (cell, trial) = (task / cfg.trials, task % cfg.trials);
        let (ci, li) = (cell / cfg.loss_rates.len(), cell % cfg.loss_rates.len());
        let crash_frac = cfg.crash_fracs[ci];
        let loss = cfg.loss_rates[li];
        let seed = cfg
            .seed
            .wrapping_add(cell as u64 * 0x51_7CC1)
            .wrapping_add(trial as u64 * 0x9E37_79B9);
        run_trial(cfg, loss, crash_frac, seed)
    });

    let mut m: Vec<CellAccum> = vec![CellAccum::default(); n_cells];
    for (task, stats) in trials.into_iter().enumerate() {
        let acc = &mut m[task / cfg.trials];
        acc.success.merge(stats.success);
        acc.all_queries += stats.all_queries;
        acc.retries.merge(stats.retries);
        acc.dead.merge(stats.dead);
        acc.stale.merge(stats.stale);
        acc.reconv.merge(stats.reconv);
        acc.observed_loss.merge(stats.observed_loss);
    }
    let mut cells = Vec::with_capacity(n_cells);
    for (ci, &crash_frac) in cfg.crash_fracs.iter().enumerate() {
        for (li, &loss) in cfg.loss_rates.iter().enumerate() {
            let acc = &m[ci * cfg.loss_rates.len() + li];
            cells.push(RobustnessCell {
                loss,
                crash_frac,
                queries: acc.all_queries,
                satisfiable: acc.success.queries(),
                succeeded: acc.success.found(),
                mean_retries: acc.retries.mean(),
                mean_dead_encountered: acc.dead.mean(),
                stale_rate: acc.stale.rate(),
                mean_reconvergence_rounds: acc.reconv.mean(),
                observed_loss: acc.observed_loss.mean(),
            });
        }
    }
    RobustnessResult {
        loss_rates: cfg.loss_rates.clone(),
        crash_fracs: cfg.crash_fracs.clone(),
        k: cfg.k,
        cells,
    }
}

struct TrialStats {
    success: RrAccumulator,
    all_queries: u64,
    retries: MeanAccumulator,
    dead: MeanAccumulator,
    stale: RrAccumulator,
    reconv: MeanAccumulator,
    observed_loss: MeanAccumulator,
}

fn run_trial(cfg: &RobustnessConfig, loss: f64, crash_frac: f64, seed: u64) -> TrialStats {
    let t = transform();
    let full = cfg.dataset.generate(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let bw = bcc_datasets::random_subset(&full, cfg.size.min(full.len()), &mut rng);
    let n = bw.len();
    let d = t.distance_matrix(&bw);
    let fw = PredictionFramework::build_from_matrix(&d, FrameworkConfig::default());
    let predicted = fw.predicted_matrix();
    let (b_lo, b_hi) = cfg.dataset.default_b_range();
    let classes = BandwidthClasses::linspace(b_lo, b_hi, cfg.class_count, t);
    let proto = ProtocolConfig::new(cfg.n_cut, classes.clone());

    let mut net = SimNetwork::new(fw.anchor(), predicted.clone(), proto);
    let plan = FaultPlan::new(seed)
        .uniform_loss(0.0, loss, None)
        .random_crashes(cfg.warmup_rounds as f64, n, crash_frac);
    net.inject_faults(&plan);

    // Warm up under loss, let the crash wave hit, then measure how long
    // the survivors take to settle again.
    for _ in 0..cfg.warmup_rounds {
        net.run_round();
    }
    let mut stats = TrialStats {
        success: RrAccumulator::new(),
        all_queries: 0,
        retries: MeanAccumulator::new(),
        dead: MeanAccumulator::new(),
        stale: RrAccumulator::new(),
        reconv: MeanAccumulator::new(),
        observed_loss: MeanAccumulator::new(),
    };
    let reconv = net
        .run_to_convergence(cfg.max_rounds)
        .unwrap_or(cfg.max_rounds);
    stats.reconv.record(reconv as f64);

    let live: Vec<usize> = (0..n).filter(|&i| !net.is_down(NodeId::new(i))).collect();
    if live.len() < 2 {
        return stats;
    }

    for _ in 0..cfg.queries_per_trial {
        let b = rng.gen_range(b_lo..=b_hi);
        let start = NodeId::new(live[rng.gen_range(0..live.len())]);
        let class_idx = classes.snap_up(b).expect("b within class range");
        let l = classes.distance_of(class_idx);
        // Live ground truth: Algorithm 1 over the predicted metric
        // restricted to surviving hosts.
        let sub = DistanceMatrix::from_fn(live.len(), |a, c| predicted.get(live[a], live[c]));
        let satisfiable = find_cluster(&sub, cfg.k, l).is_some();

        let out = net
            .query_resilient(start, cfg.k, b, &cfg.retry)
            .expect("live start and valid query");
        stats.all_queries += 1;
        stats.retries.record(out.degradation.retries as f64);
        stats.dead.record(out.degradation.dead_encountered as f64);
        stats.stale.record(out.degradation.stale_state);
        if satisfiable {
            let valid = out
                .cluster
                .as_ref()
                .is_some_and(|c| c.len() == cfg.k && c.iter().all(|m| !net.is_down(*m)));
            stats.success.record(valid);
        }
    }

    let traffic = net.traffic();
    if traffic.messages > 0 {
        stats
            .observed_loss
            .record(traffic.dropped as f64 / traffic.messages as f64);
    }
    stats
}

impl RobustnessResult {
    fn cell(&self, ci: usize, li: usize) -> &RobustnessCell {
        &self.cells[ci * self.loss_rates.len() + li]
    }

    fn series_over_loss(&self, value: impl Fn(&RobustnessCell) -> Option<f64>) -> Vec<Series> {
        self.crash_fracs
            .iter()
            .enumerate()
            .map(|(ci, &frac)| {
                Series::new(
                    format!("CRASH={:.0}%", frac * 100.0),
                    (0..self.loss_rates.len())
                        .map(|li| value(self.cell(ci, li)))
                        .collect(),
                )
            })
            .collect()
    }

    /// Renders the figure-style tables: success rate, retries and
    /// re-convergence cost, each vs loss rate with one curve per crash
    /// fraction.
    pub fn tables(&self) -> Vec<Table> {
        vec![
            Table::new(
                format!(
                    "Robustness — satisfiable-query success rate vs loss (k = {})",
                    self.k
                ),
                "loss rate",
                self.loss_rates.clone(),
                self.series_over_loss(|c| c.success_rate()),
            ),
            Table::new(
                "Robustness — mean retries per query vs loss",
                "loss rate",
                self.loss_rates.clone(),
                self.series_over_loss(|c| c.mean_retries),
            ),
            Table::new(
                "Robustness — re-convergence rounds after crash wave vs loss",
                "loss rate",
                self.loss_rates.clone(),
                self.series_over_loss(|c| c.mean_reconvergence_rounds),
            ),
        ]
    }

    /// Serializes the full grid as figure-style JSON (hand-rolled: the
    /// vendored serde stack has no serializer).
    pub fn to_json(&self) -> String {
        fn num(v: Option<f64>) -> String {
            match v {
                Some(x) if x.is_finite() => format!("{x:.6}"),
                _ => "null".to_string(),
            }
        }
        let mut out = String::from("{\n  \"experiment\": \"robustness\",\n");
        out.push_str(&format!("  \"k\": {},\n", self.k));
        let join = |xs: &[f64]| {
            xs.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "  \"loss_rates\": [{}],\n",
            join(&self.loss_rates)
        ));
        out.push_str(&format!(
            "  \"crash_fracs\": [{}],\n",
            join(&self.crash_fracs)
        ));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"loss\": {}, \"crash_frac\": {}, \"queries\": {}, \
                 \"satisfiable\": {}, \"succeeded\": {}, \"success_rate\": {}, \
                 \"mean_retries\": {}, \"mean_dead_encountered\": {}, \
                 \"stale_rate\": {}, \"mean_reconvergence_rounds\": {}, \
                 \"observed_loss\": {}}}{}\n",
                c.loss,
                c.crash_frac,
                c.queries,
                c.satisfiable,
                c.succeeded,
                num(c.success_rate()),
                num(c.mean_retries),
                num(c.mean_dead_encountered),
                num(c.stale_rate),
                num(c.mean_reconvergence_rounds),
                num(c.observed_loss),
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_fast_grid() {
        let r = run_robustness(&RobustnessConfig::fast());
        assert_eq!(r.cells.len(), 4);
        // The fault-free cell answers every satisfiable query.
        let clean = r.cell(0, 0);
        assert_eq!(clean.loss, 0.0);
        assert_eq!(clean.crash_frac, 0.0);
        assert!(clean.satisfiable > 0, "some queries must be satisfiable");
        assert_eq!(clean.success_rate(), Some(1.0));
        assert_eq!(clean.mean_retries, Some(0.0));
        // The lossy cell actually observed loss near the injected rate.
        let lossy = r.cell(0, 1);
        let obs = lossy.observed_loss.unwrap();
        assert!((0.15..0.45).contains(&obs), "≈30 % loss, got {obs}");
        // The crashy cell reports the degradation machinery at work.
        let crashy = r.cell(1, 1);
        assert!(crashy.queries > 0);
    }

    #[test]
    fn deterministic() {
        let a = run_robustness(&RobustnessConfig::fast());
        let b = run_robustness(&RobustnessConfig::fast());
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn renders_tables_and_json() {
        let r = run_robustness(&RobustnessConfig::fast());
        let tables = r.tables();
        assert_eq!(tables.len(), 3);
        assert!(tables[0].render().contains("CRASH=10%"));
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"robustness\""));
        assert!(json.contains("\"success_rate\""));
        // Crude structural sanity: balanced braces/brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
