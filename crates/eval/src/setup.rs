//! Shared experiment plumbing: dataset selection and approach builders.

use bcc_core::{BandwidthClasses, ProtocolConfig};
use bcc_datasets::{generate, hp_config, umd_config, SynthConfig};
use bcc_metric::{BandwidthMatrix, DistanceMatrix, EuclideanPoints, RationalTransform};
use bcc_simnet::{ClusterSystem, SystemConfig};
use bcc_vivaldi::{VivaldiConfig, VivaldiSystem};
use serde::{Deserialize, Serialize};

/// Which dataset an experiment runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// The HP-PlanetLab stand-in (190 hosts, 15–75 Mbps band).
    Hp,
    /// The UMD-PlanetLab stand-in (317 hosts, 30–110 Mbps band).
    Umd,
    /// Any custom generator configuration (its `seed` field is overridden
    /// per experiment round).
    Custom(SynthConfig),
}

impl DatasetKind {
    /// Generates the dataset for one experiment round.
    pub fn generate(&self, seed: u64) -> BandwidthMatrix {
        match self {
            DatasetKind::Hp => generate(&hp_config(seed)),
            DatasetKind::Umd => generate(&umd_config(seed)),
            DatasetKind::Custom(cfg) => {
                let mut cfg = cfg.clone();
                cfg.seed = seed;
                generate(&cfg)
            }
        }
    }

    /// Display prefix used in result tables (`HP`, `UMD`, `CUSTOM`).
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::Hp => "HP",
            DatasetKind::Umd => "UMD",
            DatasetKind::Custom(_) => "CUSTOM",
        }
    }

    /// The paper's query bandwidth range for this dataset.
    pub fn default_b_range(&self) -> (f64, f64) {
        match self {
            DatasetKind::Hp => (15.0, 75.0),
            DatasetKind::Umd => (30.0, 110.0),
            DatasetKind::Custom(_) => (5.0, 100.0),
        }
    }

    /// The paper's fixed `k` for the accuracy experiment (≈ 5% of nodes).
    pub fn default_k(&self) -> usize {
        match self {
            DatasetKind::Hp => 10,
            DatasetKind::Umd => 16,
            DatasetKind::Custom(cfg) => (cfg.nodes / 20).max(2),
        }
    }
}

/// Builds the tree-metric system (prediction framework + converged
/// overlay) for one round.
pub fn build_tree_system(
    bandwidth: BandwidthMatrix,
    n_cut: usize,
    classes: BandwidthClasses,
    framework_seed: u64,
) -> ClusterSystem {
    let mut config = SystemConfig::new(classes);
    config.protocol = ProtocolConfig::new(n_cut, config.protocol.classes.clone());
    config.framework.seed = framework_seed;
    config.framework.base = bcc_embed::BaseStrategy::Random;
    ClusterSystem::build(bandwidth, config)
}

/// Builds the Vivaldi baseline embedding for one round.
pub fn build_vivaldi_points(
    real_distance: &DistanceMatrix,
    rounds: usize,
    seed: u64,
) -> EuclideanPoints {
    let cfg = VivaldiConfig {
        rounds,
        seed,
        ..VivaldiConfig::default()
    };
    VivaldiSystem::embed(real_distance.clone(), cfg)
}

/// The transform every experiment uses (`C = 100`, the paper's example
/// constant; WPR only depends on order so the choice is immaterial).
pub fn transform() -> RationalTransform {
    RationalTransform::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_metric::NodeId;

    #[test]
    fn dataset_kinds_generate() {
        let hp = DatasetKind::Hp.generate(1);
        assert_eq!(hp.len(), 190);
        let custom = DatasetKind::Custom(SynthConfig::small(0)).generate(2);
        assert_eq!(custom.len(), 40);
        assert_eq!(DatasetKind::Hp.label(), "HP");
        assert_eq!(DatasetKind::Umd.default_k(), 16);
        assert_eq!(DatasetKind::Hp.default_b_range(), (15.0, 75.0));
    }

    #[test]
    fn custom_seed_overridden_per_round() {
        let kind = DatasetKind::Custom(SynthConfig::small(7));
        assert_ne!(kind.generate(1), kind.generate(2));
        assert_eq!(kind.generate(3), kind.generate(3));
    }

    #[test]
    fn tree_system_builder_works() {
        let bw = DatasetKind::Custom(SynthConfig::small(3)).generate(3);
        let classes = BandwidthClasses::linspace(10.0, 80.0, 8, transform());
        let sys = build_tree_system(bw, 5, classes, 9);
        assert_eq!(sys.len(), 40);
        // Queries run end-to-end.
        let out = sys.query(NodeId::new(0), 2, 20.0).unwrap();
        let _ = out.found();
    }

    #[test]
    fn vivaldi_builder_works() {
        let bw = DatasetKind::Custom(SynthConfig::small(4)).generate(4);
        let d = transform().distance_matrix(&bw);
        let pts = build_vivaldi_points(&d, 30, 5);
        assert_eq!(bcc_metric::FiniteMetric::len(&pts), 40);
    }
}
