//! Fig. 4 — the decentralization tradeoff: return rate (RR) vs cluster
//! size constraint `k`.
//!
//! Each node only aggregates `n_cut` records per neighbor direction, so the
//! decentralized algorithm's clustering spaces are small and very large `k`
//! cannot be answered; the centralized algorithm sees the whole predicted
//! metric. RR(decentral) ≤ RR(central) with a negligible gap for
//! `k ≲ 20 %` of the system.

use bcc_core::{find_cluster, BandwidthClasses};
use bcc_metric::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{Buckets, RrAccumulator};
use crate::report::{Series, Table};
use crate::setup::{build_tree_system, transform, DatasetKind};

/// Configuration of the tradeoff experiment.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Dataset to run on.
    pub dataset: DatasetKind,
    /// Number of rounds (fresh dataset + framework per round).
    pub rounds: usize,
    /// Queries per round, each with uniform `k` and `b`.
    pub queries_per_round: usize,
    /// Size-constraint range (uniform integer).
    pub k_range: (usize, usize),
    /// Bandwidth-constraint range (uniform).
    pub b_range: (f64, f64),
    /// Close-node aggregation cap (the paper uses 10).
    pub n_cut: usize,
    /// Number of bandwidth classes covering `b_range`.
    pub class_count: usize,
    /// Buckets along the `k` axis.
    pub buckets: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Fig4Config {
    /// The paper's HP parameters: 100 queries × 100 rounds, k ∈ [2, 90],
    /// b ∈ [15, 75], n_cut = 10.
    pub fn paper_hp() -> Self {
        Fig4Config {
            dataset: DatasetKind::Hp,
            rounds: 100,
            queries_per_round: 100,
            k_range: (2, 90),
            b_range: (15.0, 75.0),
            n_cut: 10,
            class_count: 16,
            buckets: 11,
            seed: 2,
        }
    }

    /// The paper's UMD parameters: k ∈ [2, 150], b ∈ [30, 110].
    pub fn paper_umd() -> Self {
        Fig4Config {
            dataset: DatasetKind::Umd,
            rounds: 100,
            queries_per_round: 100,
            k_range: (2, 150),
            b_range: (30.0, 110.0),
            n_cut: 10,
            class_count: 16,
            buckets: 11,
            seed: 2,
        }
    }

    /// A scaled-down configuration for tests and smoke runs.
    pub fn fast(dataset: DatasetKind) -> Self {
        let b_range = dataset.default_b_range();
        Fig4Config {
            dataset,
            rounds: 2,
            queries_per_round: 30,
            k_range: (2, 20),
            b_range,
            n_cut: 6,
            class_count: 6,
            buckets: 5,
            seed: 5,
        }
    }
}

/// Result: RR vs `k` for the centralized and decentralized algorithms.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Dataset label.
    pub label: &'static str,
    /// Bucket centers along the `k` axis.
    pub k_centers: Vec<f64>,
    /// RR of the decentralized algorithm per bucket.
    pub rr_decentral: Vec<Option<f64>>,
    /// RR of the centralized algorithm per bucket.
    pub rr_central: Vec<Option<f64>>,
}

/// Runs the experiment, rounds parallelized on the `bcc-par` pool and
/// merged in round order (deterministic for any thread count).
pub fn run_fig4(cfg: &Fig4Config) -> Fig4Result {
    assert!(
        cfg.k_range.0 >= 2 && cfg.k_range.1 >= cfg.k_range.0,
        "invalid k range"
    );
    let t = transform();
    let make = || -> [Buckets<RrAccumulator>; 2] {
        std::array::from_fn(|_| {
            Buckets::new(
                cfg.k_range.0 as f64,
                cfg.k_range.1 as f64 + 1.0,
                cfg.buckets,
            )
        })
    };

    let partials = bcc_par::par_map(cfg.rounds, |round| {
        let round_seed = cfg.seed.wrapping_add(round as u64 * 0x5851_F42D);
        let mut rng = StdRng::seed_from_u64(round_seed);
        let bw = cfg.dataset.generate(round_seed);
        let n = bw.len();
        let classes = BandwidthClasses::linspace(cfg.b_range.0, cfg.b_range.1, cfg.class_count, t);
        let system = build_tree_system(bw, cfg.n_cut, classes, round_seed ^ 0xACE);
        let predicted = system.framework().predicted_matrix();

        let mut partial = make();
        for _ in 0..cfg.queries_per_round {
            let k = rng.gen_range(cfg.k_range.0..=cfg.k_range.1);
            let b = rng.gen_range(cfg.b_range.0..=cfg.b_range.1);
            let start = NodeId::new(rng.gen_range(0..n));

            let dec = system.query(start, k, b).expect("valid query");
            partial[0].slot_mut(k as f64).record(dec.found());

            let cen = find_cluster(&predicted, k, t.distance_constraint(b));
            partial[1].slot_mut(k as f64).record(cen.is_some());
        }
        partial
    });

    let mut m = make();
    for [p0, p1] in partials {
        m[0].merge_with(p0, |a, b| a.merge(b));
        m[1].merge_with(p1, |a, b| a.merge(b));
    }
    Fig4Result {
        label: cfg.dataset.label(),
        k_centers: m[0].iter().map(|(c, _)| c).collect(),
        rr_decentral: m[0].iter().map(|(_, a)| a.rate()).collect(),
        rr_central: m[1].iter().map(|(_, a)| a.rate()).collect(),
    }
}

impl Fig4Result {
    /// Renders the paper panel (RR vs `k`).
    pub fn table(&self) -> Table {
        let l = self.label;
        Table::new(
            format!("Fig. 4 ({l}) — RR vs k (tradeoff of decentralization)"),
            "k (nodes)",
            self.k_centers.clone(),
            vec![
                Series::new(format!("{l}-TREE-DECENTRAL"), self.rr_decentral.clone()),
                Series::new(format!("{l}-TREE-CENTRAL"), self.rr_central.clone()),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_datasets::SynthConfig;

    fn small_cfg() -> Fig4Config {
        let mut synth = SynthConfig::small(0);
        synth.nodes = 30;
        let mut cfg = Fig4Config::fast(DatasetKind::Custom(synth));
        cfg.b_range = (10.0, 60.0);
        cfg.k_range = (2, 24);
        cfg.queries_per_round = 40;
        cfg
    }

    #[test]
    fn decentral_rr_never_exceeds_central() {
        let r = run_fig4(&small_cfg());
        for (d, c) in r.rr_decentral.iter().zip(&r.rr_central) {
            if let (Some(d), Some(c)) = (d, c) {
                assert!(d <= c, "decentral {d} > central {c}");
            }
        }
    }

    #[test]
    fn rr_declines_with_k() {
        let r = run_fig4(&small_cfg());
        // First bucket (small k) should succeed more than the last (huge k).
        let first = r.rr_central.first().unwrap().unwrap();
        let last = r.rr_central.last().unwrap().unwrap();
        assert!(first >= last, "first {first} < last {last}");
        assert!(
            first > 0.5,
            "small-k queries should mostly succeed: {first}"
        );
    }

    #[test]
    fn table_renders() {
        let r = run_fig4(&small_cfg());
        let s = r.table().render();
        assert!(s.contains("TREE-DECENTRAL"));
        assert!(s.contains("TREE-CENTRAL"));
    }
}
