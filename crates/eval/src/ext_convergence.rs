//! Extension experiment (not in the paper): construction and convergence
//! cost of the decentralized state, synchronous and asynchronous.
//!
//! The paper argues scalability from query hop counts (Fig. 6); this
//! experiment quantifies the *background* cost the protocol pays first —
//! gossip rounds / simulated seconds to convergence and bytes per host —
//! as the system grows, under both engines.

use bcc_core::{BandwidthClasses, ProtocolConfig};
use bcc_embed::{FrameworkConfig, PredictionFramework};
use bcc_simnet::{AsyncConfig, AsyncNetwork, SimNetwork};

use crate::metrics::MeanAccumulator;
use crate::report::{Series, Table};
use crate::setup::{transform, DatasetKind};

/// Configuration of the convergence-cost experiment.
#[derive(Debug, Clone)]
pub struct ConvergenceConfig {
    /// Dataset the subsets are drawn from.
    pub dataset: DatasetKind,
    /// System sizes to evaluate.
    pub sizes: Vec<usize>,
    /// Frameworks per size.
    pub rounds: usize,
    /// Close-node aggregation cap.
    pub n_cut: usize,
    /// Number of bandwidth classes.
    pub class_count: usize,
    /// Async gossip period (seconds).
    pub gossip_period: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl ConvergenceConfig {
    /// Default extension parameters.
    pub fn standard() -> Self {
        ConvergenceConfig {
            dataset: DatasetKind::Umd,
            sizes: vec![50, 100, 200, 300],
            rounds: 3,
            n_cut: 10,
            class_count: 16,
            gossip_period: 1.0,
            seed: 17,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn fast() -> Self {
        ConvergenceConfig {
            dataset: DatasetKind::Custom(bcc_datasets::SynthConfig::small(2)),
            sizes: vec![12, 24],
            rounds: 1,
            n_cut: 5,
            class_count: 6,
            gossip_period: 1.0,
            seed: 18,
        }
    }
}

/// Result of the convergence-cost experiment.
#[derive(Debug, Clone)]
pub struct ConvergenceResult {
    /// System sizes.
    pub sizes: Vec<usize>,
    /// Mean synchronous rounds to convergence.
    pub sync_rounds: Vec<Option<f64>>,
    /// Mean gossip bytes per host (synchronous engine).
    pub sync_bytes_per_host: Vec<Option<f64>>,
    /// Mean simulated seconds to convergence (asynchronous engine).
    pub async_seconds: Vec<Option<f64>>,
    /// Mean delivered messages per host (asynchronous engine).
    pub async_msgs_per_host: Vec<Option<f64>>,
}

/// Runs the experiment, the flattened (size, round) grid parallelized on
/// the `bcc-par` pool and merged in task order (deterministic for any
/// thread count).
pub fn run_convergence(cfg: &ConvergenceConfig) -> ConvergenceResult {
    let t = transform();
    type Slot = (
        MeanAccumulator,
        MeanAccumulator,
        MeanAccumulator,
        MeanAccumulator,
    );

    let n_tasks = cfg.sizes.len() * cfg.rounds;
    let locals = bcc_par::par_map(n_tasks, |task| {
        let (si, round) = (task / cfg.rounds, task % cfg.rounds);
        let n = cfg.sizes[si];
        let seed = cfg
            .seed
            .wrapping_add(si as u64 * 0x51_7CC1)
            .wrapping_add(round as u64 * 0x9E37_79B9);
        let full = cfg.dataset.generate(seed);
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(seed)
        };
        let bw = bcc_datasets::random_subset(&full, n.min(full.len()), &mut rng);
        let d = t.distance_matrix(&bw);
        let fw = PredictionFramework::build_from_matrix(&d, FrameworkConfig::default());
        let classes = BandwidthClasses::linspace(10.0, 120.0, cfg.class_count, t);
        let proto = ProtocolConfig::new(cfg.n_cut, classes);

        // Synchronous engine.
        let mut sync = SimNetwork::new(fw.anchor(), fw.predicted_matrix(), proto.clone());
        let rounds = sync.run_to_convergence(1000).expect("sync converges") as f64;
        let bytes_per_host = sync.traffic().bytes as f64 / n as f64;

        // Asynchronous engine.
        let mut acfg = AsyncConfig::new(proto);
        acfg.gossip_period = cfg.gossip_period;
        acfg.seed = seed ^ 0xA5;
        let mut asynch = AsyncNetwork::new(fw.anchor(), fw.predicted_matrix(), acfg);
        let secs = asynch
            .run_to_convergence(2.0 * cfg.gossip_period, 10_000.0)
            .expect("async converges");
        let msgs_per_host = asynch.delivered() as f64 / n as f64;

        (rounds, bytes_per_host, secs, msgs_per_host)
    });

    let mut m: Vec<Slot> = vec![Default::default(); cfg.sizes.len()];
    for (task, (rounds, bytes_per_host, secs, msgs_per_host)) in locals.into_iter().enumerate() {
        let si = task / cfg.rounds;
        m[si].0.record(rounds);
        m[si].1.record(bytes_per_host);
        m[si].2.record(secs);
        m[si].3.record(msgs_per_host);
    }
    ConvergenceResult {
        sizes: cfg.sizes.clone(),
        sync_rounds: m.iter().map(|s| s.0.mean()).collect(),
        sync_bytes_per_host: m.iter().map(|s| s.1.mean()).collect(),
        async_seconds: m.iter().map(|s| s.2.mean()).collect(),
        async_msgs_per_host: m.iter().map(|s| s.3.mean()).collect(),
    }
}

impl ConvergenceResult {
    /// Renders the extension table.
    pub fn table(&self) -> Table {
        Table::new(
            "Extension — convergence cost vs system size (sync + async engines)",
            "n (nodes)",
            self.sizes.iter().map(|&n| n as f64).collect(),
            vec![
                Series::new("SYNC-ROUNDS", self.sync_rounds.clone()),
                Series::new("SYNC-B/HOST", self.sync_bytes_per_host.clone()),
                Series::new("ASYNC-SECS", self.async_seconds.clone()),
                Series::new("ASYNC-MSG/HOST", self.async_msgs_per_host.clone()),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_scales() {
        let r = run_convergence(&ConvergenceConfig::fast());
        assert_eq!(r.sizes, vec![12, 24]);
        for v in r.sync_rounds.iter().chain(&r.async_seconds) {
            assert!(v.unwrap() > 0.0);
        }
        // Bytes per host grow sublinearly-ish but must be positive.
        assert!(r.sync_bytes_per_host.iter().all(|v| v.unwrap() > 0.0));
        let s = r.table().render();
        assert!(s.contains("ASYNC-SECS"));
    }

    #[test]
    fn deterministic() {
        let a = run_convergence(&ConvergenceConfig::fast());
        let b = run_convergence(&ConvergenceConfig::fast());
        assert_eq!(a.sync_rounds, b.sync_rounds);
        assert_eq!(a.async_msgs_per_host, b.async_msgs_per_host);
    }
}
