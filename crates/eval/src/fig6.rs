//! Fig. 6 — scalability: mean query routing hops vs system size.
//!
//! Random subsets of the UMD stand-in at several sizes; queries with `k`
//! proportional to `n`. The paper reports ~2–3 hops on average, growing
//! slowly and concavely with `n`.

use bcc_core::BandwidthClasses;
use bcc_metric::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bcc_datasets::random_subset;

use crate::metrics::{MeanAccumulator, RrAccumulator};
use crate::report::{Series, Table};
use crate::setup::{build_tree_system, transform, DatasetKind};

/// Configuration of the scalability experiment.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Dataset the subsets are drawn from.
    pub dataset: DatasetKind,
    /// System sizes to evaluate.
    pub sizes: Vec<usize>,
    /// Random subsets per size.
    pub subsets_per_size: usize,
    /// Frameworks (rounds) per subset.
    pub rounds_per_subset: usize,
    /// Queries per round.
    pub queries_per_round: usize,
    /// `k` is uniform in `[k_frac.0 × n, k_frac.1 × n]`.
    pub k_frac: (f64, f64),
    /// Bandwidth-constraint range (uniform).
    pub b_range: (f64, f64),
    /// Close-node aggregation cap.
    pub n_cut: usize,
    /// Number of bandwidth classes covering `b_range`.
    pub class_count: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Fig6Config {
    /// The paper's parameters: n ∈ {50…300} (10 subsets each), 1000
    /// queries × 10 rounds, k ∈ [0.05 n, 0.30 n], b ∈ [30, 110].
    pub fn paper() -> Self {
        Fig6Config {
            dataset: DatasetKind::Umd,
            sizes: vec![50, 100, 150, 200, 250, 300],
            subsets_per_size: 10,
            rounds_per_subset: 10,
            queries_per_round: 100,
            k_frac: (0.05, 0.30),
            b_range: (30.0, 110.0),
            n_cut: 10,
            class_count: 16,
            seed: 6,
        }
    }

    /// A scaled-down configuration for tests and smoke runs.
    pub fn fast() -> Self {
        Fig6Config {
            dataset: DatasetKind::Custom(bcc_datasets::SynthConfig::small(1)),
            sizes: vec![15, 30],
            subsets_per_size: 2,
            rounds_per_subset: 1,
            queries_per_round: 30,
            k_frac: (0.05, 0.30),
            b_range: (10.0, 60.0),
            n_cut: 5,
            class_count: 6,
            seed: 8,
        }
    }
}

/// Result: hop statistics per system size.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// System sizes.
    pub sizes: Vec<usize>,
    /// Mean routing hops per size (all queries).
    pub mean_hops: Vec<Option<f64>>,
    /// Mean routing hops per size over *found* queries only.
    pub mean_hops_found: Vec<Option<f64>>,
    /// Return rate per size.
    pub rr: Vec<Option<f64>>,
    /// Mean gossip bytes per host to converge one framework — the
    /// construction-cost side of scalability.
    pub gossip_bytes_per_host: Vec<Option<f64>>,
}

/// Runs the experiment, the flattened (size, subset) grid parallelized on
/// the `bcc-par` pool and merged in task order (deterministic for any
/// thread count).
pub fn run_fig6(cfg: &Fig6Config) -> Fig6Result {
    assert!(!cfg.sizes.is_empty(), "need at least one size");
    let t = transform();

    type Slot = (
        MeanAccumulator,
        MeanAccumulator,
        RrAccumulator,
        MeanAccumulator,
    );

    let n_tasks = cfg.sizes.len() * cfg.subsets_per_size;
    let locals = bcc_par::par_map(n_tasks, |task| {
        let (si, subset_idx) = (task / cfg.subsets_per_size, task % cfg.subsets_per_size);
        let n = cfg.sizes[si];
        let subset_seed = cfg
            .seed
            .wrapping_add(si as u64 * 0x1234_5678)
            .wrapping_add(subset_idx as u64 * 0x9E37_79B9);
        let mut rng = StdRng::seed_from_u64(subset_seed);
        let full = cfg.dataset.generate(subset_seed);
        assert!(n <= full.len(), "subset larger than dataset");
        let bw = random_subset(&full, n, &mut rng);

        let mut local: Slot = Default::default();
        for round in 0..cfg.rounds_per_subset {
            let classes =
                BandwidthClasses::linspace(cfg.b_range.0, cfg.b_range.1, cfg.class_count, t);
            let system = build_tree_system(
                bw.clone(),
                cfg.n_cut,
                classes,
                subset_seed ^ (round as u64 + 1),
            );
            local
                .3
                .record(system.network().traffic().bytes as f64 / n as f64);
            for _ in 0..cfg.queries_per_round {
                let k_lo = ((cfg.k_frac.0 * n as f64).round() as usize).max(2);
                let k_hi = ((cfg.k_frac.1 * n as f64).round() as usize).max(k_lo);
                let k = rng.gen_range(k_lo..=k_hi);
                let b = rng.gen_range(cfg.b_range.0..=cfg.b_range.1);
                let start = NodeId::new(rng.gen_range(0..n));
                let out = system.query(start, k, b).expect("valid query");
                local.0.record(out.hops as f64);
                if out.found() {
                    local.1.record(out.hops as f64);
                }
                local.2.record(out.found());
            }
        }
        local
    });

    let mut m: Vec<Slot> = vec![Default::default(); cfg.sizes.len()];
    for (task, local) in locals.into_iter().enumerate() {
        let si = task / cfg.subsets_per_size;
        m[si].0.merge(local.0);
        m[si].1.merge(local.1);
        m[si].2.merge(local.2);
        m[si].3.merge(local.3);
    }
    Fig6Result {
        sizes: cfg.sizes.clone(),
        mean_hops: m.iter().map(|s| s.0.mean()).collect(),
        mean_hops_found: m.iter().map(|s| s.1.mean()).collect(),
        rr: m.iter().map(|s| s.2.rate()).collect(),
        gossip_bytes_per_host: m.iter().map(|s| s.3.mean()).collect(),
    }
}

impl Fig6Result {
    /// Renders the paper panel (mean hops vs `n`).
    pub fn table(&self) -> Table {
        Table::new(
            "Fig. 6 — mean query routing hops vs system size",
            "n (nodes)",
            self.sizes.iter().map(|&n| n as f64).collect(),
            vec![
                Series::new("HOPS-ALL", self.mean_hops.clone()),
                Series::new("HOPS-FOUND", self.mean_hops_found.clone()),
                Series::new("RR", self.rr.clone()),
                Series::new("GOSSIP-B/HOST", self.gossip_bytes_per_host.clone()),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports_small_hop_counts() {
        let r = run_fig6(&Fig6Config::fast());
        assert_eq!(r.sizes, vec![15, 30]);
        for h in r.mean_hops.iter().flatten() {
            assert!((0.0..=10.0).contains(h), "hops {h} out of plausible range");
        }
        // Some queries must have been answered.
        assert!(r.rr.iter().flatten().any(|&rr| rr > 0.0));
    }

    #[test]
    fn table_renders() {
        let r = run_fig6(&Fig6Config::fast());
        let s = r.table().render();
        assert!(s.contains("HOPS-ALL"));
    }

    #[test]
    fn deterministic() {
        let a = run_fig6(&Fig6Config::fast());
        let b = run_fig6(&Fig6Config::fast());
        assert_eq!(a.mean_hops, b.mean_hops);
    }
}
