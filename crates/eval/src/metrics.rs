//! Evaluation metrics: WPR, RR, and bucketed curves.

use serde::{Deserialize, Serialize};

/// Wrong-Pair-Rate accumulator.
///
/// WPR is the ratio of node pairs inside returned clusters whose *real*
/// bandwidth violates the query constraint, over all pairs in all returned
/// clusters (Sec. IV-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WprAccumulator {
    wrong: u64,
    total: u64,
}

impl WprAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WprAccumulator::default()
    }

    /// Records one returned cluster's score (`wrong` of `total` pairs bad).
    pub fn record(&mut self, wrong: usize, total: usize) {
        debug_assert!(wrong <= total);
        self.wrong += wrong as u64;
        self.total += total as u64;
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: WprAccumulator) {
        self.wrong += other.wrong;
        self.total += other.total;
    }

    /// The wrong-pair rate, or `None` before any cluster was recorded.
    pub fn rate(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.wrong as f64 / self.total as f64)
        }
    }

    /// Number of pairs scored.
    pub fn pairs(&self) -> u64 {
        self.total
    }
}

/// Return-Rate accumulator: the fraction of queries that found a cluster
/// (Sec. IV-B).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrAccumulator {
    found: u64,
    queries: u64,
}

impl RrAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RrAccumulator::default()
    }

    /// Records one query outcome.
    pub fn record(&mut self, found: bool) {
        self.queries += 1;
        if found {
            self.found += 1;
        }
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: RrAccumulator) {
        self.found += other.found;
        self.queries += other.queries;
    }

    /// The return rate, or `None` before any query was recorded.
    pub fn rate(&self) -> Option<f64> {
        if self.queries == 0 {
            None
        } else {
            Some(self.found as f64 / self.queries as f64)
        }
    }

    /// Number of queries recorded.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Number of queries that found a cluster.
    pub fn found(&self) -> u64 {
        self.found
    }
}

/// Fixed-width bucketing of a continuous x-axis (query constraint `b`,
/// `f_b`, …) with one accumulator per bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Buckets<A> {
    lo: f64,
    hi: f64,
    slots: Vec<A>,
}

impl<A: Default + Clone> Buckets<A> {
    /// Creates `count` buckets covering `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or the range is empty/invalid.
    pub fn new(lo: f64, hi: f64, count: usize) -> Self {
        assert!(count > 0, "need at least one bucket");
        assert!(
            hi > lo && lo.is_finite() && hi.is_finite(),
            "invalid bucket range"
        );
        Buckets {
            lo,
            hi,
            slots: vec![A::default(); count],
        }
    }

    /// The accumulator for value `x` (clamped into range).
    pub fn slot_mut(&mut self, x: f64) -> &mut A {
        let idx = self.index(x);
        &mut self.slots[idx]
    }

    /// Bucket index for `x`, clamped.
    pub fn index(&self, x: f64) -> usize {
        let n = self.slots.len();
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        ((t * n as f64) as usize).min(n - 1)
    }

    /// Center x-value of bucket `i`.
    pub fn center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.slots.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Iterates `(center, accumulator)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &A)> {
        self.slots
            .iter()
            .enumerate()
            .map(move |(i, a)| (self.center(i), a))
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Merges another bucket set slot-wise with `combine`.
    ///
    /// # Panics
    ///
    /// Panics if the two bucket sets differ in range or count.
    pub fn merge_with(&mut self, other: Buckets<A>, mut combine: impl FnMut(&mut A, A)) {
        assert_eq!(self.lo, other.lo, "bucket ranges differ");
        assert_eq!(self.hi, other.hi, "bucket ranges differ");
        assert_eq!(self.slots.len(), other.slots.len(), "bucket counts differ");
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots) {
            combine(mine, theirs);
        }
    }

    /// Always `false`; construction guarantees at least one bucket.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Mean accumulator for per-bucket averages (hop counts, normalized WPR…).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanAccumulator {
    sum: f64,
    count: u64,
}

impl MeanAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        MeanAccumulator::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: MeanAccumulator) {
        self.sum += other.sum;
        self.count += other.count;
    }

    /// The mean, or `None` with no samples.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wpr_basic() {
        let mut w = WprAccumulator::new();
        assert_eq!(w.rate(), None);
        w.record(1, 4);
        w.record(0, 6);
        assert_eq!(w.rate(), Some(0.1));
        assert_eq!(w.pairs(), 10);
    }

    #[test]
    fn wpr_merge() {
        let mut a = WprAccumulator::new();
        a.record(2, 5);
        let mut b = WprAccumulator::new();
        b.record(3, 5);
        a.merge(b);
        assert_eq!(a.rate(), Some(0.5));
    }

    #[test]
    fn rr_basic() {
        let mut r = RrAccumulator::new();
        assert_eq!(r.rate(), None);
        r.record(true);
        r.record(false);
        r.record(true);
        r.record(true);
        assert_eq!(r.rate(), Some(0.75));
        assert_eq!(r.queries(), 4);
    }

    #[test]
    fn rr_merge() {
        let mut a = RrAccumulator::new();
        a.record(true);
        let mut b = RrAccumulator::new();
        b.record(false);
        a.merge(b);
        assert_eq!(a.rate(), Some(0.5));
    }

    #[test]
    fn buckets_indexing() {
        let b: Buckets<MeanAccumulator> = Buckets::new(0.0, 10.0, 5);
        assert_eq!(b.index(-3.0), 0);
        assert_eq!(b.index(0.0), 0);
        assert_eq!(b.index(1.9), 0);
        assert_eq!(b.index(2.0), 1);
        assert_eq!(b.index(9.99), 4);
        assert_eq!(b.index(10.0), 4);
        assert_eq!(b.index(42.0), 4);
        assert_eq!(b.center(0), 1.0);
        assert_eq!(b.center(4), 9.0);
    }

    #[test]
    fn buckets_accumulate() {
        let mut b: Buckets<RrAccumulator> = Buckets::new(0.0, 1.0, 2);
        b.slot_mut(0.2).record(true);
        b.slot_mut(0.2).record(false);
        b.slot_mut(0.9).record(true);
        let rows: Vec<_> = b.iter().map(|(c, a)| (c, a.rate())).collect();
        assert_eq!(rows[0], (0.25, Some(0.5)));
        assert_eq!(rows[1], (0.75, Some(1.0)));
    }

    #[test]
    #[should_panic(expected = "invalid bucket range")]
    fn bad_range_rejected() {
        let _: Buckets<MeanAccumulator> = Buckets::new(1.0, 1.0, 3);
    }

    #[test]
    fn mean_accumulator() {
        let mut m = MeanAccumulator::new();
        assert_eq!(m.mean(), None);
        m.record(2.0);
        m.record(4.0);
        assert_eq!(m.mean(), Some(3.0));
        let mut other = MeanAccumulator::new();
        other.record(9.0);
        m.merge(other);
        assert_eq!(m.mean(), Some(5.0));
        assert_eq!(m.count(), 3);
    }
}
