//! Plain-text rendering of experiment results.
//!
//! Each figure binary prints one [`Table`] per paper panel: a header, the
//! x-axis, and one column per series — the same rows/series the paper
//! plots, ready for a plotting tool or eyeball comparison.

use std::fmt::Write as _;

/// One plotted series: a label and `(x, y)` points (`None` y values render
/// as `-`, e.g. empty buckets).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `HP-TREE-DECENTRAL`).
    pub label: String,
    /// The series' y value at each shared x position.
    pub values: Vec<Option<f64>>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        Series {
            label: label.into(),
            values,
        }
    }
}

/// A printable result table with a shared x-axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (e.g. `Fig. 3a — WPR vs b (HP)`).
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// Shared x positions.
    pub xs: Vec<f64>,
    /// One column per series.
    pub series: Vec<Series>,
}

impl Table {
    /// Creates a table.
    ///
    /// # Panics
    ///
    /// Panics if any series length differs from `xs.len()`.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        xs: Vec<f64>,
        series: Vec<Series>,
    ) -> Self {
        let t = Table {
            title: title.into(),
            x_label: x_label.into(),
            xs,
            series,
        };
        for s in &t.series {
            assert_eq!(
                s.values.len(),
                t.xs.len(),
                "series '{}' length mismatch",
                s.label
            );
        }
        t
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let width = 10usize.max(self.series.iter().map(|s| s.label.len()).max().unwrap_or(0) + 2);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>width$}", s.label, width = width);
        }
        let _ = writeln!(out);
        for (i, &x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x:>12.4}");
            for s in &self.series {
                match s.values[i] {
                    Some(v) => {
                        let _ = write!(out, "{v:>width$.4}", width = width);
                    }
                    None => {
                        let _ = write!(out, "{:>width$}", "-", width = width);
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

const CHART_GLYPHS: &[char] = &['o', 'x', '+', '*', '#', '@', '%', '&'];

impl Table {
    /// Renders the table as a rough ASCII chart (`height` rows tall,
    /// one glyph per series) with a legend — a quick visual check of curve
    /// shape without leaving the terminal.
    ///
    /// Returns an empty string when there is nothing to plot (no points or
    /// no finite values).
    pub fn render_chart(&self, height: usize) -> String {
        let height = height.max(2);
        let width = (self.xs.len().max(2) * 6).min(72);
        let finite: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().flatten().copied())
            .filter(|v| v.is_finite())
            .collect();
        if self.xs.is_empty() || finite.is_empty() {
            return String::new();
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = if (hi - lo).abs() < 1e-12 {
            1.0
        } else {
            hi - lo
        };

        let mut grid = vec![vec![' '; width]; height];
        let x_lo = self.xs.first().copied().unwrap_or(0.0);
        let x_hi = self.xs.last().copied().unwrap_or(1.0);
        let x_span = if (x_hi - x_lo).abs() < 1e-12 {
            1.0
        } else {
            x_hi - x_lo
        };
        for (si, s) in self.series.iter().enumerate() {
            let glyph = CHART_GLYPHS[si % CHART_GLYPHS.len()];
            for (&x, v) in self.xs.iter().zip(&s.values) {
                let Some(y) = v else { continue };
                if !y.is_finite() {
                    continue;
                }
                let col = (((x - x_lo) / x_span) * (width - 1) as f64).round() as usize;
                let row_f = ((y - lo) / span) * (height - 1) as f64;
                let row = height - 1 - row_f.round() as usize;
                grid[row][col.min(width - 1)] = glyph;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{} [chart]", self.title);
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                format!("{hi:>10.3}")
            } else if r == height - 1 {
                format!("{lo:>10.3}")
            } else {
                " ".repeat(10)
            };
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{label} |{line}");
        }
        let _ = writeln!(
            out,
            "{:>10}  {x_lo:<10.3}{:>width$.3}",
            "",
            x_hi,
            width = width - 10
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>12} {}",
                CHART_GLYPHS[si % CHART_GLYPHS.len()],
                s.label
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = Table::new(
            "Fig X",
            "b",
            vec![10.0, 20.0],
            vec![
                Series::new("TREE", vec![Some(0.1), Some(0.2)]),
                Series::new("EUCL", vec![Some(0.3), None]),
            ],
        );
        let s = t.render();
        assert!(s.contains("## Fig X"));
        assert!(s.contains("TREE"));
        assert!(s.contains("0.3000"));
        assert!(s.lines().last().unwrap().trim_end().ends_with('-'));
        // Every data row has the same number of fields.
        let rows: Vec<&str> = s.lines().skip(1).collect();
        let field_counts: Vec<usize> = rows.iter().map(|r| r.split_whitespace().count()).collect();
        assert!(
            field_counts.windows(2).all(|w| w[0] == w[1]),
            "{field_counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        Table::new("t", "x", vec![1.0], vec![Series::new("s", vec![])]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("empty", "x", vec![], vec![]);
        let s = t.render();
        assert!(s.starts_with("## empty"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn chart_renders_glyphs_and_legend() {
        let t = Table::new(
            "curve",
            "x",
            vec![0.0, 1.0, 2.0, 3.0],
            vec![
                Series::new("A", vec![Some(0.0), Some(1.0), Some(2.0), Some(3.0)]),
                Series::new("B", vec![Some(3.0), Some(2.0), None, Some(0.5)]),
            ],
        );
        let s = t.render_chart(8);
        assert!(s.contains("curve [chart]"));
        assert!(s.contains('o'), "first series glyph present");
        assert!(s.contains('x'), "second series glyph present");
        assert!(s.contains("A") && s.contains("B"), "legend present");
        // Max and min y labels appear.
        assert!(s.contains("3.000"));
        assert!(s.contains("0.000"));
    }

    #[test]
    fn chart_handles_degenerate_inputs() {
        let empty = Table::new("e", "x", vec![], vec![]);
        assert_eq!(empty.render_chart(5), "");
        let all_none = Table::new("n", "x", vec![1.0], vec![Series::new("s", vec![None])]);
        assert_eq!(all_none.render_chart(5), "");
        // Flat series (zero span) must not divide by zero.
        let flat = Table::new(
            "f",
            "x",
            vec![0.0, 1.0],
            vec![Series::new("s", vec![Some(2.0), Some(2.0)])],
        );
        assert!(flat.render_chart(4).contains("[chart]"));
        // Single x position.
        let single = Table::new("1", "x", vec![5.0], vec![Series::new("s", vec![Some(1.0)])]);
        assert!(single.render_chart(3).contains("[chart]"));
    }
}
