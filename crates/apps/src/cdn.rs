//! CDN replication planning on bandwidth-constrained clusters.
//!
//! The paper's second motivating application: to distribute a large object
//! to all subscribers quickly, partition them into high-bandwidth clusters,
//! push the object over the wide area to one *representative* per cluster,
//! and let each cluster redistribute internally. The representative is
//! chosen with the hub-search extension (the member with the best worst-case
//! bandwidth to its peers).
//!
//! [`plan`] produces the partition; [`DistributionPlan::estimate`] compares
//! the two-stage distribution time against naive unicast to every
//! subscriber.

use bcc_metric::{BandwidthMatrix, NodeId};
use bcc_simnet::SystemConfig;
use serde::{Deserialize, Serialize};

/// One planned cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedCluster {
    /// All members (including the representative).
    pub members: Vec<NodeId>,
    /// The member that receives the object over the wide area.
    pub representative: NodeId,
    /// Ground-truth minimum pairwise bandwidth inside the cluster (Mbps).
    pub internal_min_bandwidth: f64,
    /// Ground-truth minimum bandwidth from the representative to the other
    /// members.
    pub representative_min_bandwidth: f64,
}

/// The complete replication plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionPlan {
    /// Clusters, in discovery order.
    pub clusters: Vec<PlannedCluster>,
    /// Hosts that fit no cluster and are served directly.
    pub singletons: Vec<NodeId>,
}

/// Parameters of the planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanConfig {
    /// Members per cluster.
    pub cluster_size: usize,
    /// Required intra-cluster bandwidth (Mbps).
    pub min_bandwidth: f64,
}

/// Greedily partitions the subscribers: repeatedly query for a cluster,
/// select its hub as representative, remove the members, and continue
/// until no further cluster exists.
///
/// # Panics
///
/// Panics if `config.cluster_size < 2` or the bandwidth matrix is empty.
pub fn plan(
    bandwidth: &BandwidthMatrix,
    system_config: SystemConfig,
    config: PlanConfig,
) -> DistributionPlan {
    assert!(
        config.cluster_size >= 2,
        "clusters need at least two members"
    );
    assert!(!bandwidth.is_empty(), "no subscribers to plan for");

    let n = bandwidth.len();
    let mut system = bcc_simnet::DynamicSystem::new(bandwidth.clone(), system_config);
    for i in 0..n {
        system.join(NodeId::new(i)).expect("fresh host");
    }

    let mut clusters = Vec::new();
    loop {
        let Some(start) = system.active().next() else {
            break;
        };
        let Ok(outcome) = system.query(start, config.cluster_size, config.min_bandwidth) else {
            break;
        };
        let Some(members) = outcome.cluster else {
            break;
        };

        // Representative: the member with the best worst-case real
        // bandwidth to the rest (a hub restricted to the cluster).
        let representative = members
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let ra = rep_min_bw(bandwidth, a, &members);
                let rb = rep_min_bw(bandwidth, b, &members);
                ra.partial_cmp(&rb).expect("finite").then(b.cmp(&a))
            })
            .expect("non-empty cluster");

        let internal = cluster_min_bw(bandwidth, &members);
        let rep_min = rep_min_bw(bandwidth, representative, &members);
        for &m in &members {
            system.leave(m).expect("member active");
        }
        clusters.push(PlannedCluster {
            members,
            representative,
            internal_min_bandwidth: internal,
            representative_min_bandwidth: rep_min,
        });
    }
    let singletons: Vec<NodeId> = system.active().collect();
    DistributionPlan {
        clusters,
        singletons,
    }
}

fn cluster_min_bw(bw: &BandwidthMatrix, members: &[NodeId]) -> f64 {
    let mut worst = f64::INFINITY;
    for (i, &u) in members.iter().enumerate() {
        for &v in &members[i + 1..] {
            worst = worst.min(bw.get(u.index(), v.index()));
        }
    }
    worst
}

fn rep_min_bw(bw: &BandwidthMatrix, rep: NodeId, members: &[NodeId]) -> f64 {
    members
        .iter()
        .filter(|&&m| m != rep)
        .map(|&m| bw.get(rep.index(), m.index()))
        .fold(f64::INFINITY, f64::min)
}

/// Estimated distribution times (seconds) for an object of `gb` gigabytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionEstimate {
    /// Two-stage plan: origin → representatives (at `origin_mbps` each,
    /// sequentially), then parallel intra-cluster redistribution.
    pub planned_seconds: f64,
    /// Naive: origin unicasts to every subscriber sequentially.
    pub naive_seconds: f64,
}

impl DistributionPlan {
    /// Total subscribers covered by clusters.
    pub fn clustered_hosts(&self) -> usize {
        self.clusters.iter().map(|c| c.members.len()).sum()
    }

    /// Wide-area sends the plan needs (representatives + singletons).
    pub fn wide_area_sends(&self) -> usize {
        self.clusters.len() + self.singletons.len()
    }

    /// Compares the plan against naive unicast for an object of `gb`
    /// gigabytes with `origin_mbps` of origin uplink per send.
    pub fn estimate(&self, gb: f64, origin_mbps: f64) -> DistributionEstimate {
        let per_send = gb * 8.0 * 1000.0 / origin_mbps;
        let origin_phase = per_send * self.wide_area_sends() as f64;
        // Intra-cluster phase: clusters redistribute in parallel; each is
        // bounded by its representative's worst link.
        let redistribution = self
            .clusters
            .iter()
            .map(|c| gb * 8.0 * 1000.0 / c.representative_min_bandwidth)
            .fold(0.0f64, f64::max);
        let total_subscribers = self.clustered_hosts() + self.singletons.len();
        DistributionEstimate {
            planned_seconds: origin_phase + redistribution,
            naive_seconds: per_send * total_subscribers as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_core::BandwidthClasses;
    use bcc_datasets::{generate, SynthConfig};
    use bcc_metric::RationalTransform;

    fn system_config() -> SystemConfig {
        let classes = BandwidthClasses::linspace(10.0, 100.0, 10, RationalTransform::default());
        SystemConfig::new(classes)
    }

    fn dataset(nodes: usize, seed: u64) -> BandwidthMatrix {
        let mut cfg = SynthConfig::small(seed);
        cfg.nodes = nodes;
        generate(&cfg)
    }

    #[test]
    fn plan_partitions_without_overlap() {
        let bw = dataset(36, 1);
        let p = plan(
            &bw,
            system_config(),
            PlanConfig {
                cluster_size: 5,
                min_bandwidth: 40.0,
            },
        );
        let mut seen: Vec<NodeId> = p.singletons.clone();
        for c in &p.clusters {
            assert_eq!(c.members.len(), 5);
            assert!(c.members.contains(&c.representative));
            seen.extend(c.members.iter().copied());
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 36, "every subscriber exactly once");
        assert!(!p.clusters.is_empty(), "the synthetic net has fast sites");
    }

    #[test]
    fn representative_is_best_hub_of_its_cluster() {
        let bw = dataset(30, 2);
        let p = plan(
            &bw,
            system_config(),
            PlanConfig {
                cluster_size: 4,
                min_bandwidth: 35.0,
            },
        );
        for c in &p.clusters {
            for &m in &c.members {
                assert!(
                    rep_min_bw(&bw, c.representative, &c.members)
                        >= rep_min_bw(&bw, m, &c.members) - 1e-9,
                    "representative must maximize the worst link"
                );
            }
            assert!(c.representative_min_bandwidth >= c.internal_min_bandwidth - 1e-9);
        }
    }

    #[test]
    fn plan_beats_naive_distribution() {
        let bw = dataset(40, 3);
        let p = plan(
            &bw,
            system_config(),
            PlanConfig {
                cluster_size: 5,
                min_bandwidth: 35.0,
            },
        );
        let est = p.estimate(2.0, 50.0);
        assert!(
            est.planned_seconds < est.naive_seconds,
            "plan {:.0}s vs naive {:.0}s",
            est.planned_seconds,
            est.naive_seconds
        );
        assert!(p.wide_area_sends() < 40);
    }

    #[test]
    fn tight_constraint_yields_more_singletons() {
        let bw = dataset(30, 4);
        let loose = plan(
            &bw,
            system_config(),
            PlanConfig {
                cluster_size: 4,
                min_bandwidth: 20.0,
            },
        );
        let tight = plan(
            &bw,
            system_config(),
            PlanConfig {
                cluster_size: 4,
                min_bandwidth: 90.0,
            },
        );
        assert!(tight.singletons.len() >= loose.singletons.len());
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn tiny_cluster_size_rejected() {
        let bw = dataset(6, 5);
        plan(
            &bw,
            system_config(),
            PlanConfig {
                cluster_size: 1,
                min_bandwidth: 10.0,
            },
        );
    }
}
