//! Application layers built on bandwidth-constrained clustering — the two
//! workloads the paper's introduction motivates, implemented end-to-end:
//!
//! - [`grid`] — P2P desktop-grid scheduling: jobs claim bandwidth-
//!   constrained clusters, busy hosts leave the overlay (the churn
//!   machinery doubles as the allocator), and transfer-bound completion
//!   times quantify the win over random placement.
//! - [`cdn`] — CDN replication planning: subscribers are partitioned into
//!   high-bandwidth clusters with hub-chosen representatives, cutting
//!   wide-area sends and total distribution time.
//!
//! Both modules use only the public API of the lower crates — they double
//! as large integration examples of how a downstream system composes the
//! library.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cdn;
pub mod grid;

pub use cdn::{plan, DistributionEstimate, DistributionPlan, PlanConfig, PlannedCluster};
pub use grid::{
    run_workload, transfer_seconds, GridScheduler, Job, JobId, Placement, PlacementError,
    PlacementPolicy, WorkloadReport,
};
