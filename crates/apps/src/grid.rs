//! P2P desktop-grid scheduling on bandwidth-constrained clusters.
//!
//! The paper's first motivating application: a data-intensive job set
//! (CyberShake-style — every task exchanges bulk data with every other
//! task) finishes sooner when its tasks land on hosts with high pairwise
//! bandwidth. [`GridScheduler`] maintains a live [`DynamicSystem`], places
//! each job on a cluster found by the decentralized query, *removes* the
//! allocated hosts from the overlay while they are busy (the paper's churn
//! machinery doing double duty as an allocator), and re-admits them on
//! completion.
//!
//! Transfer-time model: a job exchanging `pairwise_gb` gigabytes between
//! every task pair is bottlenecked by the slowest pair in its placement;
//! see [`transfer_seconds`].

use std::collections::BTreeMap;

use bcc_embed::EmbedError;
use bcc_metric::{BandwidthMatrix, NodeId};
use bcc_simnet::{ChurnError, DynamicSystem, SystemConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// A data-intensive job set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Number of tasks (one host each).
    pub tasks: usize,
    /// Gigabytes exchanged between every task pair.
    pub pairwise_gb: f64,
    /// Minimum pairwise bandwidth requested for the placement (Mbps).
    pub min_bandwidth: f64,
}

impl Job {
    /// Validates the job shape.
    ///
    /// # Panics
    ///
    /// Panics if `tasks < 2` or the data/bandwidth figures are not positive
    /// and finite.
    pub fn new(tasks: usize, pairwise_gb: f64, min_bandwidth: f64) -> Self {
        assert!(tasks >= 2, "a job set needs at least two tasks");
        assert!(
            pairwise_gb > 0.0 && pairwise_gb.is_finite(),
            "invalid data volume"
        );
        assert!(
            min_bandwidth > 0.0 && min_bandwidth.is_finite(),
            "invalid bandwidth"
        );
        Job {
            tasks,
            pairwise_gb,
            min_bandwidth,
        }
    }
}

/// How the scheduler chooses hosts for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Bandwidth-constrained cluster via the decentralized query (the
    /// paper's proposal).
    #[default]
    ClusterAware,
    /// Uniformly random free hosts (the strawman baseline).
    Random,
}

/// A successful placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The job.
    pub job: JobId,
    /// Hosts allocated to the job's tasks.
    pub hosts: Vec<NodeId>,
    /// Predicted all-pairs transfer time under the model (seconds).
    pub predicted_seconds: f64,
    /// Ground-truth transfer time (seconds) — what the job will really
    /// experience.
    pub actual_seconds: f64,
}

/// Why a job could not be placed right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// Fewer free hosts than tasks.
    NotEnoughFreeHosts {
        /// Hosts currently free.
        free: usize,
        /// Tasks requested.
        needed: usize,
    },
    /// No free cluster satisfies the bandwidth constraint.
    NoSatisfyingCluster,
    /// The job id was not found (for [`GridScheduler::complete`]).
    UnknownJob(JobId),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NotEnoughFreeHosts { free, needed } => {
                write!(f, "only {free} free hosts for a {needed}-task job")
            }
            PlacementError::NoSatisfyingCluster => {
                write!(f, "no free cluster satisfies the bandwidth constraint")
            }
            PlacementError::UnknownJob(id) => write!(f, "unknown job {id:?}"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// All-pairs transfer time of a placement (seconds): total per-pair data
/// over the slowest pair's bandwidth, the standard bulk-synchronous bound.
pub fn transfer_seconds(gb_per_pair: f64, slowest_mbps: f64) -> f64 {
    gb_per_pair * 8.0 * 1000.0 / slowest_mbps
}

/// A live grid: hosts join, jobs come and go.
#[derive(Debug)]
pub struct GridScheduler {
    system: DynamicSystem,
    running: BTreeMap<JobId, Vec<NodeId>>,
    next_id: u64,
    rng: StdRng,
}

impl GridScheduler {
    /// Brings up a grid over the full host universe.
    pub fn new(bandwidth: BandwidthMatrix, config: SystemConfig, seed: u64) -> Self {
        let n = bandwidth.len();
        let mut system = DynamicSystem::new(bandwidth, config);
        for i in 0..n {
            system.join(NodeId::new(i)).expect("fresh host");
        }
        GridScheduler {
            system,
            running: BTreeMap::new(),
            next_id: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Hosts not currently allocated to a job.
    pub fn free_hosts(&self) -> usize {
        self.system.len()
    }

    /// Jobs currently running.
    pub fn running_jobs(&self) -> usize {
        self.running.len()
    }

    /// Places a job under `policy`, allocating its hosts (they leave the
    /// overlay until [`GridScheduler::complete`]).
    ///
    /// # Errors
    ///
    /// [`PlacementError::NotEnoughFreeHosts`] or
    /// [`PlacementError::NoSatisfyingCluster`]; the grid state is unchanged
    /// on error.
    pub fn submit(
        &mut self,
        job: Job,
        policy: PlacementPolicy,
    ) -> Result<Placement, PlacementError> {
        let free = self.system.len();
        if free < job.tasks {
            return Err(PlacementError::NotEnoughFreeHosts {
                free,
                needed: job.tasks,
            });
        }
        let hosts: Vec<NodeId> = match policy {
            PlacementPolicy::ClusterAware => {
                let start = self.system.active().next().expect("non-empty");
                let outcome = self
                    .system
                    .query(start, job.tasks, job.min_bandwidth)
                    .map_err(|_| PlacementError::NoSatisfyingCluster)?;
                outcome.cluster.ok_or(PlacementError::NoSatisfyingCluster)?
            }
            PlacementPolicy::Random => {
                let mut pool: Vec<NodeId> = self.system.active().collect();
                pool.shuffle(&mut self.rng);
                pool.truncate(job.tasks);
                pool
            }
        };

        // Allocate: hosts leave the overlay while busy.
        for &h in &hosts {
            self.system.leave(h).expect("host was active");
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.running.insert(id, hosts.clone());

        let slowest_real = pair_min(&hosts, |u, v| self.system.real_bandwidth(u, v));
        // Prediction uses the framework the hosts just left; the real
        // bandwidth matrix is the ground truth either way.
        Ok(Placement {
            job: id,
            hosts,
            predicted_seconds: transfer_seconds(job.pairwise_gb, job.min_bandwidth),
            actual_seconds: transfer_seconds(job.pairwise_gb, slowest_real),
        })
    }

    /// Marks a job finished; its hosts rejoin the overlay.
    ///
    /// # Errors
    ///
    /// [`PlacementError::UnknownJob`] if the id is not running.
    pub fn complete(&mut self, id: JobId) -> Result<(), PlacementError> {
        let hosts = self
            .running
            .remove(&id)
            .ok_or(PlacementError::UnknownJob(id))?;
        for h in hosts {
            match self.system.join(h) {
                Ok(()) | Err(ChurnError::Embed(EmbedError::HostExists(_))) => {}
                Err(e) => panic!("rejoin of {h} failed: {e}"),
            }
        }
        Ok(())
    }
}

fn pair_min(hosts: &[NodeId], mut bw: impl FnMut(NodeId, NodeId) -> f64) -> f64 {
    let mut worst = f64::INFINITY;
    for (i, &u) in hosts.iter().enumerate() {
        for &v in &hosts[i + 1..] {
            worst = worst.min(bw(u, v));
        }
    }
    worst
}

/// Outcome of a whole workload run (see [`run_workload`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Jobs successfully placed.
    pub placed: usize,
    /// Jobs that found no satisfying placement.
    pub rejected: usize,
    /// Sum of actual transfer seconds over placed jobs.
    pub total_transfer_seconds: f64,
    /// Worst single-job transfer time.
    pub worst_job_seconds: f64,
}

/// Runs a sequence of jobs through a fresh grid: each job is placed, its
/// transfer time recorded, and completed immediately (steady-state
/// utilization studies would interleave; this measures placement quality).
pub fn run_workload(
    bandwidth: BandwidthMatrix,
    config: SystemConfig,
    jobs: &[Job],
    policy: PlacementPolicy,
    seed: u64,
) -> WorkloadReport {
    let mut grid = GridScheduler::new(bandwidth, config, seed);
    let mut report = WorkloadReport {
        placed: 0,
        rejected: 0,
        total_transfer_seconds: 0.0,
        worst_job_seconds: 0.0,
    };
    for &job in jobs {
        match grid.submit(job, policy) {
            Ok(p) => {
                report.placed += 1;
                report.total_transfer_seconds += p.actual_seconds;
                report.worst_job_seconds = report.worst_job_seconds.max(p.actual_seconds);
                grid.complete(p.job).expect("just placed");
            }
            Err(_) => report.rejected += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_core::BandwidthClasses;
    use bcc_datasets::{generate, SynthConfig};
    use bcc_metric::RationalTransform;

    fn config() -> SystemConfig {
        let classes = BandwidthClasses::linspace(10.0, 100.0, 10, RationalTransform::default());
        SystemConfig::new(classes)
    }

    fn grid(seed: u64, nodes: usize) -> GridScheduler {
        let mut cfg = SynthConfig::small(seed);
        cfg.nodes = nodes;
        GridScheduler::new(generate(&cfg), config(), seed)
    }

    #[test]
    fn placement_allocates_and_completion_frees() {
        let mut g = grid(1, 24);
        assert_eq!(g.free_hosts(), 24);
        let p = g
            .submit(Job::new(4, 1.0, 40.0), PlacementPolicy::ClusterAware)
            .unwrap();
        assert_eq!(p.hosts.len(), 4);
        assert_eq!(g.free_hosts(), 20);
        assert_eq!(g.running_jobs(), 1);
        g.complete(p.job).unwrap();
        assert_eq!(g.free_hosts(), 24);
        assert_eq!(g.running_jobs(), 0);
    }

    #[test]
    fn concurrent_jobs_never_share_hosts() {
        let mut g = grid(2, 30);
        let a = g
            .submit(Job::new(4, 1.0, 30.0), PlacementPolicy::ClusterAware)
            .unwrap();
        let b = g
            .submit(Job::new(4, 1.0, 30.0), PlacementPolicy::ClusterAware)
            .unwrap();
        for h in &a.hosts {
            assert!(!b.hosts.contains(h), "host {h} double-allocated");
        }
        g.complete(a.job).unwrap();
        g.complete(b.job).unwrap();
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut g = grid(3, 12);
        let _a = g
            .submit(Job::new(6, 1.0, 15.0), PlacementPolicy::Random)
            .unwrap();
        let _b = g
            .submit(Job::new(5, 1.0, 15.0), PlacementPolicy::Random)
            .unwrap();
        let err = g.submit(Job::new(4, 1.0, 15.0), PlacementPolicy::Random);
        assert!(matches!(
            err,
            Err(PlacementError::NotEnoughFreeHosts { free: 1, needed: 4 })
        ));
    }

    #[test]
    fn impossible_constraint_rejected_without_leak() {
        let mut g = grid(4, 20);
        let before = g.free_hosts();
        let err = g.submit(Job::new(10, 1.0, 5000.0), PlacementPolicy::ClusterAware);
        assert!(matches!(
            err,
            Err(PlacementError::NoSatisfyingCluster)
                | Err(PlacementError::NotEnoughFreeHosts { .. })
        ));
        assert_eq!(
            g.free_hosts(),
            before,
            "failed placement must not leak hosts"
        );
    }

    #[test]
    fn unknown_job_completion_rejected() {
        let mut g = grid(5, 12);
        assert!(matches!(
            g.complete(JobId(99)),
            Err(PlacementError::UnknownJob(_))
        ));
    }

    #[test]
    fn cluster_aware_beats_random_on_transfer_time() {
        let mut cfg = SynthConfig::small(6);
        cfg.nodes = 40;
        let bw = generate(&cfg);
        let jobs: Vec<Job> = (0..12).map(|_| Job::new(5, 2.0, 40.0)).collect();
        let aware = run_workload(
            bw.clone(),
            config(),
            &jobs,
            PlacementPolicy::ClusterAware,
            7,
        );
        let random = run_workload(bw, config(), &jobs, PlacementPolicy::Random, 7);
        // Random always places (no constraint check), cluster-aware may
        // reject; compare mean transfer time over placed jobs.
        assert!(aware.placed > 0);
        let mean_aware = aware.total_transfer_seconds / aware.placed as f64;
        let mean_random = random.total_transfer_seconds / random.placed.max(1) as f64;
        assert!(
            mean_aware < mean_random,
            "cluster-aware {mean_aware:.0}s should beat random {mean_random:.0}s"
        );
    }

    #[test]
    fn transfer_model_sanity() {
        // 1 GB per pair at 80 Mbps: 8000/80 = 100 s.
        assert!((transfer_seconds(1.0, 80.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two tasks")]
    fn tiny_job_rejected() {
        Job::new(1, 1.0, 10.0);
    }
}
