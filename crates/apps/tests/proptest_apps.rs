//! Property tests for the application layers: allocation safety of the
//! grid scheduler and partition validity of the CDN planner under random
//! workloads.

use bcc_apps::{plan, GridScheduler, Job, PlacementPolicy, PlanConfig};
use bcc_core::BandwidthClasses;
use bcc_metric::{BandwidthMatrix, NodeId, RationalTransform};
use bcc_simnet::SystemConfig;
use proptest::prelude::*;

fn system_config() -> SystemConfig {
    let classes = BandwidthClasses::linspace(10.0, 120.0, 8, RationalTransform::default());
    SystemConfig::new(classes)
}

/// Random access-link universe.
fn arb_universe() -> impl Strategy<Value = BandwidthMatrix> {
    proptest::collection::vec(10.0f64..150.0, 10..24)
        .prop_map(|caps| BandwidthMatrix::from_fn(caps.len(), |i, j| caps[i].min(caps[j])))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn scheduler_never_double_allocates(
        bw in arb_universe(),
        ops in proptest::collection::vec((2usize..5, 10.0f64..80.0, any::<bool>()), 1..12),
    ) {
        let n = bw.len();
        let mut grid = GridScheduler::new(bw, system_config(), 3);
        let mut live: Vec<(bcc_apps::JobId, Vec<NodeId>)> = Vec::new();
        for (tasks, min_bw, complete_one) in ops {
            if complete_one {
                if let Some((id, _)) = live.pop() {
                    grid.complete(id).expect("running job completes");
                }
                continue;
            }
            let job = Job::new(tasks, 1.0, min_bw);
            if let Ok(p) = grid.submit(job, PlacementPolicy::ClusterAware) {
                // No host may appear in two live placements.
                for (_, hosts) in &live {
                    for h in &p.hosts {
                        prop_assert!(!hosts.contains(h), "host {h} double-allocated");
                    }
                }
                prop_assert_eq!(p.hosts.len(), tasks);
                live.push((p.job, p.hosts.clone()));
            }
            // Book-keeping is consistent.
            let allocated: usize = live.iter().map(|(_, h)| h.len()).sum();
            prop_assert_eq!(grid.free_hosts() + allocated, n);
        }
        // Drain everything; the grid returns to full capacity.
        for (id, _) in live {
            grid.complete(id).expect("drain");
        }
        prop_assert_eq!(grid.free_hosts(), n);
    }

    #[test]
    fn cdn_plan_is_a_partition(bw in arb_universe(), size in 2usize..5, b in 15.0f64..90.0) {
        let n = bw.len();
        let p = plan(&bw, system_config(), PlanConfig { cluster_size: size, min_bandwidth: b });
        let mut seen: Vec<NodeId> = p.singletons.clone();
        for c in &p.clusters {
            prop_assert_eq!(c.members.len(), size);
            prop_assert!(c.members.contains(&c.representative));
            seen.extend(c.members.iter().copied());
        }
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), n, "every subscriber exactly once");
        // The estimate is always an improvement or break-even in sends.
        prop_assert!(p.wide_area_sends() <= n);
    }
}
