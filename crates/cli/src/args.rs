//! Minimal flag parser for the `bcc` binary (no external dependencies).
//!
//! Grammar: `bcc <command> [positional…] [--flag value]…`. Flags may appear
//! in any order after the command; unknown flags are errors so typos fail
//! loudly.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    command: String,
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No command given.
    MissingCommand,
    /// A `--flag` had no value.
    MissingValue(String),
    /// A flag the command does not accept.
    UnknownFlag(String),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending text.
        value: String,
    },
    /// A required flag was absent.
    MissingFlag(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given (try `bcc help`)"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag --{flag}"),
            ArgError::BadValue { flag, value } => {
                write!(f, "could not parse --{flag} value '{value}'")
            }
            ArgError::MissingFlag(flag) => write!(f, "required flag --{flag} is missing"),
        }
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses raw arguments (without the program name) against a set of
    /// allowed flags.
    pub fn parse(raw: &[String], allowed_flags: &[&str]) -> Result<ParsedArgs, ArgError> {
        let mut it = raw.iter();
        let command = it.next().ok_or(ArgError::MissingCommand)?.clone();
        let mut positional = Vec::new();
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if !allowed_flags.contains(&name) {
                    return Err(ArgError::UnknownFlag(name.to_string()));
                }
                let value = it
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                flags.insert(name.to_string(), value.clone());
            } else {
                positional.push(tok.clone());
            }
        }
        Ok(ParsedArgs {
            command,
            positional,
            flags,
        })
    }

    /// The command word.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Positional arguments after the command.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A required, typed flag.
    pub fn require<T: std::str::FromStr>(&self, flag: &str) -> Result<T, ArgError> {
        let raw = self
            .flags
            .get(flag)
            .ok_or_else(|| ArgError::MissingFlag(flag.to_string()))?;
        raw.parse().map_err(|_| ArgError::BadValue {
            flag: flag.to_string(),
            value: raw.clone(),
        })
    }

    /// An optional, typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: raw.clone(),
            }),
        }
    }

    /// An optional string flag.
    pub fn get_str(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Parses a comma-separated list of `usize` (for `--targets 1,2,3`).
    pub fn get_usize_list(&self, flag: &str) -> Result<Option<Vec<usize>>, ArgError> {
        match self.flags.get(flag) {
            None => Ok(None),
            Some(raw) => raw
                .split(',')
                .map(|tok| {
                    tok.trim().parse::<usize>().map_err(|_| ArgError::BadValue {
                        flag: flag.to_string(),
                        value: raw.clone(),
                    })
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_positional_and_flags() {
        let p = ParsedArgs::parse(
            &v(&["query", "m.txt", "--k", "5", "--b", "40.5"]),
            &["k", "b"],
        )
        .unwrap();
        assert_eq!(p.command(), "query");
        assert_eq!(p.positional(), &["m.txt".to_string()]);
        assert_eq!(p.require::<usize>("k").unwrap(), 5);
        assert_eq!(p.require::<f64>("b").unwrap(), 40.5);
    }

    #[test]
    fn missing_command() {
        assert_eq!(ParsedArgs::parse(&[], &[]), Err(ArgError::MissingCommand));
    }

    #[test]
    fn unknown_flag_rejected() {
        let e = ParsedArgs::parse(&v(&["gen", "--nope", "1"]), &["nodes"]);
        assert_eq!(e, Err(ArgError::UnknownFlag("nope".into())));
    }

    #[test]
    fn missing_value_rejected() {
        let e = ParsedArgs::parse(&v(&["gen", "--nodes"]), &["nodes"]);
        assert_eq!(e, Err(ArgError::MissingValue("nodes".into())));
    }

    #[test]
    fn bad_value_reported() {
        let p = ParsedArgs::parse(&v(&["gen", "--nodes", "many"]), &["nodes"]).unwrap();
        assert!(matches!(
            p.require::<usize>("nodes"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn defaults_apply() {
        let p = ParsedArgs::parse(&v(&["gen"]), &["nodes"]).unwrap();
        assert_eq!(p.get_or::<usize>("nodes", 40).unwrap(), 40);
        assert!(matches!(
            p.require::<usize>("nodes"),
            Err(ArgError::MissingFlag(_))
        ));
    }

    #[test]
    fn usize_lists() {
        let p = ParsedArgs::parse(&v(&["hub", "--targets", "1, 2,3"]), &["targets"]).unwrap();
        assert_eq!(p.get_usize_list("targets").unwrap(), Some(vec![1, 2, 3]));
        let p = ParsedArgs::parse(&v(&["hub"]), &["targets"]).unwrap();
        assert_eq!(p.get_usize_list("targets").unwrap(), None);
        let p = ParsedArgs::parse(&v(&["hub", "--targets", "1,x"]), &["targets"]).unwrap();
        assert!(p.get_usize_list("targets").is_err());
    }

    #[test]
    fn errors_display() {
        assert!(ArgError::MissingCommand.to_string().contains("bcc help"));
        assert!(ArgError::UnknownFlag("x".into())
            .to_string()
            .contains("--x"));
    }
}
