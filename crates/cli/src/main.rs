//! `bcc` — command-line front end for bandwidth-constrained cluster search.
//!
//! ```text
//! bcc gen   --preset hp|umd|small [--nodes N] [--seed S] --out FILE
//! bcc stats FILE [--samples N]
//! bcc query FILE --k K --b MBPS [--start ID] [--ncut N] [--classes N]
//! bcc hub   FILE --targets 1,2,3 --b MBPS
//! bcc plan  FILE --size K --b MBPS
//! bcc help
//! ```
//!
//! Matrices use the plain-text format of `bcc-datasets` (`bcc gen` writes
//! it, every other command reads it).

mod args;

use std::path::Path;
use std::process::ExitCode;

use args::ParsedArgs;
use bcc_core::BandwidthClasses;
use bcc_datasets::{generate, hp_config, load_matrix, save_matrix, umd_config, SynthConfig};
use bcc_metric::stats::EmpiricalCdf;
use bcc_metric::{fourpoint, BandwidthMatrix, NodeId, RationalTransform};
use bcc_simnet::{ClusterSystem, SystemConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: &[String]) -> Result<(), String> {
    const ALL_FLAGS: &[&str] = &[
        "preset", "nodes", "seed", "out", "samples", "k", "b", "start", "ncut", "classes",
        "targets", "size",
    ];
    let parsed = ParsedArgs::parse(raw, ALL_FLAGS).map_err(|e| e.to_string())?;
    match parsed.command() {
        "gen" => cmd_gen(&parsed),
        "stats" => cmd_stats(&parsed),
        "query" => cmd_query(&parsed),
        "hub" => cmd_hub(&parsed),
        "plan" => cmd_plan(&parsed),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try `bcc help`)")),
    }
}

const HELP: &str = "\
bcc — bandwidth-constrained cluster search (ICDCS 2011 reproduction)

USAGE:
  bcc gen   --preset hp|umd|small [--nodes N] [--seed S] --out FILE
  bcc stats FILE [--samples N]
  bcc query FILE --k K --b MBPS [--start ID] [--ncut N] [--classes N]
  bcc hub   FILE --targets 1,2,3 --b MBPS
  bcc plan  FILE --size K --b MBPS
  bcc help
";

fn cmd_gen(p: &ParsedArgs) -> Result<(), String> {
    let seed: u64 = p.get_or("seed", 0).map_err(|e| e.to_string())?;
    let preset = p.get_str("preset").unwrap_or("small");
    let mut cfg = match preset {
        "hp" => hp_config(seed),
        "umd" => umd_config(seed),
        "small" => SynthConfig::small(seed),
        other => return Err(format!("unknown preset '{other}' (hp|umd|small)")),
    };
    if let Some(nodes) = p.get_str("nodes") {
        cfg.nodes = nodes
            .parse()
            .map_err(|_| format!("bad --nodes '{nodes}'"))?;
    }
    let out = p.get_str("out").ok_or("gen requires --out FILE")?;
    let bw = generate(&cfg);
    save_matrix(&bw, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} hosts ({} pairs) to {out}",
        bw.len(),
        bw.len() * (bw.len() - 1) / 2
    );
    Ok(())
}

fn load(p: &ParsedArgs) -> Result<BandwidthMatrix, String> {
    let path = p
        .positional()
        .first()
        .ok_or("expected a matrix file (produced by `bcc gen`)")?;
    load_matrix(Path::new(path)).map_err(|e| e.to_string())
}

fn cmd_stats(p: &ParsedArgs) -> Result<(), String> {
    let bw = load(p)?;
    let samples: usize = p.get_or("samples", 20_000).map_err(|e| e.to_string())?;
    let cdf = EmpiricalCdf::new(bw.pair_values());
    println!("hosts: {}", bw.len());
    println!(
        "bandwidth: min {:.1}, p20 {:.1}, p50 {:.1}, p80 {:.1}, max {:.1} Mbps",
        cdf.min(),
        cdf.percentile(20.0),
        cdf.percentile(50.0),
        cdf.percentile(80.0),
        cdf.max()
    );
    let d = RationalTransform::default().distance_matrix(&bw);
    let mut rng = StdRng::seed_from_u64(1);
    let eps = fourpoint::epsilon_avg_sampled(&d, samples, &mut rng);
    println!(
        "treeness: eps_avg = {eps:.4} (eps* = {:.4}, {samples} sampled quartets)",
        fourpoint::epsilon_star(eps)
    );
    Ok(())
}

fn build_system(p: &ParsedArgs, bw: BandwidthMatrix) -> Result<ClusterSystem, String> {
    let n_cut: usize = p.get_or("ncut", 10).map_err(|e| e.to_string())?;
    let class_count: usize = p.get_or("classes", 12).map_err(|e| e.to_string())?;
    let cdf = EmpiricalCdf::new(bw.pair_values());
    let (lo, hi) = (cdf.percentile(5.0).max(0.1), cdf.max());
    let classes = BandwidthClasses::linspace(lo, hi, class_count, RationalTransform::default());
    let mut config = SystemConfig::new(classes);
    config.protocol = bcc_core::ProtocolConfig::new(n_cut, config.protocol.classes.clone());
    Ok(ClusterSystem::build(bw, config))
}

fn cmd_query(p: &ParsedArgs) -> Result<(), String> {
    let bw = load(p)?;
    let k: usize = p.require("k").map_err(|e| e.to_string())?;
    let b: f64 = p.require("b").map_err(|e| e.to_string())?;
    let start: usize = p.get_or("start", 0).map_err(|e| e.to_string())?;
    let n = bw.len();
    if start >= n {
        return Err(format!("--start {start} out of range (0..{n})"));
    }
    let system = build_system(p, bw)?;
    let out = system
        .query(NodeId::new(start), k, b)
        .map_err(|e| e.to_string())?;
    match out.cluster {
        Some(cluster) => {
            println!(
                "cluster ({} hops via {:?}):",
                out.hops,
                out.path.iter().map(|h| h.index()).collect::<Vec<_>>()
            );
            for (i, &u) in cluster.iter().enumerate() {
                for &v in &cluster[i + 1..] {
                    println!(
                        "  {} <-> {}: real {:.1} Mbps, predicted {:.1} Mbps",
                        u.index(),
                        v.index(),
                        system.real_bandwidth(u, v),
                        system.predicted_bandwidth(u, v)
                    );
                }
            }
            let (wrong, total) = system.score_cluster(&cluster, b);
            println!(
                "members: {:?}",
                cluster.iter().map(|h| h.index()).collect::<Vec<_>>()
            );
            println!("ground truth: {wrong}/{total} pairs below {b} Mbps");
        }
        None => println!(
            "no cluster of {k} hosts at >= {b} Mbps (searched {} hops)",
            out.hops
        ),
    }
    Ok(())
}

fn cmd_hub(p: &ParsedArgs) -> Result<(), String> {
    let bw = load(p)?;
    let targets = p
        .get_usize_list("targets")
        .map_err(|e| e.to_string())?
        .ok_or("hub requires --targets 1,2,3")?;
    let b: f64 = p.require("b").map_err(|e| e.to_string())?;
    let n = bw.len();
    for &t in &targets {
        if t >= n {
            return Err(format!("target {t} out of range (0..{n})"));
        }
    }
    let system = build_system(p, bw)?;
    let ids: Vec<NodeId> = targets.iter().map(|&t| NodeId::new(t)).collect();
    match system.find_hub(&ids, b).map_err(|e| e.to_string())? {
        Some(hub) => {
            println!("hub: {}", hub.index());
            for &t in &ids {
                println!(
                    "  {} <-> {}: real {:.1} Mbps, predicted {:.1} Mbps",
                    hub.index(),
                    t.index(),
                    system.real_bandwidth(hub, t),
                    system.predicted_bandwidth(hub, t)
                );
            }
        }
        None => println!("no host reaches all targets at >= {b} Mbps"),
    }
    Ok(())
}

fn cmd_plan(p: &ParsedArgs) -> Result<(), String> {
    let bw = load(p)?;
    let size: usize = p.require("size").map_err(|e| e.to_string())?;
    let b: f64 = p.require("b").map_err(|e| e.to_string())?;
    let n = bw.len();
    let cdf = EmpiricalCdf::new(bw.pair_values());
    let classes = BandwidthClasses::linspace(
        cdf.percentile(5.0).max(0.1),
        cdf.max(),
        12,
        RationalTransform::default(),
    );
    let plan = bcc_apps::plan(
        &bw,
        SystemConfig::new(classes),
        bcc_apps::PlanConfig {
            cluster_size: size,
            min_bandwidth: b,
        },
    );
    for (i, c) in plan.clusters.iter().enumerate() {
        println!(
            "cluster {i}: rep {} <- {:?} (intra min {:.1} Mbps)",
            c.representative.index(),
            c.members.iter().map(|h| h.index()).collect::<Vec<_>>(),
            c.internal_min_bandwidth
        );
    }
    println!(
        "{} clusters, {} singletons, {} wide-area sends (vs {n} naive)",
        plan.clusters.len(),
        plan.singletons.len(),
        plan.wide_area_sends()
    );
    let est = plan.estimate(1.0, b);
    println!(
        "distributing 1 GB at {b} Mbps origin uplink: planned {:.0}s vs naive {:.0}s",
        est.planned_seconds, est.naive_seconds
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn temp(name: &str) -> String {
        let dir = std::env::temp_dir().join("bcc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_stats_query_hub_roundtrip() {
        let file = temp("m.txt");
        run(&v(&[
            "gen", "--preset", "small", "--nodes", "24", "--seed", "3", "--out", &file,
        ]))
        .unwrap();
        run(&v(&["stats", &file, "--samples", "2000"])).unwrap();
        run(&v(&["query", &file, "--k", "3", "--b", "20"])).unwrap();
        run(&v(&["hub", &file, "--targets", "0,1", "--b", "10"])).unwrap();
        run(&v(&["plan", &file, "--size", "3", "--b", "20"])).unwrap();
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn help_and_errors() {
        run(&v(&["help"])).unwrap();
        assert!(run(&v(&["frobnicate"])).is_err());
        assert!(run(&v(&["gen", "--preset", "nope", "--out", "x"])).is_err());
        assert!(run(&v(&["gen", "--preset", "small"])).is_err()); // no --out
        assert!(run(&v(&["stats"])).is_err()); // no file
        assert!(run(&v(&["stats", "/definitely/not/here"])).is_err());
    }

    #[test]
    fn query_validates_ranges() {
        let file = temp("m2.txt");
        run(&v(&[
            "gen", "--preset", "small", "--nodes", "12", "--out", &file,
        ]))
        .unwrap();
        assert!(run(&v(&[
            "query", &file, "--k", "2", "--b", "20", "--start", "99"
        ]))
        .is_err());
        assert!(run(&v(&["hub", &file, "--targets", "0,99", "--b", "20"])).is_err());
        std::fs::remove_file(&file).ok();
    }
}
