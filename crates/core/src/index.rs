//! Indexed sub-cubic cluster search: sorted per-node distance labels.
//!
//! Algorithm 1 examines every node pair `(p, q)` and counts the
//! *pair-bounded set* `S*_pq = {x : d(x,p) ≤ d(p,q) ∧ d(x,q) ≤ d(p,q)}`
//! — an `O(n³)` sweep. But `S*_pq` is, **by definition on any symmetric
//! metric**, exactly the intersection of the two closed balls
//! `B(p, d(p,q)) ∩ B(q, d(p,q))`, so
//!
//! ```text
//! |S*_pq| ≤ min(|B(p, d(p,q))|, |B(q, d(p,q))|)
//! ```
//!
//! A [`ClusterIndex`] precomputes, once in `O(n² log n)`, every node's
//! distance row sorted ascending by `(d, id)`; ball sizes then cost one
//! binary search, and the cubic sweep collapses to range scans that prune
//! whole rows (`|B(p, l)| < k` means no pair in row `p` can ever bound a
//! `k`-cluster) and individual pairs before the expensive membership count
//! runs. On the paper's tree-metric-like spaces the pruning is dramatic —
//! the unsatisfiable `k = n` probe drops from `O(n³)` to `O(n log n)` —
//! but the bounds are *sound on any symmetric metric*, so the indexed
//! kernels return **bit-identical** results to the brute-force sweeps even
//! on the noisy, only-approximately-tree synthetic datasets. Tree
//! structure buys speed, never correctness.
//!
//! The index is **incrementally maintained under churn**: a membership
//! delta (hosts removed, hosts whose distances changed — e.g. re-embedded
//! anchor-subtree orphans) updates only the affected row slices with one
//! merge pass per surviving row, `O(n·(n + |Δ| log |Δ|) + |Δ|·n log n)`
//! total, never a full re-sort. The canonical `(d, id)` entry order makes
//! the [`ClusterIndex::digest`] of an incrementally-maintained index equal
//! to a from-scratch rebuild of the same membership — the invariant the
//! chaos harness asserts after every churn schedule.

use bcc_metric::FiniteMetric;

use crate::find_cluster::{
    check_pair, check_pair_rows, Budgeted, WorkMeter, BUDGET_BLOCK, PAR_SERIAL_CUTOFF,
};

/// Slot sentinel for ids not present in the index.
const ABSENT: u32 = u32::MAX;

/// FNV-1a 64-bit, the digest primitive used across the workspace benches.
#[inline]
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One node's sorted distance label: every current member's distance from
/// the row owner, ascending by `(distance, id)` — the canonical tie-break
/// that makes digests independent of construction history.
#[derive(Debug, Clone, Default)]
struct Row {
    d: Vec<f64>,
    id: Vec<u32>,
}

impl Row {
    fn digest(&self, owner: u32) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &owner.to_le_bytes());
        h = fnv1a(h, &(self.d.len() as u64).to_le_bytes());
        for (&d, &id) in self.d.iter().zip(&self.id) {
            h = fnv1a(h, &d.to_bits().to_le_bytes());
            h = fnv1a(h, &id.to_le_bytes());
        }
        h
    }
}

/// Lifetime maintenance counters of one [`ClusterIndex`] instance.
///
/// These are *instance* stats (unlike the global `bcc-obs` counters), so a
/// test or chaos oracle can assert a specific system's index was
/// maintained incrementally — `full_builds` stays put while
/// `incremental_updates` tracks the churn ops — without cross-talk from
/// other systems in the process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// `O(n² log n)` from-scratch constructions ([`ClusterIndex::build`] /
    /// [`ClusterIndex::from_metric`]). An index born empty and grown by
    /// churn reports 0 here forever — the "no full rebuild on the hot
    /// path" guarantee.
    pub full_builds: u64,
    /// Incremental delta applications ([`ClusterIndex::apply_churn`]).
    pub incremental_updates: u64,
    /// Rows fully re-sorted across all incremental updates (removed hosts'
    /// rows are dropped, re-embedded hosts' rows rebuilt; every other row
    /// gets a merge pass, not a sort).
    pub rows_rebuilt: u64,
}

/// Typed rejection of an invalid churn delta — the library-boundary
/// contract of [`ClusterIndex::apply_churn`], mirroring how
/// `QueryRequest::validate` rejects malformed queries instead of letting
/// them panic deep inside a kernel. An `Err` guarantees the index (and its
/// [`IndexStats`]) was left exactly as it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexError {
    /// A `removed` id is not currently an index member.
    NotAMember(u32),
    /// An id lies outside the fixed universe the index was created over.
    OutOfUniverse {
        /// The offending id.
        id: u32,
        /// The universe bound the index was created with.
        universe: usize,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::NotAMember(id) => write!(f, "removed id {id} is not an index member"),
            IndexError::OutOfUniverse { id, universe } => {
                write!(f, "id {id} outside universe {universe}")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// Sorted per-node distance labels over a membership of universe ids.
///
/// Row `slot` belongs to member `ids()[slot]`; members are kept in
/// ascending id order, so when the index is built over a
/// [`FiniteMetric`] directly (ids `0..n`) slots and metric positions
/// coincide, and when it is built over an active subset the slot order
/// matches a [`bcc_metric::SubsetMetric`] view of the same ascending ids.
///
/// All query methods take *slots*; [`ClusterIndex::slot`] maps ids back.
#[derive(Debug, Clone)]
pub struct ClusterIndex {
    /// Id bound: all member ids are `< universe`.
    universe: usize,
    /// Ascending member ids; `slot -> id`.
    ids: Vec<u32>,
    /// `id -> slot`, [`ABSENT`] when not a member.
    slot_of: Vec<u32>,
    rows: Vec<Row>,
    row_digest: Vec<u64>,
    /// XOR fold of the per-row digests (each covers its owner id, so the
    /// fold is membership-sensitive despite being order-insensitive).
    digest: u64,
    stats: IndexStats,
}

impl ClusterIndex {
    /// An empty index over a universe of `universe` potential ids. Costs
    /// nothing and counts as neither a build nor an update — the natural
    /// starting point for a system whose membership grows by churn.
    pub fn empty(universe: usize) -> Self {
        ClusterIndex {
            universe,
            ids: Vec::new(),
            slot_of: vec![ABSENT; universe],
            rows: Vec::new(),
            row_digest: Vec::new(),
            digest: 0,
            stats: IndexStats::default(),
        }
    }

    /// Builds the index from scratch over `ids` (deduplicated, sorted
    /// ascending internally) with `dist(owner, other)` supplying every
    /// entry: `O(m² log m)` for `m` members.
    ///
    /// # Panics
    ///
    /// Panics when an id is `>= universe`.
    pub fn build(universe: usize, ids: &[u32], mut dist: impl FnMut(u32, u32) -> f64) -> Self {
        let _span = bcc_obs::span!("core.index.build");
        bcc_obs::inc!("core.index.builds");
        let mut sorted: Vec<u32> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut index = ClusterIndex::empty(universe);
        index.stats.full_builds = 1;
        for &id in &sorted {
            assert!(
                (id as usize) < universe,
                "id {id} outside universe {universe}"
            );
        }
        index.ids = sorted;
        for (slot, &id) in index.ids.iter().enumerate() {
            index.slot_of[id as usize] = slot as u32;
        }
        index.rows = index
            .ids
            .iter()
            .map(|&owner| build_row(owner, &index.ids, &mut dist))
            .collect();
        index.rebuild_digests();
        index
    }

    /// [`ClusterIndex::build`] over a metric space directly: ids are the
    /// positions `0..metric.len()`, so slots equal metric positions and
    /// the index can be handed to the `_indexed` kernels together with the
    /// same metric.
    pub fn from_metric<M: FiniteMetric>(metric: &M) -> Self {
        let n = metric.len();
        ClusterIndex::build(n, &(0..n as u32).collect::<Vec<_>>(), |a, b| {
            metric.distance(a as usize, b as usize)
        })
    }

    /// Rebuilds an index from exported parts: the universe bound, the
    /// ascending member ids, and each member's sorted row as parallel
    /// `(distances, ids)` vectors (the exact shape [`ClusterIndex::row`]
    /// exposes). Restoring a snapshot this way costs `O(m·n)` — no
    /// re-sorting — and counts as **neither** a build nor an update:
    /// `full_builds` stays 0, which is how a warm-restart oracle proves no
    /// `O(n² log n)` rebuild ran.
    ///
    /// The resulting [`ClusterIndex::digest`] is recomputed from the rows,
    /// so it equals the exporting index's digest exactly when the rows
    /// round-tripped bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation when the parts are not
    /// a valid index: unsorted/duplicate/out-of-universe ids, row count or
    /// length mismatches, non-finite or negative distances, entries out of
    /// canonical `(d, id)` order, or row entries that are not members.
    pub fn from_parts(
        universe: usize,
        ids: Vec<u32>,
        rows: Vec<(Vec<f64>, Vec<u32>)>,
    ) -> Result<Self, String> {
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return Err("member ids must be strictly ascending".into());
        }
        if let Some(&id) = ids.last() {
            if id as usize >= universe {
                return Err(format!("id {id} outside universe {universe}"));
            }
        }
        if rows.len() != ids.len() {
            return Err(format!("{} rows for {} members", rows.len(), ids.len()));
        }
        let mut slot_of = vec![ABSENT; universe];
        for (slot, &id) in ids.iter().enumerate() {
            slot_of[id as usize] = slot as u32;
        }
        let mut checked = Vec::with_capacity(rows.len());
        // `last_seen[id] == slot` marks `id` as already present in `slot`'s
        // row — a duplicate would shadow a missing member (lengths match).
        let mut last_seen = vec![ABSENT; universe];
        for (slot, (d, id)) in rows.into_iter().enumerate() {
            let owner = ids[slot];
            if d.len() != ids.len() || id.len() != ids.len() {
                return Err(format!(
                    "row of {owner} has {}/{} entries for {} members",
                    d.len(),
                    id.len(),
                    ids.len()
                ));
            }
            for (pos, (&dv, &iv)) in d.iter().zip(&id).enumerate() {
                if !dv.is_finite() || dv < 0.0 {
                    return Err(format!("row of {owner} has invalid distance {dv}"));
                }
                if (iv as usize) >= universe || slot_of[iv as usize] == ABSENT {
                    return Err(format!("row of {owner} references non-member {iv}"));
                }
                if last_seen[iv as usize] == slot as u32 {
                    return Err(format!("row of {owner} lists member {iv} twice"));
                }
                last_seen[iv as usize] = slot as u32;
                if pos > 0 {
                    let prev = (d[pos - 1], id[pos - 1]);
                    if prev.0.total_cmp(&dv).then(prev.1.cmp(&iv)).is_ge() {
                        return Err(format!(
                            "row of {owner} breaks canonical (d, id) order at entry {pos}"
                        ));
                    }
                }
            }
            checked.push(Row { d, id });
        }
        let mut index = ClusterIndex {
            universe,
            ids,
            slot_of,
            rows: checked,
            row_digest: Vec::new(),
            digest: 0,
            stats: IndexStats::default(),
        };
        index.rebuild_digests();
        Ok(index)
    }

    /// The id bound the index was created with: all member ids are below it.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no member is indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Ascending member ids; position in this slice is the slot.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Slot of `id`, or `None` when not a member.
    pub fn slot(&self, id: u32) -> Option<usize> {
        match self.slot_of.get(id as usize) {
            Some(&s) if s != ABSENT => Some(s as usize),
            _ => None,
        }
    }

    /// `|B(ids()[slot], l)|`: members within distance `l` of the row owner
    /// (the owner itself included), by binary search over the sorted row.
    pub fn count_within(&self, slot: usize, l: f64) -> usize {
        self.rows[slot].d.partition_point(|&d| d <= l)
    }

    /// The sorted row of `slot`: parallel `(distances, ids)` slices,
    /// ascending by `(d, id)`.
    pub fn row(&self, slot: usize) -> (&[f64], &[u32]) {
        (&self.rows[slot].d, &self.rows[slot].id)
    }

    /// The closed ball `B(ids()[slot], l)` as a row prefix: every member
    /// within distance `l` of the row owner (the owner itself included),
    /// as parallel `(distances, ids)` slices still ascending by `(d, id)`.
    /// One binary search, no scan — the boundary-ball candidate enumeration
    /// primitive of region-scoped (sharded) serving.
    pub fn ball(&self, slot: usize, l: f64) -> (&[f64], &[u32]) {
        let reach = self.count_within(slot, l);
        (&self.rows[slot].d[..reach], &self.rows[slot].id[..reach])
    }

    /// Content digest: equal for equal (membership, distances) regardless
    /// of whether the index was built from scratch or maintained
    /// incrementally — the churn-correctness oracle.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Instance maintenance counters.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Applies one churn delta incrementally: `removed` ids leave the
    /// membership, `reembedded` ids have (re)computed distances — either
    /// new members joining or existing members whose labels changed (the
    /// re-adopted anchor-subtree orphans of a leave). Every surviving
    /// untouched row is updated with a single strip-and-merge pass; only
    /// the `reembedded` rows themselves are re-sorted. The resulting
    /// digest equals a from-scratch [`ClusterIndex::build`] of the new
    /// membership with the same `dist`.
    ///
    /// `dist` is invoked as `dist(row_owner, reembedded_id)` — the same
    /// orientation [`ClusterIndex::build`] uses — so an asymmetric oracle
    /// stays consistent between the two construction paths.
    ///
    /// # Errors
    ///
    /// Rejects the delta — leaving the index and its [`IndexStats`]
    /// untouched — when a `removed` id is not a member
    /// ([`IndexError::NotAMember`]) or any id is `>= universe`
    /// ([`IndexError::OutOfUniverse`]).
    pub fn apply_churn(
        &mut self,
        removed: &[u32],
        reembedded: &[u32],
        mut dist: impl FnMut(u32, u32) -> f64,
    ) -> Result<(), IndexError> {
        // Validate before mutating anything, counters included: an Err
        // must leave the instance bit-identical to its pre-call state.
        for &id in removed.iter().chain(reembedded) {
            if id as usize >= self.universe {
                return Err(IndexError::OutOfUniverse {
                    id,
                    universe: self.universe,
                });
            }
        }
        for &id in removed {
            if self.slot(id).is_none() {
                return Err(IndexError::NotAMember(id));
            }
        }
        let _span = bcc_obs::span!("core.index.update");
        bcc_obs::inc!("core.index.incremental_updates");
        self.stats.incremental_updates += 1;
        // `touched[id]`: entries to strip out of every surviving row
        // (removed members and stale rows of re-embedded members alike).
        // Only the removed ids are marked before the survivor filter, so
        // membership costs one bitmap probe per member instead of an
        // O(|removed|) scan; re-embedded ids are folded in afterwards —
        // marking them first would make the filter drop re-embedded
        // *existing* members as if they had departed.
        let mut touched = vec![false; self.universe];
        for &id in removed {
            touched[id as usize] = true;
        }

        // New membership: old minus removed, plus re-embedded ids.
        let mut new_ids: Vec<u32> = self
            .ids
            .iter()
            .copied()
            .filter(|&id| !touched[id as usize])
            .collect();
        for &id in reembedded {
            touched[id as usize] = true;
            if self.slot(id).is_none() {
                new_ids.push(id);
            }
        }
        new_ids.sort_unstable();
        new_ids.dedup();

        // Take the old rows; untouched ones are edited and moved over.
        let old_ids = std::mem::take(&mut self.ids);
        let mut old_rows = std::mem::take(&mut self.rows);
        let old_slot_of = std::mem::replace(&mut self.slot_of, vec![ABSENT; self.universe]);

        self.ids = new_ids;
        for (slot, &id) in self.ids.iter().enumerate() {
            self.slot_of[id as usize] = slot as u32;
        }

        let mut rebuilt = 0u64;
        let mut rows = Vec::with_capacity(self.ids.len());
        // Sorted delta entries are re-derived per row (distances differ
        // per owner); the scratch buffer is reused across rows.
        let mut delta: Vec<(f64, u32)> = Vec::with_capacity(reembedded.len());
        for &owner in &self.ids {
            if touched[owner as usize] {
                // A re-embedded member: its whole row is stale. Re-sort.
                rebuilt += 1;
                rows.push(build_row(owner, &self.ids, &mut dist));
                continue;
            }
            let old_slot = old_slot_of[owner as usize];
            debug_assert!(old_slot != ABSENT, "untouched member must pre-exist");
            let old = std::mem::take(&mut old_rows[old_slot as usize]);
            delta.clear();
            for &c in reembedded {
                delta.push((dist(owner, c), c));
            }
            delta.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            rows.push(strip_and_merge(&old, &touched, &delta));
        }
        drop(old_ids);
        self.rows = rows;
        self.rebuild_digests();
        self.stats.rows_rebuilt += rebuilt;
        bcc_obs::add!("core.index.rows_rebuilt", rebuilt);
        Ok(())
    }

    fn rebuild_digests(&mut self) {
        self.row_digest = self
            .ids
            .iter()
            .zip(&self.rows)
            .map(|(&owner, row)| row.digest(owner))
            .collect();
        self.digest = self.row_digest.iter().fold(0, |acc, &h| acc ^ h);
    }
}

/// Builds one sorted row from scratch: `O(m log m)`.
fn build_row(owner: u32, ids: &[u32], dist: &mut impl FnMut(u32, u32) -> f64) -> Row {
    let mut entries: Vec<(f64, u32)> = ids.iter().map(|&x| (dist(owner, x), x)).collect();
    entries.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    Row {
        d: entries.iter().map(|e| e.0).collect(),
        id: entries.iter().map(|e| e.1).collect(),
    }
}

/// One merge pass over an untouched row: drop `touched` entries, weave in
/// the pre-sorted `delta` entries. `O(len + |delta|)`, no sort.
fn strip_and_merge(old: &Row, touched: &[bool], delta: &[(f64, u32)]) -> Row {
    let target = old.d.len() + delta.len();
    let mut d = Vec::with_capacity(target);
    let mut id = Vec::with_capacity(target);
    let mut di = 0usize;
    for (&od, &oid) in old.d.iter().zip(&old.id) {
        if touched[oid as usize] {
            continue;
        }
        while di < delta.len()
            && delta[di]
                .0
                .total_cmp(&od)
                .then(delta[di].1.cmp(&oid))
                .is_lt()
        {
            d.push(delta[di].0);
            id.push(delta[di].1);
            di += 1;
        }
        d.push(od);
        id.push(oid);
    }
    for &(dd, did) in &delta[di..] {
        d.push(dd);
        id.push(did);
    }
    Row { d, id }
}

/// `|S*_pq|` — the exact pair-bounded count Algorithm 1 computes, as a
/// plain sweep. Runs only for pairs that survive the ball-size bounds.
fn pair_count<M: FiniteMetric>(metric: &M, p: usize, q: usize, dpq: f64) -> usize {
    let mut count = 0;
    for x in 0..metric.len() {
        if metric.distance(x, p) <= dpq && metric.distance(x, q) <= dpq {
            count += 1;
        }
    }
    count
}

/// Indexed Algorithm 1: bit-identical to [`crate::find_cluster`] over the
/// same metric, with whole rows and individual pairs pruned through the
/// index's ball-size bounds before any membership sweep runs.
///
/// `index` must be built over exactly this metric (slots = positions);
/// the kernels assume `index.count_within` and `metric.distance` agree.
/// The scan preserves the serial row-major order, and every surviving pair
/// runs the identical membership test, so the returned cluster (members
/// *and* order) matches the brute-force sweep on any symmetric metric —
/// pruning exploits tree structure for speed, never for correctness.
///
/// # Panics
///
/// Panics when `index.len() != metric.len()`.
pub fn find_cluster_indexed<M: FiniteMetric>(
    metric: &M,
    index: &ClusterIndex,
    k: usize,
    l: f64,
) -> Option<Vec<usize>> {
    let _span = bcc_obs::span!("core.find_cluster_indexed");
    bcc_obs::inc!("core.index.probes");
    assert_eq!(metric.len(), index.len(), "index does not cover the metric");
    let n = metric.len();
    if k > n || k == 0 {
        return None;
    }
    if k == 1 {
        return Some(vec![0]);
    }
    let mut scratch = Vec::with_capacity(k);
    let mut rows_pruned = 0u64;
    let mut candidates = 0u64;
    let mut found = None;
    'search: for p in 0..n {
        // Row bound: S*_pq ⊆ B(p, d(p,q)) ⊆ B(p, l) for every q with
        // d(p,q) ≤ l, so a row whose l-ball is small can never satisfy k.
        let reach = index.count_within(p, l);
        bcc_obs::observe!("core.index.probe_range_len", reach as u64);
        if reach < k {
            rows_pruned += 1;
            continue;
        }
        for q in (p + 1)..n {
            let dpq = metric.distance(p, q);
            if dpq <= l && index.count_within(p, dpq) >= k && index.count_within(q, dpq) >= k {
                candidates += 1;
                if check_pair(metric, p, q, dpq, k, &mut scratch) {
                    found = Some(scratch);
                    break 'search;
                }
            }
        }
    }
    bcc_obs::add!("core.index.rows_pruned", rows_pruned);
    bcc_obs::add!("core.index.pair_candidates", candidates);
    found
}

/// Parallel [`find_cluster_indexed`] on the `bcc-par` pool: rows are
/// scanned concurrently with deterministic lowest-row early exit, so the
/// result is bit-identical to the serial indexed (and brute-force) scan
/// for any thread count. Small spaces delegate to the serial kernel
/// outright (see [`PAR_SERIAL_CUTOFF`]).
///
/// # Panics
///
/// Panics when `index.len() != metric.len()`.
pub fn find_cluster_indexed_par<M: FiniteMetric>(
    metric: &M,
    index: &ClusterIndex,
    k: usize,
    l: f64,
) -> Option<Vec<usize>> {
    let n = metric.len();
    if n * n.saturating_sub(1) / 2 <= PAR_SERIAL_CUTOFF {
        return find_cluster_indexed(metric, index, k, l);
    }
    let _span = bcc_obs::span!("core.find_cluster_indexed");
    bcc_obs::inc!("core.index.probes");
    assert_eq!(metric.len(), index.len(), "index does not cover the metric");
    if k > n || k == 0 {
        return None;
    }
    if k == 1 {
        return Some(vec![0]);
    }
    let d = metric.to_matrix();
    bcc_par::par_find_first_with(
        n,
        || Vec::with_capacity(k),
        |scratch, p| {
            if index.count_within(p, l) < k {
                return None;
            }
            let row_p = &d.row(p)[..n];
            for (q, &dpq) in row_p.iter().enumerate().skip(p + 1) {
                if dpq <= l
                    && index.count_within(p, dpq) >= k
                    && index.count_within(q, dpq) >= k
                    && check_pair_rows(&d, p, q, dpq, k, scratch)
                {
                    return Some(scratch.clone());
                }
            }
            None
        },
    )
}

/// [`find_cluster_indexed`] under a [`WorkMeter`].
///
/// Work is charged in *index scan units* — one per row-gate probe, one per
/// surviving in-range pair examined — at [`BUDGET_BLOCK`] boundaries, so
/// the cut point is a deterministic function of the metric, the index and
/// the budget, exactly like the pair-sweep `_budgeted` kernels. Because
/// the unit differs from the sweep's pairs-examined, an exhausted indexed
/// scan may cut (and report a partial) at a different place than
/// [`crate::find_cluster_budgeted`] would; with an unexhausted meter the
/// result is bit-identical to [`find_cluster_indexed`] and therefore to
/// [`crate::find_cluster`].
///
/// # Panics
///
/// Panics when `index.len() != metric.len()`.
pub fn find_cluster_indexed_budgeted<M: FiniteMetric>(
    metric: &M,
    index: &ClusterIndex,
    k: usize,
    l: f64,
    meter: &mut WorkMeter,
) -> Budgeted<Option<Vec<usize>>> {
    let _span = bcc_obs::span!("core.find_cluster_indexed");
    bcc_obs::inc!("core.index.probes");
    assert_eq!(metric.len(), index.len(), "index does not cover the metric");
    let n = metric.len();
    if k > n || k == 0 {
        return Budgeted::Done(None);
    }
    if k == 1 {
        return Budgeted::Done(Some(vec![0]));
    }
    if meter.exhausted() {
        return Budgeted::Exhausted {
            pairs_done: meter.used(),
            best_partial: None,
        };
    }
    let mut scratch = Vec::with_capacity(k);
    let mut best: Vec<usize> = Vec::new();
    let mut block = 0usize;
    macro_rules! step {
        () => {
            block += 1;
            if block == BUDGET_BLOCK {
                block = 0;
                if !meter.charge(BUDGET_BLOCK as u64) {
                    return Budgeted::Exhausted {
                        pairs_done: meter.used(),
                        best_partial: (!best.is_empty()).then_some(best),
                    };
                }
            }
        };
    }
    for p in 0..n {
        step!();
        if index.count_within(p, l) < k {
            continue;
        }
        for q in (p + 1)..n {
            let dpq = metric.distance(p, q);
            if dpq <= l {
                step!();
                if index.count_within(p, dpq) >= k && index.count_within(q, dpq) >= k {
                    if check_pair(metric, p, q, dpq, k, &mut scratch) {
                        meter.charge(block as u64);
                        return Budgeted::Done(Some(scratch));
                    }
                    if scratch.len() > best.len() && scratch.len() >= 2 {
                        best = scratch.clone();
                    }
                }
            }
        }
    }
    meter.charge(block as u64);
    Budgeted::Done(None)
}

/// Indexed [`crate::max_cluster_size`]: the same exact maximum, with rows
/// visited in descending `|B(p, l)|` order so the running best tightens
/// early, rows cut off once their ball bound can no longer beat it, and
/// pairs pruned through both endpoint bounds before the exact count runs.
///
/// Equals the pair-sweep result on any symmetric metric: every pruned pair
/// provably satisfies `|S*_pq| ≤ best` at prune time, and surviving pairs
/// are counted exactly.
///
/// # Panics
///
/// Panics when `index.len() != metric.len()`.
pub fn max_cluster_size_indexed<M: FiniteMetric>(
    metric: &M,
    index: &ClusterIndex,
    l: f64,
) -> usize {
    let _span = bcc_obs::span!("core.max_cluster_size_indexed");
    bcc_obs::inc!("core.index.probes");
    assert_eq!(metric.len(), index.len(), "index does not cover the metric");
    let n = metric.len();
    if n == 0 {
        return 0;
    }
    let order = rows_by_reach(index, n, l);
    let mut best = 1usize;
    for &(reach, p) in &order {
        if reach <= best {
            // Descending order: every remaining row is bounded too.
            break;
        }
        best = scan_row_max(metric, index, p, reach, best);
    }
    best
}

/// Parallel [`max_cluster_size_indexed`]: the strongest row is scanned
/// serially to seed a high lower bound, then the remaining candidate rows
/// are chunked across the `bcc-par` pool. `max` reduces exactly and every
/// prune is sound against the chunk-local bound, so the result equals the
/// serial scan's for any thread count. Small spaces delegate to the
/// serial kernel (see [`PAR_SERIAL_CUTOFF`]).
///
/// # Panics
///
/// Panics when `index.len() != metric.len()`.
pub fn max_cluster_size_indexed_par<M: FiniteMetric>(
    metric: &M,
    index: &ClusterIndex,
    l: f64,
) -> usize {
    let n = metric.len();
    if n * n.saturating_sub(1) / 2 <= PAR_SERIAL_CUTOFF {
        return max_cluster_size_indexed(metric, index, l);
    }
    let _span = bcc_obs::span!("core.max_cluster_size_indexed");
    bcc_obs::inc!("core.index.probes");
    assert_eq!(metric.len(), index.len(), "index does not cover the metric");
    if n == 0 {
        return 0;
    }
    let d = metric.to_matrix();
    let order = rows_by_reach(index, n, l);
    let mut seed = 1usize;
    if let Some(&(reach, p)) = order.first() {
        if reach > seed {
            seed = scan_row_max(&d, index, p, reach, seed);
        }
    }
    let candidates: Vec<(usize, usize)> = order
        .into_iter()
        .skip(1)
        .take_while(|&(reach, _)| reach > seed)
        .collect();
    if candidates.is_empty() {
        return seed;
    }
    let chunk = (candidates.len() / (bcc_par::current_threads() * 8)).clamp(1, 4096);
    bcc_par::par_chunks(candidates.len(), chunk, |range| {
        let mut best = seed;
        for &(reach, p) in &candidates[range] {
            if reach > best {
                best = scan_row_max(&d, index, p, reach, best);
            }
        }
        best
    })
    .into_iter()
    .fold(seed, usize::max)
}

/// [`max_cluster_size_indexed`] under a [`WorkMeter`]: charges one index
/// scan unit per row gate and one per candidate prefix position examined,
/// at [`BUDGET_BLOCK`] boundaries; when the meter runs dry it returns the
/// best exact size established so far (≥ 1 on non-empty spaces). With an
/// unexhausted meter the result equals [`max_cluster_size_indexed`].
///
/// # Panics
///
/// Panics when `index.len() != metric.len()`.
pub fn max_cluster_size_indexed_budgeted<M: FiniteMetric>(
    metric: &M,
    index: &ClusterIndex,
    l: f64,
    meter: &mut WorkMeter,
) -> Budgeted<usize> {
    let _span = bcc_obs::span!("core.max_cluster_size_indexed");
    bcc_obs::inc!("core.index.probes");
    assert_eq!(metric.len(), index.len(), "index does not cover the metric");
    let n = metric.len();
    if n == 0 {
        return Budgeted::Done(0);
    }
    if meter.exhausted() {
        return Budgeted::Exhausted {
            pairs_done: meter.used(),
            best_partial: 1,
        };
    }
    let order = rows_by_reach(index, n, l);
    let mut best = 1usize;
    let mut block = 0usize;
    macro_rules! step {
        () => {
            block += 1;
            if block == BUDGET_BLOCK {
                block = 0;
                if !meter.charge(BUDGET_BLOCK as u64) {
                    return Budgeted::Exhausted {
                        pairs_done: meter.used(),
                        best_partial: best,
                    };
                }
            }
        };
    }
    for &(reach, p) in &order {
        step!();
        if reach <= best {
            break;
        }
        let (ds, qids) = index.row(p);
        let mut ub_p = reach;
        for pos in (0..reach).rev() {
            step!();
            if pos + 1 < reach && ds[pos] < ds[pos + 1] {
                ub_p = pos + 1;
            }
            if ub_p <= best {
                break;
            }
            let q = index
                .slot(qids[pos])
                .expect("row entries are index members");
            if q == p {
                continue;
            }
            let dpq = ds[pos];
            if index.count_within(q, dpq) <= best {
                continue;
            }
            let count = pair_count(metric, p, q, dpq);
            if count > best {
                best = count;
            }
        }
    }
    meter.charge(block as u64);
    Budgeted::Done(best)
}

/// Rows paired with their `l`-ball size, sorted descending by reach (ties
/// broken by ascending slot — deterministic).
fn rows_by_reach(index: &ClusterIndex, n: usize, l: f64) -> Vec<(usize, usize)> {
    let mut order: Vec<(usize, usize)> = (0..n).map(|p| (index.count_within(p, l), p)).collect();
    order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    order
}

/// Scans row `p`'s `l`-prefix descending by distance, tightening `best`
/// with exact pair counts; `reach` is `|B(p, l)|`. Both endpoint ball
/// bounds are applied before counting, and the walk stops as soon as the
/// row's own bound can no longer beat `best`.
fn scan_row_max<M: FiniteMetric>(
    metric: &M,
    index: &ClusterIndex,
    p: usize,
    reach: usize,
    mut best: usize,
) -> usize {
    let (ds, qids) = index.row(p);
    // `ub_p` = |B(p, ds[pos])|: within a tie run it is the run's end.
    let mut ub_p = reach;
    for pos in (0..reach).rev() {
        if pos + 1 < reach && ds[pos] < ds[pos + 1] {
            ub_p = pos + 1;
        }
        if ub_p <= best {
            break;
        }
        let q = index
            .slot(qids[pos])
            .expect("row entries are index members");
        if q == p {
            continue;
        }
        let dpq = ds[pos];
        if index.count_within(q, dpq) <= best {
            continue;
        }
        let count = pair_count(metric, p, q, dpq);
        if count > best {
            best = count;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_cluster::{find_cluster, max_cluster_size};
    use bcc_metric::DistanceMatrix;

    fn line(pos: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs())
    }

    fn star(radii: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(radii.len(), |i, j| radii[i] + radii[j])
    }

    #[test]
    fn count_within_matches_linear_scan() {
        let d = line(&[0.0, 1.0, 2.5, 2.5, 7.0]);
        let idx = ClusterIndex::from_metric(&d);
        for p in 0..d.len() {
            for l in [0.0, 0.5, 1.0, 2.5, 3.0, 7.0, 100.0] {
                let linear = (0..d.len()).filter(|&x| d.get(p, x) <= l).count();
                assert_eq!(idx.count_within(p, l), linear, "p={p} l={l}");
            }
        }
    }

    #[test]
    fn rows_are_sorted_canonically() {
        // Equal distances must tie-break by ascending id.
        let d = star(&[1.0, 1.0, 1.0, 5.0]);
        let idx = ClusterIndex::from_metric(&d);
        let (ds, ids) = idx.row(0);
        assert_eq!(ids[0], 0, "self entry first at distance 0");
        assert_eq!(ds[0], 0.0);
        assert_eq!(&ids[1..3], &[1, 2], "ties in ascending id order");
    }

    #[test]
    fn indexed_find_cluster_matches_sweep() {
        let spaces = [
            line(&[0.0, 2.0, 3.0, 7.0, 8.0, 8.5, 15.0]),
            star(&[1.0, 1.0, 1.0, 50.0, 2.0]),
            line(&[0.0, 10.0, 20.0, 30.0]),
        ];
        for d in &spaces {
            let idx = ClusterIndex::from_metric(d);
            for k in 1..=d.len() + 1 {
                for l in [0.5, 1.0, 2.0, 4.0, 6.0, 10.0, 20.0, 100.0] {
                    assert_eq!(
                        find_cluster_indexed(d, &idx, k, l),
                        find_cluster(d, k, l),
                        "k={k} l={l}"
                    );
                    assert_eq!(
                        find_cluster_indexed_par(d, &idx, k, l),
                        find_cluster(d, k, l),
                        "par k={k} l={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_max_cluster_size_matches_sweep() {
        let spaces = [
            line(&[0.0, 1.0, 2.0, 3.0, 10.0]),
            line(&[0.0, 2.0, 3.0, 7.0, 8.0, 8.5, 15.0]),
            star(&[1.0, 1.0, 1.0, 5.0, 2.0, 2.0]),
        ];
        for d in &spaces {
            let idx = ClusterIndex::from_metric(d);
            for l in [0.1, 0.5, 1.0, 1.5, 3.0, 4.0, 6.5, 15.0, 100.0] {
                assert_eq!(
                    max_cluster_size_indexed(d, &idx, l),
                    max_cluster_size(d, l),
                    "l={l}"
                );
                assert_eq!(
                    max_cluster_size_indexed_par(d, &idx, l),
                    max_cluster_size(d, l),
                    "par l={l}"
                );
            }
        }
    }

    #[test]
    fn indexed_edge_cases() {
        let empty = DistanceMatrix::new(0);
        let idx = ClusterIndex::from_metric(&empty);
        assert_eq!(find_cluster_indexed(&empty, &idx, 2, 1.0), None);
        assert_eq!(max_cluster_size_indexed(&empty, &idx, 1.0), 0);

        let single = DistanceMatrix::new(1);
        let idx = ClusterIndex::from_metric(&single);
        assert_eq!(find_cluster_indexed(&single, &idx, 1, 1.0), Some(vec![0]));
        assert_eq!(max_cluster_size_indexed(&single, &idx, 1.0), 1);

        let d = star(&[1.0, 1.0]);
        let idx = ClusterIndex::from_metric(&d);
        assert_eq!(find_cluster_indexed(&d, &idx, 3, 100.0), None);
        assert_eq!(find_cluster_indexed(&d, &idx, 0, 1.0), None);
        assert_eq!(max_cluster_size_indexed(&d, &idx, 0.5), 1);
    }

    #[test]
    fn budgeted_indexed_matches_unbudgeted_when_not_exhausted() {
        let d = line(&[0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 20.0]);
        let idx = ClusterIndex::from_metric(&d);
        for k in 1..=d.len() {
            for l in [0.5, 2.0, 3.0, 5.0, 100.0] {
                let mut meter = WorkMeter::unlimited();
                assert_eq!(
                    find_cluster_indexed_budgeted(&d, &idx, k, l, &mut meter),
                    Budgeted::Done(find_cluster_indexed(&d, &idx, k, l)),
                    "k={k} l={l}"
                );
            }
        }
        for l in [0.5, 2.0, 3.0, 5.0, 100.0] {
            let mut meter = WorkMeter::unlimited();
            assert_eq!(
                max_cluster_size_indexed_budgeted(&d, &idx, l, &mut meter),
                Budgeted::Done(max_cluster_size_indexed(&d, &idx, l))
            );
        }
    }

    #[test]
    fn budgeted_indexed_cut_is_deterministic_and_block_aligned() {
        let pos: Vec<f64> = (0..40).map(|i| i as f64 * 10.0).collect();
        let d = line(&pos);
        let idx = ClusterIndex::from_metric(&d);
        let mut a = WorkMeter::new(BUDGET_BLOCK as u64);
        let mut b = WorkMeter::new(BUDGET_BLOCK as u64);
        let ra = find_cluster_indexed_budgeted(&d, &idx, 3, 5.0, &mut a);
        let rb = find_cluster_indexed_budgeted(&d, &idx, 3, 5.0, &mut b);
        assert_eq!(ra, rb);
        assert_eq!(a.used(), b.used());
        if let Budgeted::Exhausted { pairs_done, .. } = ra {
            assert_eq!(
                pairs_done % BUDGET_BLOCK as u64,
                0,
                "cuts land on block boundaries"
            );
        } else {
            panic!("expected exhaustion, got {ra:?}");
        }
        // An already-spent meter refuses immediately.
        let mut spent = WorkMeter::new(0);
        spent.charge(1);
        assert!(find_cluster_indexed_budgeted(&d, &idx, 3, 5.0, &mut spent).is_exhausted());
        assert!(max_cluster_size_indexed_budgeted(&d, &idx, 5.0, &mut spent).is_exhausted());
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        let pos = [0.0f64, 2.0, 3.0, 7.0, 8.0];
        let dist = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        let mut idx = ClusterIndex::empty(pos.len());
        for i in 0..pos.len() as u32 {
            idx.apply_churn(&[], &[i], dist).unwrap();
            let members: Vec<u32> = (0..=i).collect();
            let fresh = ClusterIndex::build(pos.len(), &members, dist);
            assert_eq!(idx.digest(), fresh.digest(), "after inserting {i}");
        }
        assert_eq!(idx.stats().full_builds, 0, "grown purely incrementally");
        assert_eq!(idx.stats().incremental_updates, pos.len() as u64);
    }

    #[test]
    fn incremental_remove_and_update_match_rebuild() {
        let pos = [0.0f64, 2.0, 3.0, 7.0, 8.0, 8.5];
        let base = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        let all: Vec<u32> = (0..pos.len() as u32).collect();
        let mut idx = ClusterIndex::build(pos.len(), &all, base);

        // Remove host 2; membership {0,1,3,4,5}.
        idx.apply_churn(&[2], &[], base).unwrap();
        let fresh = ClusterIndex::build(pos.len(), &[0, 1, 3, 4, 5], base);
        assert_eq!(idx.digest(), fresh.digest());
        assert_eq!(idx.ids(), &[0, 1, 3, 4, 5]);
        assert!(idx.slot(2).is_none());

        // Host 4 "re-embeds" to a new position; host 2 rejoins, both in
        // one delta — the shape a leave-with-orphans produces.
        let moved = [0.0f64, 2.0, 3.5, 7.0, 1.0, 8.5];
        let shifted = |a: u32, b: u32| (moved[a as usize] - moved[b as usize]).abs();
        idx.apply_churn(&[], &[2, 4], shifted).unwrap();
        let fresh = ClusterIndex::build(pos.len(), &all, shifted);
        assert_eq!(idx.digest(), fresh.digest());

        // The edited index answers queries identically to one built fresh.
        let d = DistanceMatrix::from_fn(pos.len(), |i, j| shifted(i as u32, j as u32));
        for l in [0.5, 1.5, 3.0, 9.0] {
            assert_eq!(
                max_cluster_size_indexed(&d, &idx, l),
                max_cluster_size(&d, l),
                "l={l}"
            );
        }
    }

    #[test]
    fn digest_is_history_independent() {
        let pos = [0.0f64, 1.0, 4.0, 4.5, 9.0];
        let dist = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        // Path A: build {0,1,2,3,4} then remove 3.
        let mut a = ClusterIndex::build(pos.len(), &[0, 1, 2, 3, 4], dist);
        a.apply_churn(&[3], &[], dist).unwrap();
        // Path B: grow {0,2} then {1,4} incrementally.
        let mut b = ClusterIndex::empty(pos.len());
        b.apply_churn(&[], &[0, 2], dist).unwrap();
        b.apply_churn(&[], &[4, 1], dist).unwrap();
        // Path C: from scratch.
        let c = ClusterIndex::build(pos.len(), &[0, 1, 2, 4], dist);
        assert_eq!(a.digest(), c.digest());
        assert_eq!(b.digest(), c.digest());
        // Different membership digests differ.
        let other = ClusterIndex::build(pos.len(), &[0, 1, 2, 3], dist);
        assert_ne!(c.digest(), other.digest());
    }

    #[test]
    fn from_parts_round_trips_digest_without_builds() {
        let pos = [0.0f64, 2.0, 3.0, 7.0, 8.0, 8.5];
        let dist = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        let mut idx = ClusterIndex::build(pos.len(), &[0, 1, 2, 3, 4, 5], dist);
        idx.apply_churn(&[2], &[], dist).unwrap();

        let parts: Vec<(Vec<f64>, Vec<u32>)> = (0..idx.len())
            .map(|s| {
                let (d, id) = idx.row(s);
                (d.to_vec(), id.to_vec())
            })
            .collect();
        let restored = ClusterIndex::from_parts(idx.universe(), idx.ids().to_vec(), parts).unwrap();
        assert_eq!(restored.digest(), idx.digest());
        assert_eq!(restored.ids(), idx.ids());
        assert_eq!(restored.stats().full_builds, 0, "a restore is not a build");
        assert_eq!(restored.stats().incremental_updates, 0);
        // Restored index keeps answering incrementally.
        let mut restored = restored;
        restored.apply_churn(&[], &[2], dist).unwrap();
        let mut live = idx;
        live.apply_churn(&[], &[2], dist).unwrap();
        assert_eq!(restored.digest(), live.digest());
    }

    #[test]
    fn from_parts_rejects_malformed_rows() {
        let mk = || {
            let pos = [0.0f64, 2.0, 5.0];
            let dist = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
            let idx = ClusterIndex::build(3, &[0, 1, 2], dist);
            let parts: Vec<(Vec<f64>, Vec<u32>)> = (0..idx.len())
                .map(|s| {
                    let (d, id) = idx.row(s);
                    (d.to_vec(), id.to_vec())
                })
                .collect();
            (idx.ids().to_vec(), parts)
        };

        let (ids, parts) = mk();
        assert!(ClusterIndex::from_parts(3, ids, parts).is_ok());

        // Unsorted ids.
        let (_, parts) = mk();
        assert!(ClusterIndex::from_parts(3, vec![1, 0, 2], parts).is_err());

        // Entry order violation.
        let (ids, mut parts) = mk();
        parts[0].0.swap(1, 2);
        parts[0].1.swap(1, 2);
        let err = ClusterIndex::from_parts(3, ids, parts).unwrap_err();
        assert!(err.contains("canonical"), "{err}");

        // Non-member reference.
        let (ids, mut parts) = mk();
        parts[1].1[2] = 9;
        assert!(ClusterIndex::from_parts(16, ids, parts).is_err());

        // Duplicate member in a row.
        let (ids, mut parts) = mk();
        parts[2].1[1] = parts[2].1[0];
        parts[2].0[1] = parts[2].0[0];
        assert!(ClusterIndex::from_parts(3, ids, parts).is_err());

        // Row count mismatch.
        let (ids, mut parts) = mk();
        parts.pop();
        assert!(ClusterIndex::from_parts(3, ids, parts).is_err());

        // NaN distance.
        let (ids, mut parts) = mk();
        parts[0].0[2] = f64::NAN;
        assert!(ClusterIndex::from_parts(3, ids, parts).is_err());
    }

    #[test]
    fn invalid_churn_is_rejected_without_mutation() {
        let pos = [0.0f64, 2.0, 5.0];
        let dist = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        let mut idx = ClusterIndex::build(3, &[0, 1, 2], dist);
        let digest = idx.digest();
        let stats = idx.stats();

        // Removing a non-member (in-universe but never joined a 4-universe
        // sibling, and plain absent here).
        let mut empty = ClusterIndex::empty(4);
        assert_eq!(
            empty.apply_churn(&[1], &[], |_, _| 1.0),
            Err(IndexError::NotAMember(1))
        );
        assert_eq!(empty.stats(), IndexStats::default(), "rejection is free");

        // Out-of-universe ids on either side of the delta.
        assert_eq!(
            idx.apply_churn(&[7], &[], dist),
            Err(IndexError::OutOfUniverse { id: 7, universe: 3 })
        );
        assert_eq!(
            idx.apply_churn(&[], &[3], dist),
            Err(IndexError::OutOfUniverse { id: 3, universe: 3 })
        );
        // An Err leaves the index bit-identical: digest, membership, stats.
        assert_eq!(idx.digest(), digest);
        assert_eq!(idx.stats(), stats);
        assert_eq!(idx.ids(), &[0, 1, 2]);

        let shown = format!("{}", IndexError::NotAMember(1));
        assert!(shown.contains("not an index member"), "{shown}");
        let shown = format!("{}", IndexError::OutOfUniverse { id: 3, universe: 3 });
        assert!(shown.contains("outside universe"), "{shown}");
    }

    #[test]
    fn removal_and_reembedding_in_one_delta_keeps_existing_members() {
        // A leave with orphans produces removed = [x] plus reembedded ids
        // that are *already members*: the survivor filter must not confuse
        // the two classes of touched ids and drop the re-embedded hosts.
        let pos = [0.0f64, 2.0, 3.0, 7.0, 8.0];
        let base = |a: u32, b: u32| (pos[a as usize] - pos[b as usize]).abs();
        let all: Vec<u32> = (0..pos.len() as u32).collect();
        let mut idx = ClusterIndex::build(pos.len(), &all, base);

        let moved = [0.0f64, 2.0, 3.5, 6.0, 8.0];
        let shifted = |a: u32, b: u32| (moved[a as usize] - moved[b as usize]).abs();
        idx.apply_churn(&[4], &[2, 3], shifted).unwrap();
        assert_eq!(idx.ids(), &[0, 1, 2, 3], "re-embedded members survive");
        let fresh = ClusterIndex::build(pos.len(), &[0, 1, 2, 3], shifted);
        assert_eq!(idx.digest(), fresh.digest());
    }

    #[test]
    #[should_panic(expected = "index does not cover the metric")]
    fn mismatched_index_is_rejected() {
        let d = line(&[0.0, 1.0, 2.0]);
        let idx = ClusterIndex::from_metric(&line(&[0.0, 1.0]));
        let _ = find_cluster_indexed(&d, &idx, 2, 1.0);
    }
}
