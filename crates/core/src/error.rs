use std::fmt;

/// Errors produced by clustering queries and protocol state updates.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The query's size constraint was below the problem's minimum
    /// (`k >= 2` per the paper's problem statement).
    InvalidSizeConstraint {
        /// The offending `k`.
        k: usize,
    },
    /// The query's diameter/bandwidth constraint was not positive and finite.
    InvalidDiameterConstraint {
        /// The offending `l` (distance domain).
        l: f64,
    },
    /// The query's bandwidth constraint was not positive and finite
    /// (bandwidth domain — `b <= 0`, NaN or infinite).
    InvalidBandwidthConstraint {
        /// The offending `b` (bandwidth domain).
        bandwidth: f64,
    },
    /// A bandwidth constraint was above every configured bandwidth class, so
    /// no routing-table column can answer it.
    NoMatchingClass {
        /// The requested minimum bandwidth.
        bandwidth: f64,
    },
    /// A protocol message referenced a neighbor this node does not have.
    UnknownNeighbor {
        /// The claimed neighbor index.
        neighbor: usize,
    },
    /// The host a query was submitted at is crashed or unreachable.
    NodeUnavailable {
        /// The unavailable host index.
        node: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidSizeConstraint { k } => {
                write!(f, "cluster size constraint must be at least 2, got {k}")
            }
            ClusterError::InvalidDiameterConstraint { l } => {
                write!(
                    f,
                    "diameter constraint must be positive and finite, got {l}"
                )
            }
            ClusterError::InvalidBandwidthConstraint { bandwidth } => {
                write!(
                    f,
                    "bandwidth constraint must be positive and finite, got {bandwidth}"
                )
            }
            ClusterError::NoMatchingClass { bandwidth } => {
                write!(f, "no bandwidth class at or above {bandwidth}")
            }
            ClusterError::UnknownNeighbor { neighbor } => {
                write!(f, "unknown neighbor n{neighbor}")
            }
            ClusterError::NodeUnavailable { node } => {
                write!(f, "host n{node} is unavailable (crashed or unreachable)")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// The typed rejection a query entry point returns for invalid inputs
/// (`k < 2`, non-positive `b`, unknown submit node, …) — an alias naming
/// [`ClusterError`]'s role at the library boundary, mirroring the
/// `ConfigError` pattern used at construction boundaries.
pub type QueryError = ClusterError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ClusterError::InvalidSizeConstraint { k: 1 }
            .to_string()
            .contains("at least 2"));
        assert!(ClusterError::InvalidDiameterConstraint { l: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(ClusterError::InvalidBandwidthConstraint { bandwidth: -2.0 }
            .to_string()
            .contains("-2"));
        assert!(ClusterError::NoMatchingClass { bandwidth: 500.0 }
            .to_string()
            .contains("500"));
        assert!(ClusterError::UnknownNeighbor { neighbor: 3 }
            .to_string()
            .contains("n3"));
        assert!(ClusterError::NodeUnavailable { node: 4 }
            .to_string()
            .contains("n4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}
