//! Bipartite maximum matching and maximum independent set.
//!
//! The Euclidean baseline clustering (see [`crate::find_cluster_euclidean`])
//! reduces each
//! candidate lune to a bipartite *conflict* graph and needs its maximum
//! independent set. By König's theorem, in a bipartite graph
//! `|MIS| = |V| − |maximum matching|`, and the MIS itself is recovered from
//! the alternating-path structure of a maximum matching. The matching is
//! computed with Hopcroft–Karp in `O(E √V)`.

/// A bipartite graph with `left` and `right` vertex sets and edges from left
/// to right.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    left: usize,
    right: usize,
    adj: Vec<Vec<usize>>, // adj[l] = right neighbors of left vertex l
}

/// Result of [`BipartiteGraph::max_independent_set`]: the chosen vertices on
/// each side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndependentSet {
    /// Indices of chosen left vertices.
    pub left: Vec<usize>,
    /// Indices of chosen right vertices.
    pub right: Vec<usize>,
}

impl IndependentSet {
    /// Total number of chosen vertices.
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Returns `true` when no vertex was chosen.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }
}

const NIL: usize = usize::MAX;

impl BipartiteGraph {
    /// Creates an empty bipartite graph with the given side sizes.
    pub fn new(left: usize, right: usize) -> Self {
        BipartiteGraph {
            left,
            right,
            adj: vec![Vec::new(); left],
        }
    }

    /// Adds an edge between left vertex `l` and right vertex `r`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.left, "left index out of bounds");
        assert!(r < self.right, "right index out of bounds");
        self.adj[l].push(r);
    }

    /// Number of left vertices.
    pub fn left_len(&self) -> usize {
        self.left
    }

    /// Number of right vertices.
    pub fn right_len(&self) -> usize {
        self.right
    }

    /// Size of a maximum matching (Hopcroft–Karp).
    pub fn max_matching(&self) -> usize {
        self.hopcroft_karp().0
    }

    /// Hopcroft–Karp: returns `(matching size, match_l, match_r)` where
    /// `match_l[l]` is the right partner of `l` (or `NIL`).
    fn hopcroft_karp(&self) -> (usize, Vec<usize>, Vec<usize>) {
        let mut match_l = vec![NIL; self.left];
        let mut match_r = vec![NIL; self.right];
        let mut dist = vec![0usize; self.left];
        let mut matching = 0;

        loop {
            // BFS layers from free left vertices.
            let mut queue = std::collections::VecDeque::new();
            for l in 0..self.left {
                if match_l[l] == NIL {
                    dist[l] = 0;
                    queue.push_back(l);
                } else {
                    dist[l] = usize::MAX;
                }
            }
            let mut found_augmenting = false;
            while let Some(l) = queue.pop_front() {
                for &r in &self.adj[l] {
                    let next = match_r[r];
                    if next == NIL {
                        found_augmenting = true;
                    } else if dist[next] == usize::MAX {
                        dist[next] = dist[l] + 1;
                        queue.push_back(next);
                    }
                }
            }
            if !found_augmenting {
                break;
            }
            // DFS for vertex-disjoint shortest augmenting paths.
            fn dfs(
                l: usize,
                adj: &[Vec<usize>],
                dist: &mut [usize],
                match_l: &mut [usize],
                match_r: &mut [usize],
            ) -> bool {
                for i in 0..adj[l].len() {
                    let r = adj[l][i];
                    let next = match_r[r];
                    if next == NIL
                        || (dist[next] == dist[l] + 1 && dfs(next, adj, dist, match_l, match_r))
                    {
                        match_l[l] = r;
                        match_r[r] = l;
                        return true;
                    }
                }
                dist[l] = usize::MAX;
                false
            }
            for l in 0..self.left {
                if match_l[l] == NIL && dfs(l, &self.adj, &mut dist, &mut match_l, &mut match_r) {
                    matching += 1;
                }
            }
        }
        (matching, match_l, match_r)
    }

    /// Maximum independent set via König's theorem.
    ///
    /// Build a maximum matching; let `Z` be the left-free vertices plus
    /// everything reachable from them by alternating paths (unmatched edge
    /// left→right, matched edge right→left). The minimum vertex cover is
    /// `(L \ Z) ∪ (R ∩ Z)`, and the MIS is its complement:
    /// `(L ∩ Z) ∪ (R \ Z)`.
    pub fn max_independent_set(&self) -> IndependentSet {
        let (_, match_l, match_r) = self.hopcroft_karp();
        let mut in_z_left = vec![false; self.left];
        let mut in_z_right = vec![false; self.right];
        let mut queue = std::collections::VecDeque::new();
        for l in 0..self.left {
            if match_l[l] == NIL {
                in_z_left[l] = true;
                queue.push_back(l);
            }
        }
        while let Some(l) = queue.pop_front() {
            for &r in &self.adj[l] {
                if !in_z_right[r] && match_l[l] != r {
                    in_z_right[r] = true;
                    let back = match_r[r];
                    if back != NIL && !in_z_left[back] {
                        in_z_left[back] = true;
                        queue.push_back(back);
                    }
                }
            }
        }
        IndependentSet {
            left: (0..self.left).filter(|&l| in_z_left[l]).collect(),
            right: (0..self.right).filter(|&r| !in_z_right[r]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(left: usize, right: usize, edges: &[(usize, usize)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(left, right);
        for &(l, r) in edges {
            g.add_edge(l, r);
        }
        g
    }

    /// Verify an independent set is actually independent.
    fn assert_independent(g: &BipartiteGraph, s: &IndependentSet) {
        for &l in &s.left {
            for &r in &g.adj[l] {
                assert!(
                    !s.right.contains(&r),
                    "edge ({l},{r}) inside independent set"
                );
            }
        }
    }

    #[test]
    fn empty_graph_mis_is_everything() {
        let g = graph(3, 4, &[]);
        let s = g.max_independent_set();
        assert_eq!(s.len(), 7);
        assert_eq!(g.max_matching(), 0);
    }

    #[test]
    fn single_edge() {
        let g = graph(1, 1, &[(0, 0)]);
        assert_eq!(g.max_matching(), 1);
        let s = g.max_independent_set();
        assert_eq!(s.len(), 1);
        assert_independent(&g, &s);
    }

    #[test]
    fn perfect_matching_path() {
        // Path l0-r0, l1-r0, l1-r1: matching 2, MIS 2.
        let g = graph(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        assert_eq!(g.max_matching(), 2);
        let s = g.max_independent_set();
        assert_eq!(s.len(), 2);
        assert_independent(&g, &s);
    }

    #[test]
    fn complete_bipartite() {
        // K_{3,4}: matching 3, MIS = max(3, 4) = 4.
        let mut g = BipartiteGraph::new(3, 4);
        for l in 0..3 {
            for r in 0..4 {
                g.add_edge(l, r);
            }
        }
        assert_eq!(g.max_matching(), 3);
        let s = g.max_independent_set();
        assert_eq!(s.len(), 4);
        assert_independent(&g, &s);
    }

    #[test]
    fn koenig_identity_holds() {
        // |MIS| = |V| − |max matching| on a few graphs.
        type Case = (usize, usize, Vec<(usize, usize)>);
        let cases: Vec<Case> = vec![
            (4, 4, vec![(0, 0), (0, 1), (1, 1), (2, 2), (3, 3), (3, 0)]),
            (5, 3, vec![(0, 0), (1, 0), (2, 1), (3, 1), (4, 2)]),
            (3, 5, vec![(0, 0), (0, 1), (0, 2), (1, 3), (2, 4), (2, 3)]),
        ];
        for (l, r, edges) in cases {
            let g = graph(l, r, &edges);
            let s = g.max_independent_set();
            assert_eq!(s.len(), l + r - g.max_matching());
            assert_independent(&g, &s);
        }
    }

    #[test]
    fn augmenting_path_needed() {
        // Greedy would match l0-r0 and block l1; Hopcroft–Karp augments.
        let g = graph(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        assert_eq!(g.max_matching(), 2);
    }

    #[test]
    fn duplicate_edges_harmless() {
        let g = graph(1, 1, &[(0, 0), (0, 0)]);
        assert_eq!(g.max_matching(), 1);
        assert_eq!(g.max_independent_set().len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn edge_bounds_checked() {
        BipartiteGraph::new(1, 1).add_edge(0, 1);
    }

    #[test]
    fn mis_on_random_graphs_verified() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let l = rng.gen_range(1..8);
            let r = rng.gen_range(1..8);
            let mut g = BipartiteGraph::new(l, r);
            for li in 0..l {
                for ri in 0..r {
                    if rng.gen_bool(0.3) {
                        g.add_edge(li, ri);
                    }
                }
            }
            let s = g.max_independent_set();
            assert_independent(&g, &s);
            assert_eq!(s.len(), l + r - g.max_matching());
            // MIS at least max(l, r) minus... sanity: at least the larger
            // side can't be beaten by an empty answer.
            assert!(s.len() >= l.max(r).saturating_sub(g.max_matching()));
        }
    }
}
