//! Bandwidth classes — the quantized query constraints of the decentralized
//! protocol.
//!
//! As a tradeoff for decentralization (Sec. III-B3), users pick the
//! bandwidth constraint `b` from a predetermined set of *bandwidth classes*
//! rather than choosing arbitrary values; this bounds the size of every
//! node's cluster routing table at `|neighbors| × |classes|`. A query with
//! arbitrary `b` is *snapped up* to the next class at or above it: a cluster
//! whose pairwise bandwidth meets the higher class also meets `b`, so
//! snapping up preserves correctness (it can only make queries harder).

use bcc_metric::RationalTransform;
use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// An ordered set of bandwidth classes (Mbps) with their distance-domain
/// images under a fixed rational transform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthClasses {
    bandwidths: Vec<f64>, // ascending
    distances: Vec<f64>,  // descending (same order as bandwidths)
    transform: RationalTransform,
}

impl BandwidthClasses {
    /// Creates a class set from bandwidth values (any order, duplicates
    /// removed) and the transform that converts constraints to distances.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidths` is empty or contains non-positive or
    /// non-finite values.
    pub fn new(mut bandwidths: Vec<f64>, transform: RationalTransform) -> Self {
        assert!(
            !bandwidths.is_empty(),
            "at least one bandwidth class required"
        );
        assert!(
            bandwidths.iter().all(|b| b.is_finite() && *b > 0.0),
            "bandwidth classes must be positive and finite"
        );
        bandwidths.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        bandwidths.dedup();
        let distances = bandwidths
            .iter()
            .map(|&b| transform.to_distance(b))
            .collect();
        BandwidthClasses {
            bandwidths,
            distances,
            transform,
        }
    }

    /// Evenly spaced classes covering `[lo, hi]` with `count` entries —
    /// convenient for matching an experiment's query range.
    ///
    /// # Panics
    ///
    /// Panics if `count < 1` or the range is invalid.
    pub fn linspace(lo: f64, hi: f64, count: usize, transform: RationalTransform) -> Self {
        assert!(count >= 1, "need at least one class");
        assert!(
            lo > 0.0 && hi >= lo && hi.is_finite(),
            "invalid class range"
        );
        let vals = if count == 1 {
            vec![lo]
        } else {
            (0..count)
                .map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64)
                .collect()
        };
        BandwidthClasses::new(vals, transform)
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.bandwidths.len()
    }

    /// Returns `true` if there are no classes (never; construction forbids
    /// it).
    pub fn is_empty(&self) -> bool {
        self.bandwidths.is_empty()
    }

    /// The class bandwidths in ascending order.
    pub fn bandwidths(&self) -> &[f64] {
        &self.bandwidths
    }

    /// The distance-domain constraints `l = C / b`, in the same order as
    /// [`BandwidthClasses::bandwidths`] (hence descending).
    pub fn distances(&self) -> &[f64] {
        &self.distances
    }

    /// The transform the classes were built with.
    pub fn transform(&self) -> RationalTransform {
        self.transform
    }

    /// Index of the smallest class at or above `b` (snap *up*).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidBandwidthConstraint`] when `b` is not
    /// positive and finite (a non-positive or NaN constraint would silently
    /// snap to the lowest class and answer garbage), and
    /// [`ClusterError::NoMatchingClass`] when `b` is above every class.
    pub fn snap_up(&self, b: f64) -> Result<usize, ClusterError> {
        if !b.is_finite() || b <= 0.0 {
            return Err(ClusterError::InvalidBandwidthConstraint { bandwidth: b });
        }
        let idx = self.bandwidths.partition_point(|&v| v < b);
        if idx == self.bandwidths.len() {
            Err(ClusterError::NoMatchingClass { bandwidth: b })
        } else {
            Ok(idx)
        }
    }

    /// The distance constraint of class `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn distance_of(&self, idx: usize) -> f64 {
        self.distances[idx]
    }

    /// The bandwidth of class `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn bandwidth_of(&self, idx: usize) -> f64 {
        self.bandwidths[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> BandwidthClasses {
        BandwidthClasses::new(vec![30.0, 10.0, 50.0, 30.0], RationalTransform::new(100.0))
    }

    #[test]
    fn sorted_and_deduped() {
        let c = classes();
        assert_eq!(c.bandwidths(), &[10.0, 30.0, 50.0]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn distances_match_transform() {
        let c = classes();
        assert_eq!(c.distances(), &[10.0, 100.0 / 30.0, 2.0]);
        assert_eq!(c.distance_of(2), 2.0);
        assert_eq!(c.bandwidth_of(0), 10.0);
    }

    #[test]
    fn snap_up_behaviour() {
        let c = classes();
        assert!(matches!(
            c.snap_up(0.0),
            Err(ClusterError::InvalidBandwidthConstraint { .. })
        ));
        assert!(matches!(
            c.snap_up(-4.0),
            Err(ClusterError::InvalidBandwidthConstraint { .. })
        ));
        assert!(matches!(
            c.snap_up(f64::NAN),
            Err(ClusterError::InvalidBandwidthConstraint { .. })
        ));
        assert_eq!(c.snap_up(5.0).unwrap(), 0);
        assert_eq!(c.snap_up(10.0).unwrap(), 0);
        assert_eq!(c.snap_up(10.1).unwrap(), 1);
        assert_eq!(c.snap_up(30.0).unwrap(), 1);
        assert_eq!(c.snap_up(49.0).unwrap(), 2);
        assert!(matches!(
            c.snap_up(50.1),
            Err(ClusterError::NoMatchingClass { .. })
        ));
    }

    #[test]
    fn snapping_up_is_conservative() {
        // A cluster built for the snapped class satisfies the original b.
        let c = classes();
        let b = 22.0;
        let idx = c.snap_up(b).unwrap();
        assert!(c.bandwidth_of(idx) >= b);
        // ...and in the distance domain the constraint is tighter.
        assert!(c.distance_of(idx) <= c.transform().distance_constraint(b));
    }

    #[test]
    fn linspace_covers_range() {
        let c = BandwidthClasses::linspace(15.0, 75.0, 13, RationalTransform::default());
        assert_eq!(c.len(), 13);
        assert_eq!(c.bandwidths()[0], 15.0);
        assert_eq!(*c.bandwidths().last().unwrap(), 75.0);
        // Every b in range snaps to a class within one step.
        let step = (75.0 - 15.0) / 12.0;
        for b in [15.0, 20.0, 44.4, 74.9, 75.0] {
            let idx = c.snap_up(b).unwrap();
            assert!(c.bandwidth_of(idx) - b <= step + 1e-9);
        }
    }

    #[test]
    fn linspace_single_class() {
        let c = BandwidthClasses::linspace(40.0, 40.0, 1, RationalTransform::default());
        assert_eq!(c.len(), 1);
        assert_eq!(c.snap_up(40.0).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_classes_rejected() {
        BandwidthClasses::new(vec![], RationalTransform::default());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_class_rejected() {
        BandwidthClasses::new(vec![10.0, 0.0], RationalTransform::default());
    }
}
