//! Algorithm 4: decentralized query processing.
//!
//! A query `(k, b)` enters at any node. The node snaps `b` up to a
//! bandwidth class, tries to answer from its own clustering space, and
//! otherwise forwards toward a neighbor whose CRT column promises a
//! large-enough cluster — never back toward the neighbor it came from, so
//! on the tree overlay the walk is a simple path and always terminates.

use bcc_metric::NodeId;
use serde::{Deserialize, Serialize};

use crate::classes::BandwidthClasses;
use crate::error::ClusterError;
use crate::find_cluster::{Budgeted, WorkMeter};
use crate::node::{ClusterNode, RoutePolicy};

/// A reusable description of one `(k, b)` cluster query and the node it
/// enters the overlay at — the unit of work the serving layer batches,
/// caches and routes.
///
/// Construction is cheap and unchecked; [`QueryRequest::validate`] performs
/// the library-boundary checks (`k >= 2`, positive finite `b` that some
/// class admits, known entry node) and returns the snapped class index, so
/// front ends can reject garbage with a typed [`QueryError`](crate::QueryError) before any
/// routing work happens.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Host the query is submitted at (entry node of the overlay walk).
    pub start: NodeId,
    /// Requested cluster size (`k >= 2`).
    pub k: usize,
    /// Requested minimum pairwise bandwidth (Mbps); snapped *up* to the
    /// next configured bandwidth class.
    pub bandwidth: f64,
}

impl QueryRequest {
    /// Creates a request; validation is deferred to
    /// [`QueryRequest::validate`].
    pub fn new(start: NodeId, k: usize, bandwidth: f64) -> Self {
        QueryRequest {
            start,
            k,
            bandwidth,
        }
    }

    /// Validates the request against a class set and a host population of
    /// `hosts` dense ids, returning the snapped bandwidth-class index.
    ///
    /// # Errors
    ///
    /// - [`ClusterError::InvalidSizeConstraint`] when `k < 2`;
    /// - [`ClusterError::InvalidBandwidthConstraint`] when `bandwidth` is
    ///   not positive and finite;
    /// - [`ClusterError::NoMatchingClass`] when `bandwidth` exceeds every
    ///   configured class;
    /// - [`ClusterError::UnknownNeighbor`] when `start` is outside
    ///   `0..hosts`.
    pub fn validate(
        &self,
        classes: &BandwidthClasses,
        hosts: usize,
    ) -> Result<usize, ClusterError> {
        if self.k < 2 {
            return Err(ClusterError::InvalidSizeConstraint { k: self.k });
        }
        let class_idx = classes.snap_up(self.bandwidth)?;
        if self.start.index() >= hosts {
            return Err(ClusterError::UnknownNeighbor {
                neighbor: self.start.index(),
            });
        }
        Ok(class_idx)
    }
}

/// The result of routing one query through the overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The cluster found, if any (host ids).
    pub cluster: Option<Vec<NodeId>>,
    /// Number of forwarding hops (0 when the entry node answered). Under
    /// [`process_query_resilient`] this is the total across all attempts.
    pub hops: usize,
    /// Every node that processed the query, in order (entry node first).
    /// Under [`process_query_resilient`] retries append to the same path,
    /// so the entry node reappears at each attempt boundary.
    pub path: Vec<NodeId>,
    /// How degraded the answer is after failures along the way. All-default
    /// (`Degradation::default()`) for a clean, fault-free run.
    pub degradation: Degradation,
}

impl QueryOutcome {
    /// `true` when a full cluster was returned.
    pub fn found(&self) -> bool {
        self.cluster.is_some()
    }

    /// `true` when the query ran without retries, dead neighbors or stale
    /// routing state.
    pub fn clean(&self) -> bool {
        self.degradation == Degradation::default()
    }
}

/// Failure-recovery accounting attached to every [`QueryOutcome`]: instead
/// of failing hard when the overlay is degraded, a resilient query reports
/// *how* degraded its answer is.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    /// Attempts issued after the first (0 = the first walk succeeded).
    pub retries: usize,
    /// Dead hosts encountered — and rerouted around — across all attempts.
    pub dead_encountered: usize,
    /// `true` when the walk followed aggregated state that proved stale:
    /// a CRT promise pointing at a dead host, or a locally-aggregated
    /// cluster containing crashed members.
    pub stale_state: bool,
    /// When no full `k`-cluster could be assembled: the largest live
    /// cluster (size ≥ 2) seen along the walk, as a best-effort answer.
    pub partial: Option<Vec<NodeId>>,
}

/// Retry/timeout/backoff budget for [`process_query_resilient`].
///
/// The simulator has no wall clock, so the timeout analogue is a *hop
/// budget*: an attempt that exceeds it is abandoned (as a real deployment
/// would abandon a query whose forwarding chain went quiet) and reissued
/// from the entry node with a budget grown by `backoff`. Dead hosts
/// discovered in one attempt stay blacklisted in the next, so retries
/// explore different paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Additional attempts after the first.
    pub max_retries: usize,
    /// Hop budget of the first attempt.
    pub initial_hop_budget: usize,
    /// Budget multiplier applied on every retry (≥ 1.0).
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            initial_hop_budget: 32,
            backoff: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Hop budget of the 0-based `attempt`:
    /// `initial_hop_budget · backoff^attempt`, saturating at `usize::MAX`.
    ///
    /// The product is computed in one shot instead of by repeated
    /// multiplication, and every overflow path — a non-finite product, a
    /// product beyond `usize::MAX`, an attempt count beyond `i32::MAX` —
    /// clamps to `usize::MAX` rather than wrapping, so arbitrarily large
    /// retry counts can only ever *widen* the budget.
    pub fn budget_for_attempt(&self, attempt: usize) -> usize {
        let base = self.initial_hop_budget.max(1) as f64;
        let factor = self.backoff.max(1.0);
        let exp = i32::try_from(attempt).unwrap_or(i32::MAX);
        let scaled = base * factor.powi(exp);
        if !scaled.is_finite() || scaled >= usize::MAX as f64 {
            usize::MAX
        } else {
            scaled as usize
        }
    }
}

/// Routes the query `(k, bandwidth)` starting at `start`.
///
/// `nodes` maps dense host ids to protocol state; `dist` is the predicted
/// distance oracle every node consults (labels / prediction tree).
///
/// # Errors
///
/// - [`ClusterError::InvalidSizeConstraint`] when `k < 2`.
/// - [`ClusterError::InvalidBandwidthConstraint`] when `bandwidth` is not
///   positive and finite.
/// - [`ClusterError::NoMatchingClass`] when `bandwidth` exceeds every
///   configured class.
/// - [`ClusterError::UnknownNeighbor`] when `start` is out of range.
pub fn process_query(
    nodes: &[ClusterNode],
    start: NodeId,
    k: usize,
    bandwidth: f64,
    classes: &BandwidthClasses,
    dist: impl FnMut(NodeId, NodeId) -> f64,
) -> Result<QueryOutcome, ClusterError> {
    process_query_with_policy(
        nodes,
        start,
        k,
        bandwidth,
        classes,
        dist,
        RoutePolicy::FirstFit,
    )
}

/// [`process_query`] with an explicit forwarding policy.
///
/// # Errors
///
/// Same as [`process_query`].
pub fn process_query_with_policy(
    nodes: &[ClusterNode],
    start: NodeId,
    k: usize,
    bandwidth: f64,
    classes: &BandwidthClasses,
    mut dist: impl FnMut(NodeId, NodeId) -> f64,
    policy: RoutePolicy,
) -> Result<QueryOutcome, ClusterError> {
    let class_idx = QueryRequest::new(start, k, bandwidth).validate(classes, nodes.len())?;

    let mut current = start;
    let mut previous: Option<NodeId> = None;
    let mut path = vec![start];
    let mut hops = 0;

    loop {
        let node = &nodes[current.index()];
        debug_assert_eq!(node.id(), current, "nodes must be indexed by id");
        if let Some(cluster) = node.answer_locally(k, class_idx, classes, &mut dist) {
            return Ok(QueryOutcome {
                cluster: Some(cluster),
                hops,
                path,
                degradation: Degradation::default(),
            });
        }
        match node.route_with_policy(k, class_idx, previous, policy) {
            Some(next) => {
                previous = Some(current);
                current = next;
                hops += 1;
                path.push(current);
                // Safety net: on a tree overlay the no-backtrack walk is a
                // simple path, so it can never exceed the node count.
                if hops > nodes.len() {
                    return Ok(QueryOutcome {
                        cluster: None,
                        hops,
                        path,
                        degradation: Degradation::default(),
                    });
                }
            }
            None => {
                return Ok(QueryOutcome {
                    cluster: None,
                    hops,
                    path,
                    degradation: Degradation::default(),
                })
            }
        }
    }
}

/// [`process_query`] answering each local probe through a per-node
/// [`crate::ClusterIndex`] over the clustering space
/// ([`ClusterNode::answer_locally_indexed`]) instead of the pair sweep.
///
/// The walk — validation, CRT gates, forwarding, hop accounting — is the
/// same code shape as [`process_query_with_policy`] with
/// [`RoutePolicy::FirstFit`], and the indexed local answer is bit-identical
/// to the swept one, so the outcome (cluster members, hops, path) matches
/// [`process_query`] exactly; only the local scan cost changes.
///
/// # Errors
///
/// Same as [`process_query`].
pub fn process_query_indexed(
    nodes: &[ClusterNode],
    start: NodeId,
    k: usize,
    bandwidth: f64,
    classes: &BandwidthClasses,
    mut dist: impl FnMut(NodeId, NodeId) -> f64,
) -> Result<QueryOutcome, ClusterError> {
    let class_idx = QueryRequest::new(start, k, bandwidth).validate(classes, nodes.len())?;

    let mut current = start;
    let mut previous: Option<NodeId> = None;
    let mut path = vec![start];
    let mut hops = 0;

    loop {
        let node = &nodes[current.index()];
        debug_assert_eq!(node.id(), current, "nodes must be indexed by id");
        if let Some(cluster) = node.answer_locally_indexed(k, class_idx, classes, &mut dist) {
            return Ok(QueryOutcome {
                cluster: Some(cluster),
                hops,
                path,
                degradation: Degradation::default(),
            });
        }
        match node.route_with_policy(k, class_idx, previous, RoutePolicy::FirstFit) {
            Some(next) => {
                previous = Some(current);
                current = next;
                hops += 1;
                path.push(current);
                // Safety net: on a tree overlay the no-backtrack walk is a
                // simple path, so it can never exceed the node count.
                if hops > nodes.len() {
                    return Ok(QueryOutcome {
                        cluster: None,
                        hops,
                        path,
                        degradation: Degradation::default(),
                    });
                }
            }
            None => {
                return Ok(QueryOutcome {
                    cluster: None,
                    hops,
                    path,
                    degradation: Degradation::default(),
                })
            }
        }
    }
}

/// [`process_query`] hardened against crashed hosts: Algorithm 4 with
/// retry, hop-budget timeouts and rerouting around dead anchor-tree
/// neighbors.
///
/// `alive` is the caller's liveness oracle (in the simulators: the fault
/// injector's crash set; in a deployment: failure detection). The walk:
///
/// 1. answers from the *live* part of each clustering space — stale
///    close-node records never put crashed hosts into an answer;
/// 2. probes the chosen next hop before forwarding; a dead next hop is
///    blacklisted and the node picks another eligible direction;
/// 3. abandons an attempt that exhausts its hop budget (the timeout
///    analogue) and reissues from the entry node with the budget scaled by
///    `retry.backoff`, keeping the blacklist — so retries route differently;
/// 4. never fails hard: when the budget is spent it still reports the best
///    live partial cluster seen, plus retry/staleness accounting, in
///    [`QueryOutcome::degradation`].
///
/// With a fault-free overlay (`alive` always true) the outcome is identical
/// to [`process_query_with_policy`] except for hop-budget truncation.
///
/// # Errors
///
/// The validation errors of [`process_query`], plus
/// [`ClusterError::NodeUnavailable`] when the entry node itself is dead.
#[allow(clippy::too_many_arguments)]
pub fn process_query_resilient(
    nodes: &[ClusterNode],
    start: NodeId,
    k: usize,
    bandwidth: f64,
    classes: &BandwidthClasses,
    dist: impl FnMut(NodeId, NodeId) -> f64,
    policy: RoutePolicy,
    retry: &RetryPolicy,
    alive: impl FnMut(NodeId) -> bool,
) -> Result<QueryOutcome, ClusterError> {
    let mut meter = WorkMeter::unlimited();
    match process_query_resilient_budgeted(
        nodes, start, k, bandwidth, classes, dist, policy, retry, alive, &mut meter,
    )? {
        Budgeted::Done(out) => Ok(out),
        // An unlimited meter never exhausts; the charge saturates below it.
        Budgeted::Exhausted { best_partial, .. } => Ok(best_partial),
    }
}

/// Folds a node-level partial into the degradation record, keeping the
/// largest live cluster seen anywhere along the walk.
fn keep_partial_of(deg: &mut Degradation, p: Option<Vec<NodeId>>) {
    if let Some(p) = p {
        if deg.partial.as_ref().is_none_or(|best| p.len() > best.len()) {
            deg.partial = Some(p);
        }
    }
}

/// [`process_query_resilient`] answering each node-local probe through a
/// per-node [`crate::ClusterIndex`] over the live clustering space
/// ([`ClusterNode::answer_locally_filtered_indexed`]) instead of the pair
/// sweep.
///
/// The walk — validation, retries, hop budgets, blacklisting, partial
/// accounting — is the exact code shape of [`process_query_resilient`]
/// with an unlimited meter, and the indexed local answer is bit-identical
/// to the swept one, so the outcome matches [`process_query_resilient`]
/// exactly for every input; only the local scan cost changes. This is the
/// default execution path of the `bcc-service` batch lanes.
///
/// # Errors
///
/// Same as [`process_query_resilient`].
#[allow(clippy::too_many_arguments)]
pub fn process_query_resilient_indexed(
    nodes: &[ClusterNode],
    start: NodeId,
    k: usize,
    bandwidth: f64,
    classes: &BandwidthClasses,
    mut dist: impl FnMut(NodeId, NodeId) -> f64,
    policy: RoutePolicy,
    retry: &RetryPolicy,
    mut alive: impl FnMut(NodeId) -> bool,
) -> Result<QueryOutcome, ClusterError> {
    let class_idx = QueryRequest::new(start, k, bandwidth).validate(classes, nodes.len())?;
    if !alive(start) {
        return Err(ClusterError::NodeUnavailable {
            node: start.index(),
        });
    }

    let mut deg = Degradation::default();
    let mut blacklist: Vec<NodeId> = Vec::new();
    let mut total_hops = 0;
    let mut full_path = Vec::new();

    for attempt in 0..=retry.max_retries {
        if attempt > 0 {
            deg.retries += 1;
        }
        let hop_budget = retry.budget_for_attempt(attempt);
        let mut current = start;
        let mut previous: Option<NodeId> = None;
        let mut hops_this_attempt = 0;
        let mut progress = false; // learned a new dead host this attempt
        full_path.push(start);

        'walk: loop {
            let node = &nodes[current.index()];
            debug_assert_eq!(node.id(), current, "nodes must be indexed by id");
            if let Some(cluster) =
                node.answer_locally_filtered_indexed(k, class_idx, classes, &mut dist, &mut alive)
            {
                deg.partial = None;
                return Ok(QueryOutcome {
                    cluster: Some(cluster),
                    hops: total_hops,
                    path: full_path,
                    degradation: deg,
                });
            }
            // The CRT gate promised k here but the live space cannot
            // deliver it: remember the best live cluster as a fallback.
            if k <= node.own_max()[class_idx] {
                deg.stale_state = true;
                keep_partial_of(
                    &mut deg,
                    node.best_partial(class_idx, classes, &mut dist, &mut alive),
                );
            }
            // Pick a live next hop, blacklisting dead ones as discovered
            // (the reroute-around-dead-neighbors step).
            loop {
                match node.route_excluding(k, class_idx, previous, &blacklist, policy) {
                    Some(next) if !alive(next) => {
                        blacklist.push(next);
                        deg.dead_encountered += 1;
                        deg.stale_state = true;
                        progress = true;
                    }
                    Some(next) => {
                        previous = Some(current);
                        current = next;
                        total_hops += 1;
                        hops_this_attempt += 1;
                        full_path.push(current);
                        if hops_this_attempt >= hop_budget || total_hops > 2 * nodes.len() {
                            break 'walk; // timeout: abandon this attempt
                        }
                        continue 'walk;
                    }
                    None => break 'walk, // dead end: nothing eligible
                }
            }
        }

        // A clean dead end with no new liveness knowledge would replay the
        // exact same walk: further retries are pointless.
        if !progress && hops_this_attempt < hop_budget {
            break;
        }
    }

    Ok(QueryOutcome {
        cluster: None,
        hops: total_hops,
        path: full_path,
        degradation: deg,
    })
}

/// [`process_query_resilient`] under a [`WorkMeter`]: every local cluster
/// search along the walk charges the meter, and the moment it runs dry the
/// walk stops and reports [`Budgeted::Exhausted`] carrying the degraded
/// outcome assembled so far (partial cluster, path, retry accounting).
///
/// Work is charged in pairs examined by the node-local kernels — a
/// deterministic quantity — so where the walk is cut depends only on the
/// overlay state and the budget, never on wall-clock or thread count. With
/// a meter that never exhausts the result is bit-identical to
/// [`process_query_resilient`] (which is implemented on top of this).
///
/// # Errors
///
/// Same as [`process_query_resilient`].
#[allow(clippy::too_many_arguments)]
pub fn process_query_resilient_budgeted(
    nodes: &[ClusterNode],
    start: NodeId,
    k: usize,
    bandwidth: f64,
    classes: &BandwidthClasses,
    mut dist: impl FnMut(NodeId, NodeId) -> f64,
    policy: RoutePolicy,
    retry: &RetryPolicy,
    mut alive: impl FnMut(NodeId) -> bool,
    meter: &mut WorkMeter,
) -> Result<Budgeted<QueryOutcome>, ClusterError> {
    let class_idx = QueryRequest::new(start, k, bandwidth).validate(classes, nodes.len())?;
    if !alive(start) {
        return Err(ClusterError::NodeUnavailable {
            node: start.index(),
        });
    }

    let mut deg = Degradation::default();
    let mut blacklist: Vec<NodeId> = Vec::new();
    let mut total_hops = 0;
    let mut full_path = Vec::new();

    // Folds a node-level partial into the degradation record, keeping the
    // largest live cluster seen anywhere along the walk.
    fn keep_partial(deg: &mut Degradation, p: Option<Vec<NodeId>>) {
        if let Some(p) = p {
            if deg.partial.as_ref().is_none_or(|best| p.len() > best.len()) {
                deg.partial = Some(p);
            }
        }
    }

    for attempt in 0..=retry.max_retries {
        if attempt > 0 {
            deg.retries += 1;
        }
        let hop_budget = retry.budget_for_attempt(attempt);
        let mut current = start;
        let mut previous: Option<NodeId> = None;
        let mut hops_this_attempt = 0;
        let mut progress = false; // learned a new dead host this attempt
        full_path.push(start);

        'walk: loop {
            // Every node visit pre-charges one unit (the CRT
            // consultation), so a walk is interruptible at node
            // boundaries even when the local scans are too small to
            // cross a kernel block boundary. Under a saturating work
            // cost this refuses immediately — the budgeted analogue of
            // a deadline that has already expired.
            if !meter.charge(1) {
                return Ok(Budgeted::Exhausted {
                    pairs_done: meter.used(),
                    best_partial: QueryOutcome {
                        cluster: None,
                        hops: total_hops,
                        path: full_path,
                        degradation: deg,
                    },
                });
            }
            let node = &nodes[current.index()];
            debug_assert_eq!(node.id(), current, "nodes must be indexed by id");
            match node.answer_locally_filtered_budgeted(
                k, class_idx, classes, &mut dist, &mut alive, meter,
            ) {
                Budgeted::Done(Some(cluster)) => {
                    deg.partial = None;
                    return Ok(Budgeted::Done(QueryOutcome {
                        cluster: Some(cluster),
                        hops: total_hops,
                        path: full_path,
                        degradation: deg,
                    }));
                }
                Budgeted::Done(None) => {}
                Budgeted::Exhausted { best_partial, .. } => {
                    keep_partial(&mut deg, best_partial);
                    return Ok(Budgeted::Exhausted {
                        pairs_done: meter.used(),
                        best_partial: QueryOutcome {
                            cluster: None,
                            hops: total_hops,
                            path: full_path,
                            degradation: deg,
                        },
                    });
                }
            }
            // The CRT gate promised k here but the live space cannot
            // deliver it: remember the best live cluster as a fallback.
            if k <= node.own_max()[class_idx] {
                deg.stale_state = true;
                match node.best_partial_budgeted(class_idx, classes, &mut dist, &mut alive, meter) {
                    Budgeted::Done(p) => keep_partial(&mut deg, p),
                    Budgeted::Exhausted { best_partial, .. } => {
                        keep_partial(&mut deg, best_partial);
                        return Ok(Budgeted::Exhausted {
                            pairs_done: meter.used(),
                            best_partial: QueryOutcome {
                                cluster: None,
                                hops: total_hops,
                                path: full_path,
                                degradation: deg,
                            },
                        });
                    }
                }
            }
            // Pick a live next hop, blacklisting dead ones as discovered
            // (the reroute-around-dead-neighbors step).
            loop {
                match node.route_excluding(k, class_idx, previous, &blacklist, policy) {
                    Some(next) if !alive(next) => {
                        blacklist.push(next);
                        deg.dead_encountered += 1;
                        deg.stale_state = true;
                        progress = true;
                    }
                    Some(next) => {
                        previous = Some(current);
                        current = next;
                        total_hops += 1;
                        hops_this_attempt += 1;
                        full_path.push(current);
                        if hops_this_attempt >= hop_budget || total_hops > 2 * nodes.len() {
                            break 'walk; // timeout: abandon this attempt
                        }
                        continue 'walk;
                    }
                    None => break 'walk, // dead end: nothing eligible
                }
            }
        }

        // A clean dead end with no new liveness knowledge would replay the
        // exact same walk: further retries are pointless.
        if !progress && hops_this_attempt < hop_budget {
            break;
        }
    }

    Ok(Budgeted::Done(QueryOutcome {
        cluster: None,
        hops: total_hops,
        path: full_path,
        degradation: deg,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_metric::RationalTransform;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn classes() -> BandwidthClasses {
        BandwidthClasses::new(vec![50.0], RationalTransform::new(100.0))
    }

    /// Line metric over ids.
    fn line_dist(a: NodeId, b: NodeId) -> f64 {
        (a.index() as f64 - b.index() as f64).abs()
    }

    /// A 4-node path overlay 0—1—2—3 where only node 3's corner of the
    /// line metric holds a tight cluster {2,3} plus aggregated {4?}… keep
    /// simple: node 3 aggregates {2, 3} so it can build k=2 clusters; other
    /// nodes know nothing locally but their CRTs point toward 3.
    fn path_overlay() -> Vec<ClusterNode> {
        let cls = classes();
        let mut nodes = vec![
            ClusterNode::new(n(0), vec![n(1)], 1),
            ClusterNode::new(n(1), vec![n(0), n(2)], 1),
            ClusterNode::new(n(2), vec![n(1), n(3)], 1),
            ClusterNode::new(n(3), vec![n(2)], 1),
        ];
        // Node 3 learns about node 2 through its neighbor.
        nodes[3].receive_node_info(n(2), vec![n(2)]).unwrap();
        for node in &mut nodes {
            node.recompute_own_max(&cls, line_dist);
        }
        // Propagate CRTs toward node 0 (3 → 2 → 1 → 0).
        let row = nodes[3].crt_for(n(2)).unwrap();
        nodes[2].receive_crt(n(3), row).unwrap();
        let row = nodes[2].crt_for(n(1)).unwrap();
        nodes[1].receive_crt(n(2), row).unwrap();
        let row = nodes[1].crt_for(n(0)).unwrap();
        nodes[0].receive_crt(n(1), row).unwrap();
        nodes
    }

    #[test]
    fn local_answer_zero_hops() {
        let nodes = path_overlay();
        let out = process_query(&nodes, n(3), 2, 50.0, &classes(), line_dist).unwrap();
        assert!(out.found());
        assert_eq!(out.hops, 0);
        assert_eq!(out.path, vec![n(3)]);
    }

    #[test]
    fn query_routes_across_overlay() {
        let nodes = path_overlay();
        let out = process_query(&nodes, n(0), 2, 50.0, &classes(), line_dist).unwrap();
        assert!(out.found(), "cluster reachable via routing");
        assert_eq!(out.hops, 3);
        assert_eq!(out.path, vec![n(0), n(1), n(2), n(3)]);
        let cluster = out.cluster.unwrap();
        assert_eq!(cluster.len(), 2);
    }

    #[test]
    fn indexed_query_identical_to_swept() {
        let nodes = path_overlay();
        for start in 0..4 {
            for k in 2..=4 {
                let swept = process_query(&nodes, n(start), k, 50.0, &classes(), line_dist);
                let indexed =
                    process_query_indexed(&nodes, n(start), k, 50.0, &classes(), line_dist);
                assert_eq!(swept, indexed, "start={start} k={k}");
            }
        }
        // Validation errors surface identically too.
        assert!(matches!(
            process_query_indexed(&nodes, n(0), 1, 50.0, &classes(), line_dist),
            Err(ClusterError::InvalidSizeConstraint { .. })
        ));
        assert!(matches!(
            process_query_indexed(&nodes, n(9), 2, 50.0, &classes(), line_dist),
            Err(ClusterError::UnknownNeighbor { .. })
        ));
    }

    #[test]
    fn unsatisfiable_query_returns_empty() {
        let nodes = path_overlay();
        let out = process_query(&nodes, n(0), 4, 50.0, &classes(), line_dist).unwrap();
        assert!(!out.found());
    }

    #[test]
    fn no_backtrack_to_sender() {
        // Node 1's only promising direction is back to 0; a query arriving
        // from 0 must not bounce back.
        let cls = classes();
        let mut nodes = vec![
            ClusterNode::new(n(0), vec![n(1)], 1),
            ClusterNode::new(n(1), vec![n(0)], 1),
        ];
        for node in &mut nodes {
            node.recompute_own_max(&cls, line_dist);
        }
        // Node 1 believes direction 0 holds size-2 clusters (stale info).
        nodes[1].receive_crt(n(0), vec![2]).unwrap();
        nodes[0].receive_crt(n(1), vec![2]).unwrap();
        let out = process_query(&nodes, n(0), 2, 50.0, &cls, line_dist).unwrap();
        // 0 forwards to 1; 1 cannot forward back to 0; returns empty.
        assert!(!out.found());
        assert_eq!(out.hops, 1);
    }

    #[test]
    fn invalid_queries_rejected() {
        let nodes = path_overlay();
        assert!(matches!(
            process_query(&nodes, n(0), 1, 50.0, &classes(), line_dist),
            Err(ClusterError::InvalidSizeConstraint { .. })
        ));
        assert!(matches!(
            process_query(&nodes, n(0), 2, 90.0, &classes(), line_dist),
            Err(ClusterError::NoMatchingClass { .. })
        ));
        assert!(matches!(
            process_query(&nodes, n(9), 2, 50.0, &classes(), line_dist),
            Err(ClusterError::UnknownNeighbor { .. })
        ));
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                process_query(&nodes, n(0), 2, bad, &classes(), line_dist),
                Err(ClusterError::InvalidBandwidthConstraint { .. })
            ));
            assert!(matches!(
                process_query_resilient(
                    &nodes,
                    n(0),
                    2,
                    bad,
                    &classes(),
                    line_dist,
                    RoutePolicy::FirstFit,
                    &RetryPolicy::default(),
                    |_| true,
                ),
                Err(ClusterError::InvalidBandwidthConstraint { .. })
            ));
        }
    }

    #[test]
    fn query_request_validates_at_the_boundary() {
        let cls = classes();
        assert_eq!(QueryRequest::new(n(0), 2, 50.0).validate(&cls, 4), Ok(0));
        assert!(matches!(
            QueryRequest::new(n(0), 1, 50.0).validate(&cls, 4),
            Err(ClusterError::InvalidSizeConstraint { k: 1 })
        ));
        assert!(matches!(
            QueryRequest::new(n(0), 2, -1.0).validate(&cls, 4),
            Err(ClusterError::InvalidBandwidthConstraint { .. })
        ));
        assert!(matches!(
            QueryRequest::new(n(0), 2, 90.0).validate(&cls, 4),
            Err(ClusterError::NoMatchingClass { .. })
        ));
        assert!(matches!(
            QueryRequest::new(n(4), 2, 50.0).validate(&cls, 4),
            Err(ClusterError::UnknownNeighbor { neighbor: 4 })
        ));
    }

    #[test]
    fn routing_policies_pick_different_forks() {
        use crate::node::RoutePolicy;
        // Star overlay: center 1 with neighbors 0 (entry), 2 and 3. Both 2
        // and 3 promise clusters but of different sizes.
        let mut center = ClusterNode::new(n(1), vec![n(0), n(2), n(3)], 1);
        center.receive_crt(n(2), vec![2]).unwrap();
        center.receive_crt(n(3), vec![5]).unwrap();
        assert_eq!(
            center.route_with_policy(2, 0, Some(n(0)), RoutePolicy::FirstFit),
            Some(n(2))
        );
        assert_eq!(
            center.route_with_policy(2, 0, Some(n(0)), RoutePolicy::BestFit),
            Some(n(3))
        );
        assert_eq!(
            center.route_with_policy(2, 0, Some(n(0)), RoutePolicy::TightestFit),
            Some(n(2))
        );
        // Policies only choose among *eligible* directions.
        assert_eq!(
            center.route_with_policy(3, 0, Some(n(0)), RoutePolicy::TightestFit),
            Some(n(3))
        );
        assert_eq!(
            center.route_with_policy(6, 0, Some(n(0)), RoutePolicy::BestFit),
            None
        );
    }

    #[test]
    fn policy_variants_agree_on_feasibility() {
        use crate::node::RoutePolicy;
        let nodes = path_overlay();
        for policy in [
            RoutePolicy::FirstFit,
            RoutePolicy::BestFit,
            RoutePolicy::TightestFit,
        ] {
            let out =
                process_query_with_policy(&nodes, n(0), 2, 50.0, &classes(), line_dist, policy)
                    .unwrap();
            assert!(out.found(), "policy {policy:?}");
        }
    }

    #[test]
    fn resilient_matches_plain_query_without_faults() {
        let nodes = path_overlay();
        for start in 0..4 {
            let plain = process_query(&nodes, n(start), 2, 50.0, &classes(), line_dist).unwrap();
            let res = process_query_resilient(
                &nodes,
                n(start),
                2,
                50.0,
                &classes(),
                line_dist,
                RoutePolicy::FirstFit,
                &RetryPolicy::default(),
                |_| true,
            )
            .unwrap();
            assert_eq!(res.cluster, plain.cluster, "start n{start}");
            assert_eq!(res.hops, plain.hops);
            assert!(res.clean());
        }
    }

    #[test]
    fn resilient_indexed_identical_to_swept() {
        // Fault-free and faulty overlays alike: the indexed resilient walk
        // must reproduce the pair-sweep walk bit for bit, including the
        // degradation record.
        let nodes = path_overlay();
        let alive_sets: [&dyn Fn(NodeId) -> bool; 3] =
            [&|_| true, &|u| u != n(2), &|u| u != n(1) && u != n(2)];
        for (which, alive) in alive_sets.iter().enumerate() {
            for start in 0..4 {
                if !alive(n(start)) {
                    continue;
                }
                for k in 2..=4 {
                    let swept = process_query_resilient(
                        &nodes,
                        n(start),
                        k,
                        50.0,
                        &classes(),
                        line_dist,
                        RoutePolicy::FirstFit,
                        &RetryPolicy::default(),
                        alive,
                    );
                    let indexed = process_query_resilient_indexed(
                        &nodes,
                        n(start),
                        k,
                        50.0,
                        &classes(),
                        line_dist,
                        RoutePolicy::FirstFit,
                        &RetryPolicy::default(),
                        alive,
                    );
                    assert_eq!(swept, indexed, "alive set {which}, start={start} k={k}");
                }
            }
        }
        // Error paths surface identically too.
        assert!(matches!(
            process_query_resilient_indexed(
                &nodes,
                n(0),
                2,
                50.0,
                &classes(),
                line_dist,
                RoutePolicy::FirstFit,
                &RetryPolicy::default(),
                |u| u != n(0),
            ),
            Err(ClusterError::NodeUnavailable { node: 0 })
        ));
        assert!(matches!(
            process_query_resilient_indexed(
                &nodes,
                n(0),
                1,
                50.0,
                &classes(),
                line_dist,
                RoutePolicy::FirstFit,
                &RetryPolicy::default(),
                |_| true,
            ),
            Err(ClusterError::InvalidSizeConstraint { .. })
        ));
    }

    #[test]
    fn resilient_rejects_dead_entry_node() {
        let nodes = path_overlay();
        let err = process_query_resilient(
            &nodes,
            n(0),
            2,
            50.0,
            &classes(),
            line_dist,
            RoutePolicy::FirstFit,
            &RetryPolicy::default(),
            |u| u != n(0),
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::NodeUnavailable { node: 0 }));
    }

    #[test]
    fn resilient_routes_around_dead_fork() {
        // Star: entry 0 — center 1 — forks 2 (dead) and 3 (alive). Both
        // forks promise a 2-cluster; FirstFit prefers 2, so the walk must
        // detect the dead hop, blacklist it, and take 3 instead.
        let cls = classes();
        let mut nodes = vec![
            ClusterNode::new(n(0), vec![n(1)], 1),
            ClusterNode::new(n(1), vec![n(0), n(2), n(3)], 1),
            ClusterNode::new(n(2), vec![n(1)], 1),
            ClusterNode::new(n(3), vec![n(1)], 1),
        ];
        // Node 3 can build {3, 4} locally (4 is an aggregated non-overlay
        // host under the line metric).
        nodes[3].receive_node_info(n(1), vec![n(4)]).unwrap();
        for node in &mut nodes {
            node.recompute_own_max(&cls, line_dist);
        }
        nodes[1].receive_crt(n(2), vec![2]).unwrap();
        nodes[1].receive_crt(n(3), vec![2]).unwrap();
        nodes[0].receive_crt(n(1), vec![2]).unwrap();

        let out = process_query_resilient(
            &nodes,
            n(0),
            2,
            50.0,
            &cls,
            line_dist,
            RoutePolicy::FirstFit,
            &RetryPolicy::default(),
            |u| u != n(2),
        )
        .unwrap();
        assert!(out.found(), "must reroute around the dead fork");
        assert_eq!(out.cluster.unwrap(), vec![n(3), n(4)]);
        assert_eq!(out.degradation.dead_encountered, 1);
        assert!(out.degradation.stale_state);
        assert!(out.path.contains(&n(3)));
        assert!(!out.path.contains(&n(2)));
    }

    #[test]
    fn resilient_never_returns_dead_members() {
        // Node 3 aggregates {2, 3}; with host 2 dead the full pair is
        // unbuildable, and the outcome degrades to a partial-free miss
        // (singletons are not clusters).
        let nodes = path_overlay();
        let out = process_query_resilient(
            &nodes,
            n(3),
            2,
            50.0,
            &classes(),
            line_dist,
            RoutePolicy::FirstFit,
            &RetryPolicy::default(),
            |u| u != n(2),
        )
        .unwrap();
        assert!(!out.found());
        assert!(
            out.degradation.stale_state,
            "CRT promised an unbuildable cluster"
        );
        assert!(out.degradation.partial.is_none());
    }

    #[test]
    fn resilient_reports_partial_results() {
        // Node 0's space holds {0..3}: with everyone alive it can build a
        // 3-cluster (l = 2 admits three consecutive line hosts). With host
        // 2 dead only pairs survive — reported as a partial.
        let cls = classes();
        let mut nodes = vec![
            ClusterNode::new(n(0), vec![n(1)], 1),
            ClusterNode::new(n(1), vec![n(0)], 1),
        ];
        nodes[0]
            .receive_node_info(n(1), vec![n(1), n(2), n(3)])
            .unwrap();
        for node in &mut nodes {
            node.recompute_own_max(&cls, line_dist);
        }
        let out = process_query_resilient(
            &nodes,
            n(0),
            3,
            50.0,
            &cls,
            line_dist,
            RoutePolicy::FirstFit,
            &RetryPolicy::default(),
            |u| u != n(2),
        )
        .unwrap();
        assert!(!out.found());
        assert!(out.degradation.stale_state);
        let partial = out.degradation.partial.expect("live partial exists");
        assert_eq!(partial.len(), 2);
        assert!(!partial.contains(&n(2)));
    }

    #[test]
    fn hop_budget_truncates_and_backoff_extends() {
        let nodes = path_overlay();
        // Budget 1 with no retries cannot reach node 3 from node 0.
        let starved = process_query_resilient(
            &nodes,
            n(0),
            2,
            50.0,
            &classes(),
            line_dist,
            RoutePolicy::FirstFit,
            &RetryPolicy {
                max_retries: 0,
                initial_hop_budget: 1,
                backoff: 1.0,
            },
            |_| true,
        )
        .unwrap();
        assert!(!starved.found());
        // Backoff 2× per retry: budgets 1, 2, 4 — the third attempt
        // reaches node 3 (3 hops away).
        let retried = process_query_resilient(
            &nodes,
            n(0),
            2,
            50.0,
            &classes(),
            line_dist,
            RoutePolicy::FirstFit,
            &RetryPolicy {
                max_retries: 3,
                initial_hop_budget: 1,
                backoff: 2.0,
            },
            |_| true,
        )
        .unwrap();
        assert!(retried.found(), "backoff must eventually reach the answer");
        assert!(retried.degradation.retries >= 2);
    }

    #[test]
    fn backoff_saturates_at_overflow_boundary() {
        // Doubling from 2^40 crosses usize::MAX near attempt 23; the budget
        // must clamp there and stay clamped, never wrap.
        let p = RetryPolicy {
            max_retries: 600,
            initial_hop_budget: 1 << 40,
            backoff: 2.0,
        };
        let mut prev = 0usize;
        for attempt in 0..=p.max_retries {
            let b = p.budget_for_attempt(attempt);
            assert!(b >= prev, "budget shrank at attempt {attempt}");
            prev = b;
        }
        assert_eq!(p.budget_for_attempt(600), usize::MAX);
        // A single extreme backoff step saturates immediately.
        let extreme = RetryPolicy {
            max_retries: 3,
            initial_hop_budget: 7,
            backoff: f64::MAX,
        };
        assert_eq!(extreme.budget_for_attempt(0), 7);
        assert_eq!(extreme.budget_for_attempt(1), usize::MAX);
        assert_eq!(extreme.budget_for_attempt(2), usize::MAX);
        // Sub-1.0 backoff is clamped to 1.0 — budgets never shrink.
        let shrinking = RetryPolicy {
            max_retries: 2,
            initial_hop_budget: 9,
            backoff: 0.25,
        };
        assert_eq!(shrinking.budget_for_attempt(2), 9);
        // The default policy keeps its exact 32, 64, 128, ... ladder.
        let default = RetryPolicy::default();
        assert_eq!(default.budget_for_attempt(0), 32);
        assert_eq!(default.budget_for_attempt(1), 64);
        assert_eq!(default.budget_for_attempt(2), 128);
    }

    #[test]
    fn huge_retry_policy_completes_without_overflow() {
        let nodes = path_overlay();
        let out = process_query_resilient(
            &nodes,
            n(0),
            2,
            50.0,
            &classes(),
            line_dist,
            RoutePolicy::FirstFit,
            &RetryPolicy {
                max_retries: 1000,
                initial_hop_budget: usize::MAX / 2,
                backoff: f64::MAX,
            },
            |_| true,
        )
        .unwrap();
        assert!(out.found());
    }

    #[test]
    fn budgeted_walk_matches_unbudgeted_when_not_exhausted() {
        let nodes = path_overlay();
        for start in 0..4 {
            for k in [2usize, 3, 4] {
                let plain = process_query_resilient(
                    &nodes,
                    n(start),
                    k,
                    50.0,
                    &classes(),
                    line_dist,
                    RoutePolicy::FirstFit,
                    &RetryPolicy::default(),
                    |_| true,
                )
                .unwrap();
                let mut meter = WorkMeter::new(u64::MAX / 2);
                let budgeted = process_query_resilient_budgeted(
                    &nodes,
                    n(start),
                    k,
                    50.0,
                    &classes(),
                    line_dist,
                    RoutePolicy::FirstFit,
                    &RetryPolicy::default(),
                    |_| true,
                    &mut meter,
                )
                .unwrap();
                assert_eq!(budgeted, Budgeted::Done(plain), "start n{start} k={k}");
            }
        }
    }

    #[test]
    fn exhausted_walk_reports_degraded_outcome() {
        // A meter spent before the walk starts: the entry node's local
        // search exhausts immediately and the outcome is a labeled partial
        // miss, not a silent truncation.
        let nodes = path_overlay();
        let mut meter = WorkMeter::new(0);
        meter.charge(1);
        let out = process_query_resilient_budgeted(
            &nodes,
            n(3),
            2,
            50.0,
            &classes(),
            line_dist,
            RoutePolicy::FirstFit,
            &RetryPolicy::default(),
            |_| true,
            &mut meter,
        )
        .unwrap();
        match out {
            Budgeted::Exhausted {
                pairs_done,
                best_partial,
            } => {
                assert!(pairs_done >= 1);
                assert!(!best_partial.found(), "no exact answer under a dry meter");
                assert_eq!(best_partial.path, vec![n(3)]);
            }
            done => panic!("expected exhaustion, got {done:?}"),
        }
    }

    #[test]
    fn bandwidth_snaps_up_to_class() {
        // b = 30 snaps to class 50 (harder), so the answered cluster also
        // satisfies 30.
        let nodes = path_overlay();
        let out = process_query(&nodes, n(3), 2, 30.0, &classes(), line_dist).unwrap();
        assert!(out.found());
        for c in out.cluster.unwrap().windows(2) {
            assert!(line_dist(c[0], c[1]) <= 2.0);
        }
    }
}
