//! Algorithm 4: decentralized query processing.
//!
//! A query `(k, b)` enters at any node. The node snaps `b` up to a
//! bandwidth class, tries to answer from its own clustering space, and
//! otherwise forwards toward a neighbor whose CRT column promises a
//! large-enough cluster — never back toward the neighbor it came from, so
//! on the tree overlay the walk is a simple path and always terminates.

use bcc_metric::NodeId;
use serde::{Deserialize, Serialize};

use crate::classes::BandwidthClasses;
use crate::error::ClusterError;
use crate::node::{ClusterNode, RoutePolicy};

/// The result of routing one query through the overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The cluster found, if any (host ids).
    pub cluster: Option<Vec<NodeId>>,
    /// Number of forwarding hops (0 when the entry node answered).
    pub hops: usize,
    /// Every node that processed the query, in order (entry node first).
    pub path: Vec<NodeId>,
}

impl QueryOutcome {
    /// `true` when a cluster was returned.
    pub fn found(&self) -> bool {
        self.cluster.is_some()
    }
}

/// Routes the query `(k, bandwidth)` starting at `start`.
///
/// `nodes` maps dense host ids to protocol state; `dist` is the predicted
/// distance oracle every node consults (labels / prediction tree).
///
/// # Errors
///
/// - [`ClusterError::InvalidSizeConstraint`] when `k < 2`.
/// - [`ClusterError::NoMatchingClass`] when `bandwidth` exceeds every
///   configured class.
/// - [`ClusterError::UnknownNeighbor`] when `start` is out of range.
pub fn process_query(
    nodes: &[ClusterNode],
    start: NodeId,
    k: usize,
    bandwidth: f64,
    classes: &BandwidthClasses,
    dist: impl FnMut(NodeId, NodeId) -> f64,
) -> Result<QueryOutcome, ClusterError> {
    process_query_with_policy(
        nodes,
        start,
        k,
        bandwidth,
        classes,
        dist,
        RoutePolicy::FirstFit,
    )
}

/// [`process_query`] with an explicit forwarding policy.
///
/// # Errors
///
/// Same as [`process_query`].
pub fn process_query_with_policy(
    nodes: &[ClusterNode],
    start: NodeId,
    k: usize,
    bandwidth: f64,
    classes: &BandwidthClasses,
    mut dist: impl FnMut(NodeId, NodeId) -> f64,
    policy: RoutePolicy,
) -> Result<QueryOutcome, ClusterError> {
    if k < 2 {
        return Err(ClusterError::InvalidSizeConstraint { k });
    }
    let class_idx = classes.snap_up(bandwidth)?;
    if start.index() >= nodes.len() {
        return Err(ClusterError::UnknownNeighbor {
            neighbor: start.index(),
        });
    }

    let mut current = start;
    let mut previous: Option<NodeId> = None;
    let mut path = vec![start];
    let mut hops = 0;

    loop {
        let node = &nodes[current.index()];
        debug_assert_eq!(node.id(), current, "nodes must be indexed by id");
        if let Some(cluster) = node.answer_locally(k, class_idx, classes, &mut dist) {
            return Ok(QueryOutcome {
                cluster: Some(cluster),
                hops,
                path,
            });
        }
        match node.route_with_policy(k, class_idx, previous, policy) {
            Some(next) => {
                previous = Some(current);
                current = next;
                hops += 1;
                path.push(current);
                // Safety net: on a tree overlay the no-backtrack walk is a
                // simple path, so it can never exceed the node count.
                if hops > nodes.len() {
                    return Ok(QueryOutcome {
                        cluster: None,
                        hops,
                        path,
                    });
                }
            }
            None => {
                return Ok(QueryOutcome {
                    cluster: None,
                    hops,
                    path,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_metric::RationalTransform;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn classes() -> BandwidthClasses {
        BandwidthClasses::new(vec![50.0], RationalTransform::new(100.0))
    }

    /// Line metric over ids.
    fn line_dist(a: NodeId, b: NodeId) -> f64 {
        (a.index() as f64 - b.index() as f64).abs()
    }

    /// A 4-node path overlay 0—1—2—3 where only node 3's corner of the
    /// line metric holds a tight cluster {2,3} plus aggregated {4?}… keep
    /// simple: node 3 aggregates {2, 3} so it can build k=2 clusters; other
    /// nodes know nothing locally but their CRTs point toward 3.
    fn path_overlay() -> Vec<ClusterNode> {
        let cls = classes();
        let mut nodes = vec![
            ClusterNode::new(n(0), vec![n(1)], 1),
            ClusterNode::new(n(1), vec![n(0), n(2)], 1),
            ClusterNode::new(n(2), vec![n(1), n(3)], 1),
            ClusterNode::new(n(3), vec![n(2)], 1),
        ];
        // Node 3 learns about node 2 through its neighbor.
        nodes[3].receive_node_info(n(2), vec![n(2)]).unwrap();
        for node in &mut nodes {
            node.recompute_own_max(&cls, line_dist);
        }
        // Propagate CRTs toward node 0 (3 → 2 → 1 → 0).
        let row = nodes[3].crt_for(n(2)).unwrap();
        nodes[2].receive_crt(n(3), row).unwrap();
        let row = nodes[2].crt_for(n(1)).unwrap();
        nodes[1].receive_crt(n(2), row).unwrap();
        let row = nodes[1].crt_for(n(0)).unwrap();
        nodes[0].receive_crt(n(1), row).unwrap();
        nodes
    }

    #[test]
    fn local_answer_zero_hops() {
        let nodes = path_overlay();
        let out = process_query(&nodes, n(3), 2, 50.0, &classes(), line_dist).unwrap();
        assert!(out.found());
        assert_eq!(out.hops, 0);
        assert_eq!(out.path, vec![n(3)]);
    }

    #[test]
    fn query_routes_across_overlay() {
        let nodes = path_overlay();
        let out = process_query(&nodes, n(0), 2, 50.0, &classes(), line_dist).unwrap();
        assert!(out.found(), "cluster reachable via routing");
        assert_eq!(out.hops, 3);
        assert_eq!(out.path, vec![n(0), n(1), n(2), n(3)]);
        let cluster = out.cluster.unwrap();
        assert_eq!(cluster.len(), 2);
    }

    #[test]
    fn unsatisfiable_query_returns_empty() {
        let nodes = path_overlay();
        let out = process_query(&nodes, n(0), 4, 50.0, &classes(), line_dist).unwrap();
        assert!(!out.found());
    }

    #[test]
    fn no_backtrack_to_sender() {
        // Node 1's only promising direction is back to 0; a query arriving
        // from 0 must not bounce back.
        let cls = classes();
        let mut nodes = vec![
            ClusterNode::new(n(0), vec![n(1)], 1),
            ClusterNode::new(n(1), vec![n(0)], 1),
        ];
        for node in &mut nodes {
            node.recompute_own_max(&cls, line_dist);
        }
        // Node 1 believes direction 0 holds size-2 clusters (stale info).
        nodes[1].receive_crt(n(0), vec![2]).unwrap();
        nodes[0].receive_crt(n(1), vec![2]).unwrap();
        let out = process_query(&nodes, n(0), 2, 50.0, &cls, line_dist).unwrap();
        // 0 forwards to 1; 1 cannot forward back to 0; returns empty.
        assert!(!out.found());
        assert_eq!(out.hops, 1);
    }

    #[test]
    fn invalid_queries_rejected() {
        let nodes = path_overlay();
        assert!(matches!(
            process_query(&nodes, n(0), 1, 50.0, &classes(), line_dist),
            Err(ClusterError::InvalidSizeConstraint { .. })
        ));
        assert!(matches!(
            process_query(&nodes, n(0), 2, 90.0, &classes(), line_dist),
            Err(ClusterError::NoMatchingClass { .. })
        ));
        assert!(matches!(
            process_query(&nodes, n(9), 2, 50.0, &classes(), line_dist),
            Err(ClusterError::UnknownNeighbor { .. })
        ));
    }

    #[test]
    fn routing_policies_pick_different_forks() {
        use crate::node::RoutePolicy;
        // Star overlay: center 1 with neighbors 0 (entry), 2 and 3. Both 2
        // and 3 promise clusters but of different sizes.
        let mut center = ClusterNode::new(n(1), vec![n(0), n(2), n(3)], 1);
        center.receive_crt(n(2), vec![2]).unwrap();
        center.receive_crt(n(3), vec![5]).unwrap();
        assert_eq!(
            center.route_with_policy(2, 0, Some(n(0)), RoutePolicy::FirstFit),
            Some(n(2))
        );
        assert_eq!(
            center.route_with_policy(2, 0, Some(n(0)), RoutePolicy::BestFit),
            Some(n(3))
        );
        assert_eq!(
            center.route_with_policy(2, 0, Some(n(0)), RoutePolicy::TightestFit),
            Some(n(2))
        );
        // Policies only choose among *eligible* directions.
        assert_eq!(
            center.route_with_policy(3, 0, Some(n(0)), RoutePolicy::TightestFit),
            Some(n(3))
        );
        assert_eq!(
            center.route_with_policy(6, 0, Some(n(0)), RoutePolicy::BestFit),
            None
        );
    }

    #[test]
    fn policy_variants_agree_on_feasibility() {
        use crate::node::RoutePolicy;
        let nodes = path_overlay();
        for policy in [
            RoutePolicy::FirstFit,
            RoutePolicy::BestFit,
            RoutePolicy::TightestFit,
        ] {
            let out =
                process_query_with_policy(&nodes, n(0), 2, 50.0, &classes(), line_dist, policy)
                    .unwrap();
            assert!(out.found(), "policy {policy:?}");
        }
    }

    #[test]
    fn bandwidth_snaps_up_to_class() {
        // b = 30 snaps to class 50 (harder), so the answered cluster also
        // satisfies 30.
        let nodes = path_overlay();
        let out = process_query(&nodes, n(3), 2, 30.0, &classes(), line_dist).unwrap();
        assert!(out.found());
        for c in out.cluster.unwrap().windows(2) {
            assert!(line_dist(c[0], c[1]) <= 2.0);
        }
    }
}
