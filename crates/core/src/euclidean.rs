//! The comparison model's clustering algorithm: `k`-diameter search in the
//! plane (Sec. IV-A).
//!
//! The paper compares its tree-metric clustering against a centralized
//! algorithm on Vivaldi's 2-d embedding, adapted from Aggarwal et al.'s
//! minimum-diameter `k`-point algorithm: for each node pair `(p, q)` with
//! `d(p, q) ≤ l`, collect the *lune* `{x : d(x,p) ≤ d(p,q) ∧ d(x,q) ≤
//! d(p,q)}`, split it by the line through `p q` (two points on the same side
//! are within `d(p, q)` of each other), connect cross-side pairs farther
//! than `l` in a bipartite conflict graph, and take a maximum independent
//! set. Any `k` of its members form a cluster of diameter at most `l`.

use bcc_metric::{EuclideanPoints, FiniteMetric};

use crate::bipartite::BipartiteGraph;

/// Finds `k` points of the 2-d set with diameter at most `l`, or `None`.
///
/// Unlike [`crate::find_cluster`] this is *exact* in the plane (no tree
/// assumption): the returned set always satisfies `diam ≤ l` in the
/// embedded space, and `None` means no such `k`-subset exists. Inaccuracy
/// in the paper's comparison therefore comes only from the Vivaldi
/// embedding, as Sec. IV-A notes.
///
/// # Panics
///
/// Panics if `points` is not 2-dimensional.
///
/// ```
/// use bcc_core::find_cluster_euclidean;
/// use bcc_metric::EuclideanPoints;
///
/// let pts = EuclideanPoints::new(2, vec![0.0, 0.0, 1.0, 0.0, 0.5, 0.5, 9.0, 9.0]);
/// let x = find_cluster_euclidean(&pts, 3, 1.5).expect("tight triangle exists");
/// assert_eq!(x.len(), 3);
/// assert!(!x.contains(&3));
/// ```
pub fn find_cluster_euclidean(points: &EuclideanPoints, k: usize, l: f64) -> Option<Vec<usize>> {
    assert_eq!(
        points.dim(),
        2,
        "the baseline clustering is defined in the plane"
    );
    let n = points.len();
    if k > n || k == 0 {
        return None;
    }
    if k == 1 {
        return Some(vec![0]);
    }
    for p in 0..n {
        for q in (p + 1)..n {
            if let Some(mut found) = check_lune(points, p, q, k, l) {
                found.truncate(k);
                return Some(found);
            }
        }
    }
    None
}

/// The largest `k` for which [`find_cluster_euclidean`] succeeds.
pub fn max_cluster_size_euclidean(points: &EuclideanPoints, l: f64) -> usize {
    let n = points.len();
    if n == 0 {
        return 0;
    }
    let mut best = 1;
    for p in 0..n {
        for q in (p + 1)..n {
            if let Some(found) = check_lune(points, p, q, 2, l) {
                best = best.max(found.len());
            }
        }
    }
    best
}

/// Examines the lune of `(p, q)`: returns the maximum independent set of
/// its conflict graph when that set has at least `k` members (callers that
/// only want the maximum size pass `k = 2` and read the length).
fn check_lune(
    points: &EuclideanPoints,
    p: usize,
    q: usize,
    k: usize,
    l: f64,
) -> Option<Vec<usize>> {
    let r = points.distance(p, q);
    if r > l {
        return None;
    }
    let (px, py) = (points.point(p)[0], points.point(p)[1]);
    let (qx, qy) = (points.point(q)[0], points.point(q)[1]);
    let (ux, uy) = (qx - px, qy - py);

    let mut side_a = Vec::new(); // cross >= 0, including the p–q line
    let mut side_b = Vec::new();
    for x in 0..points.len() {
        if points.distance(x, p) <= r && points.distance(x, q) <= r {
            let (vx, vy) = (points.point(x)[0] - px, points.point(x)[1] - py);
            if ux * vy - uy * vx >= 0.0 {
                side_a.push(x);
            } else {
                side_b.push(x);
            }
        }
    }
    if side_a.len() + side_b.len() < k {
        return None;
    }
    // Conflict edges: cross-side pairs farther apart than l.
    let mut g = BipartiteGraph::new(side_a.len(), side_b.len());
    for (ai, &a) in side_a.iter().enumerate() {
        for (bi, &b) in side_b.iter().enumerate() {
            if points.distance(a, b) > l {
                g.add_edge(ai, bi);
            }
        }
    }
    let mis = g.max_independent_set();
    if mis.len() < k {
        return None;
    }
    let mut out: Vec<usize> = mis
        .left
        .iter()
        .map(|&ai| side_a[ai])
        .chain(mis.right.iter().map(|&bi| side_b[bi]))
        .collect();
    out.sort_unstable();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> EuclideanPoints {
        EuclideanPoints::new(2, coords.iter().flat_map(|&(x, y)| [x, y]).collect())
    }

    fn diam(points: &EuclideanPoints, set: &[usize]) -> f64 {
        let mut d = 0.0f64;
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                d = d.max(points.distance(a, b));
            }
        }
        d
    }

    #[test]
    fn finds_tight_triangle() {
        let p = pts(&[(0.0, 0.0), (1.0, 0.0), (0.5, 0.5), (9.0, 9.0)]);
        let x = find_cluster_euclidean(&p, 3, 1.5).unwrap();
        assert_eq!(x, vec![0, 1, 2]);
        assert!(diam(&p, &x) <= 1.5);
    }

    #[test]
    fn none_when_spread_out() {
        let p = pts(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)]);
        assert_eq!(find_cluster_euclidean(&p, 2, 5.0), None);
        assert!(find_cluster_euclidean(&p, 2, 10.0).is_some());
    }

    #[test]
    fn result_always_within_l() {
        // A ring of points: naive lune collection (without the MIS step)
        // would include cross-side pairs beyond l.
        let coords: Vec<(f64, f64)> = (0..12)
            .map(|i| {
                let a = i as f64 * std::f64::consts::TAU / 12.0;
                (a.cos(), a.sin())
            })
            .collect();
        let p = pts(&coords);
        for k in 2..=6 {
            for l in [0.6, 1.0, 1.4, 1.9] {
                if let Some(x) = find_cluster_euclidean(&p, k, l) {
                    assert_eq!(x.len(), k);
                    assert!(
                        diam(&p, &x) <= l + 1e-12,
                        "k={k} l={l} diam={}",
                        diam(&p, &x)
                    );
                }
            }
        }
    }

    #[test]
    fn exactness_against_brute_force() {
        use bcc_metric::DistanceMatrix;
        // Random-ish small point sets: the algorithm must find a cluster
        // exactly when one exists.
        let sets = [
            pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (1.0, -1.0), (5.0, 5.0)]),
            pts(&[
                (0.0, 0.0),
                (0.3, 0.1),
                (0.1, 0.4),
                (2.0, 2.0),
                (2.2, 2.1),
                (4.0, 0.0),
            ]),
            pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]),
        ];
        for p in &sets {
            let m = DistanceMatrix::from_fn(p.len(), |i, j| p.distance(i, j));
            for k in 2..=p.len() {
                for l in [0.4, 0.6, 1.0, 1.5, 2.0, 3.0, 8.0] {
                    let ours = find_cluster_euclidean(p, k, l).is_some();
                    let brute = crate::find_cluster::exists_cluster_brute_force(&m, k, l);
                    assert_eq!(ours, brute, "k={k} l={l}");
                }
            }
        }
    }

    #[test]
    fn coincident_points_cluster() {
        let p = pts(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0), (9.0, 9.0)]);
        let x = find_cluster_euclidean(&p, 3, 0.001).unwrap();
        assert_eq!(x, vec![0, 1, 2]);
    }

    #[test]
    fn max_cluster_size_matches_search() {
        let p = pts(&[
            (0.0, 0.0),
            (0.5, 0.0),
            (1.0, 0.0),
            (0.5, 0.4),
            (6.0, 6.0),
            (6.5, 6.0),
        ]);
        for l in [0.3, 0.55, 1.0, 1.2, 9.0, 20.0] {
            let m = max_cluster_size_euclidean(&p, l);
            assert!(find_cluster_euclidean(&p, m, l).is_some(), "l={l} m={m}");
            if m < p.len() {
                assert!(
                    find_cluster_euclidean(&p, m + 1, l).is_none(),
                    "l={l} m={m}"
                );
            }
        }
    }

    #[test]
    fn k_bounds() {
        let p = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(find_cluster_euclidean(&p, 3, 100.0), None);
        assert_eq!(find_cluster_euclidean(&p, 0, 100.0), None);
        assert_eq!(find_cluster_euclidean(&p, 1, 100.0), Some(vec![0]));
    }

    #[test]
    #[should_panic(expected = "plane")]
    fn rejects_non_planar_points() {
        let p = EuclideanPoints::new(3, vec![0.0; 6]);
        find_cluster_euclidean(&p, 2, 1.0);
    }

    #[test]
    fn boundary_pairs_included() {
        let p = pts(&[(0.0, 0.0), (5.0, 0.0)]);
        assert!(find_cluster_euclidean(&p, 2, 5.0).is_some());
        assert!(find_cluster_euclidean(&p, 2, 4.9999).is_none());
    }
}
