//! Algorithm 1: centralized cluster search in a tree metric space.
//!
//! `FindCluster(V, d, k, l)` returns `X ⊆ V` with `|X| = k` and
//! `diam(X) ≤ l`, or nothing when no such set exists. The paper proves
//! (Theorem 3.1) that in a tree metric space it suffices to examine, for
//! every node pair `(p, q)`, the *pair-bounded set*
//! `S*_pq = {x : d(x,p) ≤ d(p,q) ∧ d(x,q) ≤ d(p,q)}`, whose diameter is
//! exactly `d(p, q)`. The search is therefore `O(n³)` instead of the
//! NP-complete general-graph `k`-Clique.

use bcc_metric::{DistanceMatrix, FiniteMetric};
use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// A clustering query in the distance domain: find `k` nodes with pairwise
/// distance at most `l`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Cluster size constraint (`k ≥ 2`).
    pub k: usize,
    /// Diameter constraint in the distance domain (`l = C / b`).
    pub l: f64,
}

impl Query {
    /// Creates a validated query.
    ///
    /// # Errors
    ///
    /// - [`ClusterError::InvalidSizeConstraint`] when `k < 2`.
    /// - [`ClusterError::InvalidDiameterConstraint`] when `l` is not
    ///   positive and finite.
    pub fn new(k: usize, l: f64) -> Result<Self, ClusterError> {
        if k < 2 {
            return Err(ClusterError::InvalidSizeConstraint { k });
        }
        if !l.is_finite() || l <= 0.0 {
            return Err(ClusterError::InvalidDiameterConstraint { l });
        }
        Ok(Query { k, l })
    }
}

/// Order in which Algorithm 1 scans node pairs.
///
/// The choice does not affect correctness (any satisfying `S*_pq` may be
/// returned) but changes which cluster is found first and how soon an easy
/// query exits — measured by the `ablations` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PairOrder {
    /// Natural row-major order, the paper's presentation.
    #[default]
    RowMajor,
    /// Pairs sorted by ascending `d(p, q)`: finds the *tightest* satisfying
    /// cluster and exits earliest on dense spaces, at an `O(n² log n)`
    /// sorting cost.
    AscendingDiameter,
}

/// Algorithm 1. Finds `k` nodes of `metric` with diameter at most `l`,
/// returning their indices, or `None` when no pair-bounded set satisfies
/// the constraints.
///
/// On a perfect tree metric the result is *complete*: `None` means no such
/// cluster exists (Theorem 3.1). On an approximate tree metric the returned
/// set's true diameter may exceed `l` by the metric's 4PC slack — this is
/// exactly the prediction error the paper's WPR metric measures.
///
/// ```
/// use bcc_core::find_cluster;
/// use bcc_metric::DistanceMatrix;
///
/// // Star metric with radii 1, 1, 1, 10: the three close nodes cluster.
/// let r = [1.0, 1.0, 1.0, 10.0];
/// let d = DistanceMatrix::from_fn(4, |i, j| r[i] + r[j]);
/// let x = find_cluster(&d, 3, 2.5).expect("cluster exists");
/// assert_eq!(x, vec![0, 1, 2]);
/// assert_eq!(find_cluster(&d, 4, 2.5), None);
/// ```
pub fn find_cluster<M: FiniteMetric>(metric: &M, k: usize, l: f64) -> Option<Vec<usize>> {
    find_cluster_ordered(metric, k, l, PairOrder::RowMajor)
}

/// Algorithm 1 over an explicit candidate set of universe ids: builds the
/// sub-metric spanned by `ids` (in the given order) and runs
/// [`find_cluster`] on it, mapping the answer back to ids.
///
/// This is the *shared merge kernel* of region-scoped serving: both the
/// unsharded baseline and the sharded coordinator reduce a query to a
/// candidate id set, and as long as the two sets are equal and presented
/// in the same order (callers pass ids ascending), this kernel makes their
/// answers bit-identical by construction — the scan order, tie-breaks and
/// float comparisons are all decided here, once.
pub fn find_cluster_among(
    ids: &[u32],
    k: usize,
    l: f64,
    mut dist: impl FnMut(u32, u32) -> f64,
) -> Option<Vec<u32>> {
    debug_assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "candidate ids must be strictly ascending for canonical answers"
    );
    let local = DistanceMatrix::from_fn(ids.len(), |i, j| dist(ids[i], ids[j]));
    find_cluster(&local, k, l).map(|idxs| idxs.into_iter().map(|i| ids[i]).collect())
}

/// Algorithm 1 with an explicit pair scan order. See [`find_cluster`].
pub fn find_cluster_ordered<M: FiniteMetric>(
    metric: &M,
    k: usize,
    l: f64,
    order: PairOrder,
) -> Option<Vec<usize>> {
    let _span = bcc_obs::span!("core.find_cluster");
    bcc_obs::inc!("core.find_cluster.calls");
    let n = metric.len();
    if k > n || k == 0 {
        return None;
    }
    if k == 1 {
        return Some(vec![0]);
    }
    let mut scratch = Vec::with_capacity(k);
    // Pairs examined, accumulated locally and flushed once — the serial
    // scan count is deterministic, unlike the parallel variants' racy
    // speculative probes, so only this path reports it.
    let mut scanned = 0u64;
    let result = 'search: {
        match order {
            PairOrder::RowMajor => {
                for p in 0..n {
                    for q in (p + 1)..n {
                        scanned += 1;
                        let dpq = metric.distance(p, q);
                        // In a tree metric diam(S*_pq) = d(p, q), so the diameter
                        // constraint reduces to d(p, q) <= l and pairs beyond l
                        // are skipped outright.
                        if dpq <= l && check_pair(metric, p, q, dpq, k, &mut scratch) {
                            break 'search Some(scratch);
                        }
                    }
                }
                None
            }
            PairOrder::AscendingDiameter => {
                let mut pairs = pairs_within(metric, l);
                sort_by_distance(&mut pairs);
                for (p, q, dpq) in pairs {
                    scanned += 1;
                    if check_pair(metric, p, q, dpq, k, &mut scratch) {
                        break 'search Some(scratch);
                    }
                }
                None
            }
        }
    };
    bcc_obs::add!("core.find_cluster.pairs_scanned", scanned);
    result
}

/// Pairs scanned between two budget checks in the `_budgeted` kernels.
///
/// Budget exhaustion is only detected at multiples of this block size, so
/// the cut point of an exhausted scan is a deterministic function of the
/// metric and the budget — never of thread count or timing. The block is
/// deliberately small: a space of just six hosts already spans a boundary
/// (15 pairs), so even modest scans are interruptible under an inflated
/// work cost.
pub const BUDGET_BLOCK: usize = 16;

/// A deterministic work budget threaded through the `_budgeted` kernels.
///
/// Work is counted in *pairs examined* — the unit behind the
/// `core.find_cluster.pairs_scanned` / `core.pairs_listed` counters — and
/// never in wall-clock time, so every budget decision replays
/// byte-identically. Each pair is charged `cost` units; a chaos nemesis can
/// inflate `cost` to simulate a slow region without touching any clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkMeter {
    limit: u64,
    cost: u64,
    used: u64,
}

impl WorkMeter {
    /// A meter allowing `limit` units of work at unit cost per pair.
    pub fn new(limit: u64) -> Self {
        WorkMeter::with_cost(limit, 1)
    }

    /// A meter allowing `limit` units, charging `cost` (clamped to ≥ 1)
    /// units per pair examined.
    pub fn with_cost(limit: u64, cost: u64) -> Self {
        WorkMeter {
            limit,
            cost: cost.max(1),
            used: 0,
        }
    }

    /// A meter that never exhausts (`limit = u64::MAX`, saturating charge).
    pub fn unlimited() -> Self {
        WorkMeter::new(u64::MAX)
    }

    /// Charges `pairs` pair-examinations and reports whether the budget
    /// still holds. Saturating: an unlimited meter can never wrap into
    /// exhaustion.
    pub fn charge(&mut self, pairs: u64) -> bool {
        self.used = self.used.saturating_add(pairs.saturating_mul(self.cost));
        !self.exhausted()
    }

    /// `true` once more than `limit` units have been charged.
    pub fn exhausted(&self) -> bool {
        self.used > self.limit
    }

    /// Units charged so far (cost-inflated pair count).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The budget ceiling in work units.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Units charged per pair examined.
    pub fn cost(&self) -> u64 {
        self.cost
    }
}

/// The result of a budgeted kernel: either the full answer, or the best
/// partial answer assembled before the [`WorkMeter`] ran dry.
#[derive(Debug, Clone, PartialEq)]
pub enum Budgeted<T> {
    /// The kernel ran to completion; the value is exact.
    Done(T),
    /// The budget was exhausted mid-scan.
    Exhausted {
        /// Work units charged when the scan was cut (cost-inflated).
        pairs_done: u64,
        /// Best partial answer seen before the cut.
        best_partial: T,
    },
}

impl<T> Budgeted<T> {
    /// `true` when the budget ran out before the scan completed.
    pub fn is_exhausted(&self) -> bool {
        matches!(self, Budgeted::Exhausted { .. })
    }

    /// The exact value, or the best partial when exhausted. Callers that
    /// must not confuse the two should match instead.
    pub fn into_value(self) -> T {
        match self {
            Budgeted::Done(v) => v,
            Budgeted::Exhausted { best_partial, .. } => best_partial,
        }
    }
}

/// [`find_cluster`] under a [`WorkMeter`]: the row-major scan checks the
/// budget every [`BUDGET_BLOCK`] pairs and, when it runs dry, returns the
/// largest pair-bounded subset (size ≥ 2) seen so far instead of running to
/// completion.
///
/// With an unexhausted meter the result is bit-identical to
/// [`find_cluster`] — the scan order, the pair filter and the membership
/// test are the same code path; only the block-boundary budget check is
/// added.
pub fn find_cluster_budgeted<M: FiniteMetric>(
    metric: &M,
    k: usize,
    l: f64,
    meter: &mut WorkMeter,
) -> Budgeted<Option<Vec<usize>>> {
    let _span = bcc_obs::span!("core.find_cluster");
    bcc_obs::inc!("core.find_cluster.calls");
    let n = metric.len();
    if k > n || k == 0 {
        return Budgeted::Done(None);
    }
    if k == 1 {
        return Budgeted::Done(Some(vec![0]));
    }
    if meter.exhausted() {
        return Budgeted::Exhausted {
            pairs_done: meter.used(),
            best_partial: None,
        };
    }
    let mut scratch = Vec::with_capacity(k);
    let mut best: Vec<usize> = Vec::new();
    let mut scanned = 0u64;
    let mut block = 0usize;
    for p in 0..n {
        for q in (p + 1)..n {
            scanned += 1;
            let dpq = metric.distance(p, q);
            if dpq <= l {
                if check_pair(metric, p, q, dpq, k, &mut scratch) {
                    meter.charge(block as u64 + 1);
                    bcc_obs::add!("core.find_cluster.pairs_scanned", scanned);
                    return Budgeted::Done(Some(scratch));
                }
                if scratch.len() > best.len() && scratch.len() >= 2 {
                    best = scratch.clone();
                }
            }
            block += 1;
            if block == BUDGET_BLOCK {
                block = 0;
                if !meter.charge(BUDGET_BLOCK as u64) {
                    bcc_obs::add!("core.find_cluster.pairs_scanned", scanned);
                    return Budgeted::Exhausted {
                        pairs_done: meter.used(),
                        best_partial: (!best.is_empty()).then_some(best),
                    };
                }
            }
        }
    }
    meter.charge(block as u64);
    bcc_obs::add!("core.find_cluster.pairs_scanned", scanned);
    Budgeted::Done(None)
}

/// [`max_cluster_size`] under a [`WorkMeter`]: scans pairs row-major,
/// checking the budget every [`BUDGET_BLOCK`] pairs; when it runs dry it
/// returns the best size established so far (≥ 1 on non-empty spaces).
///
/// With an unexhausted meter the result equals [`max_cluster_size`].
pub fn max_cluster_size_budgeted<M: FiniteMetric>(
    metric: &M,
    l: f64,
    meter: &mut WorkMeter,
) -> Budgeted<usize> {
    let _span = bcc_obs::span!("core.max_cluster_size");
    bcc_obs::inc!("core.max_cluster_size.calls");
    let n = metric.len();
    if n == 0 {
        return Budgeted::Done(0);
    }
    if meter.exhausted() {
        return Budgeted::Exhausted {
            pairs_done: meter.used(),
            best_partial: 1,
        };
    }
    let mut best = 1usize;
    let mut block = 0usize;
    for p in 0..n {
        for q in (p + 1)..n {
            let dpq = metric.distance(p, q);
            if dpq <= l {
                let mut count = 0;
                for x in 0..n {
                    if metric.distance(x, p) <= dpq && metric.distance(x, q) <= dpq {
                        count += 1;
                    }
                }
                best = best.max(count);
            }
            block += 1;
            if block == BUDGET_BLOCK {
                block = 0;
                if !meter.charge(BUDGET_BLOCK as u64) {
                    return Budgeted::Exhausted {
                        pairs_done: meter.used(),
                        best_partial: best,
                    };
                }
            }
        }
    }
    meter.charge(block as u64);
    Budgeted::Done(best)
}

/// Collects the row-major pair list `(p, q, d(p, q))` with `p < q`,
/// pre-filtered to `d(p, q) ≤ l` so pairs that can never bound a satisfying
/// cluster are dropped before any allocation-heavy downstream step. The one
/// sorted-pair builder behind [`find_cluster_ordered`],
/// [`min_diameter_cluster`], [`max_cluster_size`] and their `_par` variants.
fn pairs_within<M: FiniteMetric>(metric: &M, l: f64) -> Vec<(usize, usize, f64)> {
    let n = metric.len();
    let mut pairs = Vec::new();
    for p in 0..n {
        for q in (p + 1)..n {
            let d = metric.distance(p, q);
            if d <= l {
                pairs.push((p, q, d));
            }
        }
    }
    bcc_obs::add!("core.pairs_listed", pairs.len() as u64);
    pairs
}

/// Sorts a pair list by ascending distance. The sort is stable, so equal
/// distances keep their row-major order — which is what makes the parallel
/// ascending scans return the same winner as the serial ones.
fn sort_by_distance(pairs: &mut [(usize, usize, f64)]) {
    pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("distances are comparable"));
}

/// Builds `S*_pq` into `scratch` (cleared first) and returns `true` once it
/// reaches `k` members. The caller-provided buffer keeps the `O(n²)` pair
/// loop from allocating per pair; the caller has already checked
/// `d(p, q) ≤ l`. Shared with the indexed kernels so their surviving pairs
/// run the very same membership test the sweep runs.
pub(crate) fn check_pair<M: FiniteMetric>(
    metric: &M,
    p: usize,
    q: usize,
    dpq: f64,
    k: usize,
    scratch: &mut Vec<usize>,
) -> bool {
    scratch.clear();
    for x in 0..metric.len() {
        if metric.distance(x, p) <= dpq && metric.distance(x, q) <= dpq {
            scratch.push(x);
            if scratch.len() == k {
                return true;
            }
        }
    }
    false
}

/// [`check_pair`] over borrowed matrix rows: the inner `S*_pq` membership
/// test becomes a straight sweep of two contiguous slices instead of two
/// bounds-asserted `distance()` lookups per candidate. Same values, same
/// order, so it fills `scratch` exactly like the generic path on any
/// symmetric metric.
pub(crate) fn check_pair_rows(
    d: &DistanceMatrix,
    p: usize,
    q: usize,
    dpq: f64,
    k: usize,
    scratch: &mut Vec<usize>,
) -> bool {
    let n = d.len();
    let row_p = &d.row(p)[..n];
    let row_q = &d.row(q)[..n];
    scratch.clear();
    for x in 0..n {
        if row_p[x] <= dpq && row_q[x] <= dpq {
            scratch.push(x);
            if scratch.len() == k {
                return true;
            }
        }
    }
    false
}

/// Total pair count at or below which every `_par` kernel runs its serial
/// twin outright.
///
/// Forking the pool costs roughly half a millisecond of dispatch and joins
/// regardless of how little work each worker receives; a full serial sweep
/// of 2048 pairs costs a few microseconds. Below this floor parallelism is
/// pure overhead — the `find_cluster_sat` perfbase rows used to report
/// ~500× *slowdowns* at small `n` for exactly this reason. The `_par`
/// results are bit-identical either way; the cutoff only moves the
/// crossover, and perfbase asserts the sat-probe speedup stays sane.
pub const PAR_SERIAL_CUTOFF: usize = 2048;

/// Pairs scanned serially *before* the pool forks in the hybrid `_par`
/// search kernels.
///
/// Satisfiable probes usually exit within the first few hundred pairs in
/// scan order; paying pool dispatch for those is the second half of the
/// sat-probe pessimization (the first is `PAR_SERIAL_CUTOFF`). The
/// prefix is scanned in exact serial order, so an early hit returns the
/// bit-identical serial winner without waking a single worker; only scans
/// that survive the prefix — the genuinely hard ones — fan out over the
/// remaining pairs.
pub(crate) const PAR_SERIAL_PREFIX: usize = 4096;

/// Parallel Algorithm 1 on the `bcc-par` pool. See [`find_cluster`]; returns
/// exactly the cluster the serial scan returns — the pool races pair checks
/// but always keeps the lowest pair in scan order (deterministic early
/// exit), so results are bit-identical for any thread count on any
/// symmetric metric.
pub fn find_cluster_par<M: FiniteMetric>(metric: &M, k: usize, l: f64) -> Option<Vec<usize>> {
    find_cluster_ordered_par(metric, k, l, PairOrder::RowMajor)
}

/// Parallel [`find_cluster_ordered`]: materializes the metric into a dense
/// matrix once, pre-filters and (for
/// [`PairOrder::AscendingDiameter`]) sorts the pair list, then scans a
/// serial prefix (`PAR_SERIAL_PREFIX`) before fanning the remainder out
/// on the pool with per-worker scratch buffers and atomic early exit on the
/// first (lowest-index) satisfying pair. Spaces of at most
/// `PAR_SERIAL_CUTOFF` total pairs delegate to the serial kernel
/// entirely; either way the result is bit-identical to the serial scan.
pub fn find_cluster_ordered_par<M: FiniteMetric>(
    metric: &M,
    k: usize,
    l: f64,
    order: PairOrder,
) -> Option<Vec<usize>> {
    let n = metric.len();
    if n * n.saturating_sub(1) / 2 <= PAR_SERIAL_CUTOFF {
        return find_cluster_ordered(metric, k, l, order);
    }
    let _span = bcc_obs::span!("core.find_cluster");
    bcc_obs::inc!("core.find_cluster.calls");
    if k > n || k == 0 {
        return None;
    }
    if k == 1 {
        return Some(vec![0]);
    }
    let d = metric.to_matrix();
    let mut pairs = pairs_within(&d, l);
    if order == PairOrder::AscendingDiameter {
        sort_by_distance(&mut pairs);
    }
    // Serial prefix: sat probes that exit early pay zero pool dispatch and
    // return the serial winner directly.
    let prefix = pairs.len().min(PAR_SERIAL_PREFIX);
    let mut scratch = Vec::with_capacity(k);
    for &(p, q, dpq) in &pairs[..prefix] {
        if check_pair_rows(&d, p, q, dpq, k, &mut scratch) {
            return Some(scratch);
        }
    }
    let rest = &pairs[prefix..];
    if rest.is_empty() {
        return None;
    }
    bcc_par::par_find_first_with(
        rest.len(),
        || Vec::with_capacity(k),
        |scratch, i| {
            let (p, q, dpq) = rest[i];
            check_pair_rows(&d, p, q, dpq, k, scratch).then(|| scratch.clone())
        },
    )
}

/// The optimization variant of Algorithm 1: the `k`-subset of *minimum*
/// diameter (the problem Aggarwal et al. solve in the plane), exact on tree
/// metric spaces.
///
/// In a tree metric every candidate cluster is pair-bounded, so scanning
/// pairs in ascending `d(p, q)` order and returning the first whose
/// `S*_pq` reaches size `k` yields a minimum-diameter cluster. Returns the
/// members and their diameter, or `None` when `k` exceeds the space
/// (`k == 1` returns a singleton of diameter `0`).
///
/// ```
/// use bcc_core::min_diameter_cluster;
/// use bcc_metric::DistanceMatrix;
///
/// // Line 0-1-2 ... with a tight pair at the end.
/// let pos = [0.0f64, 4.0, 8.0, 12.0, 12.5];
/// let d = DistanceMatrix::from_fn(5, |i, j| (pos[i] - pos[j]).abs());
/// let (cluster, diam) = min_diameter_cluster(&d, 2).unwrap();
/// assert_eq!(cluster, vec![3, 4]);
/// assert_eq!(diam, 0.5);
/// ```
pub fn min_diameter_cluster<M: FiniteMetric>(metric: &M, k: usize) -> Option<(Vec<usize>, f64)> {
    let n = metric.len();
    if k > n || k == 0 {
        return None;
    }
    if k == 1 {
        return Some((vec![0], 0.0));
    }
    let mut pairs = pairs_within(metric, f64::INFINITY);
    sort_by_distance(&mut pairs);
    let mut scratch = Vec::with_capacity(k);
    for (p, q, dpq) in pairs {
        if check_pair(metric, p, q, dpq, k, &mut scratch) {
            return Some((scratch, dpq));
        }
    }
    None
}

/// Parallel [`min_diameter_cluster`] on the `bcc-par` pool: pairs sorted by
/// ascending diameter, scanned with deterministic early exit, so the
/// returned cluster and diameter match the serial scan bit for bit. Small
/// spaces and early hits stay serial, like
/// [`find_cluster_ordered_par`].
pub fn min_diameter_cluster_par<M: FiniteMetric>(
    metric: &M,
    k: usize,
) -> Option<(Vec<usize>, f64)> {
    let n = metric.len();
    if n * n.saturating_sub(1) / 2 <= PAR_SERIAL_CUTOFF {
        return min_diameter_cluster(metric, k);
    }
    if k > n || k == 0 {
        return None;
    }
    if k == 1 {
        return Some((vec![0], 0.0));
    }
    let d = metric.to_matrix();
    let mut pairs = pairs_within(&d, f64::INFINITY);
    sort_by_distance(&mut pairs);
    let prefix = pairs.len().min(PAR_SERIAL_PREFIX);
    let mut scratch = Vec::with_capacity(k);
    for &(p, q, dpq) in &pairs[..prefix] {
        if check_pair_rows(&d, p, q, dpq, k, &mut scratch) {
            return Some((scratch, dpq));
        }
    }
    let rest = &pairs[prefix..];
    if rest.is_empty() {
        return None;
    }
    bcc_par::par_find_first_with(
        rest.len(),
        || Vec::with_capacity(k),
        |scratch, i| {
            let (p, q, dpq) = rest[i];
            check_pair_rows(&d, p, q, dpq, k, scratch).then(|| (scratch.clone(), dpq))
        },
    )
}

/// The largest cluster size achievable under diameter `l`:
/// `max k` such that [`find_cluster`] returns a set.
///
/// Computed directly as the maximum `|S*_pq|` over pairs with
/// `d(p, q) ≤ l` (falling back to `min(1, n)` — a single node is always a
/// diameter-0 cluster). This is the quantity each node's cluster routing
/// table stores per bandwidth class (Algorithm 3, line 8).
pub fn max_cluster_size<M: FiniteMetric>(metric: &M, l: f64) -> usize {
    let _span = bcc_obs::span!("core.max_cluster_size");
    bcc_obs::inc!("core.max_cluster_size.calls");
    let n = metric.len();
    if n == 0 {
        return 0;
    }
    let mut best = 1;
    for (p, q, dpq) in pairs_within(metric, l) {
        let mut count = 0;
        for x in 0..n {
            if metric.distance(x, p) <= dpq && metric.distance(x, q) <= dpq {
                count += 1;
            }
        }
        best = best.max(count);
    }
    best
}

/// Parallel [`max_cluster_size`]: `max |S*_pq|` over the pre-filtered pair
/// list, chunked across the `bcc-par` pool. `max` reduces exactly, so the
/// result equals the serial scan's for any thread count. Spaces of at most
/// `PAR_SERIAL_CUTOFF` total pairs run the serial scan outright.
pub fn max_cluster_size_par<M: FiniteMetric>(metric: &M, l: f64) -> usize {
    let n = metric.len();
    if n * n.saturating_sub(1) / 2 <= PAR_SERIAL_CUTOFF {
        return max_cluster_size(metric, l);
    }
    let _span = bcc_obs::span!("core.max_cluster_size");
    bcc_obs::inc!("core.max_cluster_size.calls");
    let d = metric.to_matrix();
    let pairs = pairs_within(&d, l);
    if pairs.is_empty() {
        return 1;
    }
    let chunk = (pairs.len() / (bcc_par::current_threads() * 8)).clamp(1, 4096);
    bcc_par::par_chunks(pairs.len(), chunk, |range| {
        let mut best = 1usize;
        for &(p, q, dpq) in &pairs[range] {
            let row_p = &d.row(p)[..n];
            let row_q = &d.row(q)[..n];
            let mut count = 0;
            for x in 0..n {
                if row_p[x] <= dpq && row_q[x] <= dpq {
                    count += 1;
                }
            }
            best = best.max(count);
        }
        best
    })
    .into_iter()
    .fold(1, usize::max)
}

/// The largest cluster size found by *binary search* over `k`, invoking
/// [`find_cluster`] per probe — the strategy Algorithm 3 suggests.
///
/// Exists alongside the direct [`max_cluster_size`] so the ablation bench
/// can compare the two; both return identical values (tested).
pub fn max_cluster_size_binary_search<M: FiniteMetric>(metric: &M, l: f64) -> usize {
    let n = metric.len();
    if n == 0 {
        return 0;
    }
    let (mut lo, mut hi) = (1usize, n); // find_cluster(k=1) always succeeds
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if find_cluster(metric, mid, l).is_some() {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Exact diameter of a node subset under `metric`.
///
/// # Panics
///
/// Panics if `subset` contains an out-of-bounds index.
pub fn diameter<M: FiniteMetric>(metric: &M, subset: &[usize]) -> f64 {
    let mut d = 0.0f64;
    for (i, &a) in subset.iter().enumerate() {
        for &b in &subset[i + 1..] {
            d = d.max(metric.distance(a, b));
        }
    }
    d
}

/// Brute-force reference: does *any* `k`-subset with diameter ≤ `l` exist?
///
/// Exponential; only for cross-checking [`find_cluster`] on small fixtures
/// and property tests.
pub fn exists_cluster_brute_force<M: FiniteMetric>(metric: &M, k: usize, l: f64) -> bool {
    let n = metric.len();
    if k > n {
        return false;
    }
    // Build the threshold graph and search for a k-clique with pruning.
    let adj: Vec<Vec<bool>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| i != j && metric.distance(i, j) <= l)
                .collect()
        })
        .collect();
    fn extend(adj: &[Vec<bool>], clique: &mut Vec<usize>, cand: &[usize], k: usize) -> bool {
        if clique.len() == k {
            return true;
        }
        if clique.len() + cand.len() < k {
            return false;
        }
        for (idx, &v) in cand.iter().enumerate() {
            clique.push(v);
            let next: Vec<usize> = cand[idx + 1..]
                .iter()
                .copied()
                .filter(|&u| adj[v][u])
                .collect();
            if extend(adj, clique, &next, k) {
                return true;
            }
            clique.pop();
        }
        false
    }
    let all: Vec<usize> = (0..n).collect();
    extend(&adj, &mut Vec::new(), &all, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_metric::DistanceMatrix;

    fn star(radii: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(radii.len(), |i, j| radii[i] + radii[j])
    }

    fn line(pos: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn query_validation() {
        assert!(Query::new(2, 1.0).is_ok());
        assert!(matches!(
            Query::new(1, 1.0),
            Err(ClusterError::InvalidSizeConstraint { .. })
        ));
        assert!(matches!(
            Query::new(3, 0.0),
            Err(ClusterError::InvalidDiameterConstraint { .. })
        ));
        assert!(matches!(
            Query::new(3, f64::NAN),
            Err(ClusterError::InvalidDiameterConstraint { .. })
        ));
    }

    #[test]
    fn finds_obvious_cluster() {
        let d = star(&[1.0, 1.0, 1.0, 50.0]);
        let x = find_cluster(&d, 3, 2.0).unwrap();
        assert_eq!(x.len(), 3);
        assert!(diameter(&d, &x) <= 2.0);
    }

    #[test]
    fn result_satisfies_both_constraints() {
        let d = line(&[0.0, 1.0, 2.0, 3.0, 10.0, 11.0]);
        let x = find_cluster(&d, 4, 3.0).unwrap();
        assert_eq!(x.len(), 4);
        assert!(diameter(&d, &x) <= 3.0);
    }

    #[test]
    fn none_when_no_cluster() {
        let d = line(&[0.0, 10.0, 20.0, 30.0]);
        assert_eq!(find_cluster(&d, 2, 5.0), None);
        assert_eq!(find_cluster(&d, 3, 10.0), None);
    }

    #[test]
    fn k_larger_than_n_is_none() {
        let d = star(&[1.0, 1.0]);
        assert_eq!(find_cluster(&d, 3, 100.0), None);
    }

    #[test]
    fn k_equals_n_when_everything_close() {
        let d = star(&[1.0; 6]);
        let x = find_cluster(&d, 6, 2.0).unwrap();
        assert_eq!(x, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn k_one_degenerate() {
        let d = star(&[1.0, 2.0]);
        assert_eq!(find_cluster(&d, 1, 0.001), Some(vec![0]));
        assert_eq!(find_cluster(&d, 0, 0.001), None);
    }

    #[test]
    fn boundary_diameter_included() {
        // d(0,1) exactly l must qualify (constraint is <=).
        let d = line(&[0.0, 5.0]);
        assert!(find_cluster(&d, 2, 5.0).is_some());
        assert!(find_cluster(&d, 2, 4.999).is_none());
    }

    #[test]
    fn work_meter_charges_and_saturates() {
        let mut m = WorkMeter::new(10);
        assert!(m.charge(10));
        assert!(!m.exhausted());
        assert!(!m.charge(1));
        assert!(m.exhausted());
        assert_eq!(m.used(), 11);
        // Cost inflation multiplies each pair's charge.
        let mut slow = WorkMeter::with_cost(10, 4);
        assert!(!slow.charge(3), "3 pairs at cost 4 exceed 10 units");
        assert_eq!(slow.used(), 12);
        // Unlimited meters saturate instead of wrapping into exhaustion.
        let mut unlimited = WorkMeter::unlimited();
        assert!(unlimited.charge(u64::MAX));
        assert!(unlimited.charge(u64::MAX));
        assert!(!unlimited.exhausted());
        // Zero cost is clamped to one so charging always makes progress.
        assert_eq!(WorkMeter::with_cost(5, 0).cost(), 1);
    }

    #[test]
    fn budgeted_matches_unbudgeted_when_not_exhausted() {
        let spaces = [
            line(&[0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 20.0]),
            star(&[1.0, 1.0, 1.0, 50.0, 2.0]),
            line(&[0.0, 10.0, 20.0, 30.0]),
        ];
        for d in &spaces {
            for k in 1..=d.len() {
                for l in [0.5, 2.0, 3.0, 5.0, 100.0] {
                    let mut meter = WorkMeter::unlimited();
                    let got = find_cluster_budgeted(d, k, l, &mut meter);
                    assert_eq!(got, Budgeted::Done(find_cluster(d, k, l)), "k={k} l={l}");
                }
                let mut meter = WorkMeter::unlimited();
                let l = 3.0;
                assert_eq!(
                    max_cluster_size_budgeted(d, l, &mut meter),
                    Budgeted::Done(max_cluster_size(d, l))
                );
            }
        }
    }

    #[test]
    fn budget_exhaustion_cuts_at_block_boundaries() {
        // A space large enough that the scan spans several blocks, with no
        // satisfying cluster so the scan cannot exit early.
        let pos: Vec<f64> = (0..40).map(|i| i as f64 * 10.0).collect();
        let d = line(&pos);
        let mut meter = WorkMeter::new(BUDGET_BLOCK as u64);
        match find_cluster_budgeted(&d, 3, 5.0, &mut meter) {
            Budgeted::Exhausted { pairs_done, .. } => {
                // One full block fits the budget; the check after the second
                // block trips it. The cut is always a block multiple.
                assert_eq!(pairs_done, 2 * BUDGET_BLOCK as u64);
            }
            done => panic!("expected exhaustion, got {done:?}"),
        }
        // An already-exhausted meter refuses immediately.
        let mut spent = WorkMeter::new(0);
        spent.charge(1);
        assert!(find_cluster_budgeted(&d, 3, 5.0, &mut spent).is_exhausted());
        assert!(max_cluster_size_budgeted(&d, 5.0, &mut spent).is_exhausted());
    }

    #[test]
    fn budgeted_exhaustion_reports_best_partial() {
        // Tight triple at the head of a space wide enough to cross a block
        // boundary; the full k=4 never assembles, so an exhausted scan must
        // surface the size-3 subset it saw.
        let mut pos = vec![0.0, 1.0, 2.0];
        pos.extend((1..=10).map(|i| i as f64 * 100.0));
        let d = line(&pos);
        let mut meter = WorkMeter::new(4);
        match find_cluster_budgeted(&d, 4, 2.5, &mut meter) {
            Budgeted::Exhausted { best_partial, .. } => {
                assert_eq!(best_partial, Some(vec![0, 1, 2]));
            }
            done => panic!("expected exhaustion, got {done:?}"),
        }
        let mut meter = WorkMeter::new(4);
        match max_cluster_size_budgeted(&d, 2.5, &mut meter) {
            Budgeted::Exhausted { best_partial, .. } => assert_eq!(best_partial, 3),
            done => panic!("expected exhaustion, got {done:?}"),
        }
    }

    #[test]
    fn budgeted_cut_is_cost_deterministic() {
        // The same scan under the same budget and cost always cuts at the
        // same pair count — replayed twice, byte-identical.
        let pos: Vec<f64> = (0..30).map(|i| i as f64 * 7.0).collect();
        let d = line(&pos);
        for cost in [1u64, 3, 17] {
            let mut a = WorkMeter::with_cost(200, cost);
            let mut b = WorkMeter::with_cost(200, cost);
            let ra = find_cluster_budgeted(&d, 3, 5.0, &mut a);
            let rb = find_cluster_budgeted(&d, 3, 5.0, &mut b);
            assert_eq!(ra, rb);
            assert_eq!(a.used(), b.used());
        }
    }

    #[test]
    fn matches_brute_force_on_tree_metrics() {
        let d = line(&[0.0, 2.0, 3.0, 7.0, 8.0, 8.5, 15.0]);
        for k in 2..=7 {
            for l in [0.5, 1.0, 2.0, 4.0, 6.0, 10.0, 20.0] {
                let ours = find_cluster(&d, k, l).is_some();
                let brute = exists_cluster_brute_force(&d, k, l);
                assert_eq!(ours, brute, "k={k} l={l}");
            }
        }
    }

    #[test]
    fn ascending_order_finds_tightest_first() {
        let d = line(&[0.0, 1.0, 10.0, 10.1]);
        // Both {0,1} (diam 1) and {2,3} (diam 0.1) satisfy k=2, l=2.
        let x = find_cluster_ordered(&d, 2, 2.0, PairOrder::AscendingDiameter).unwrap();
        assert_eq!(x, vec![2, 3], "tightest pair first");
        let y = find_cluster_ordered(&d, 2, 2.0, PairOrder::RowMajor).unwrap();
        assert_eq!(y, vec![0, 1], "row-major finds (0,1) first");
    }

    #[test]
    fn max_cluster_size_direct() {
        let d = line(&[0.0, 1.0, 2.0, 3.0, 10.0]);
        assert_eq!(max_cluster_size(&d, 3.0), 4);
        assert_eq!(max_cluster_size(&d, 1.0), 2);
        assert_eq!(max_cluster_size(&d, 0.5), 1);
        assert_eq!(max_cluster_size(&d, 100.0), 5);
    }

    #[test]
    fn max_cluster_size_binary_agrees_with_direct() {
        let d = line(&[0.0, 2.0, 3.0, 7.0, 8.0, 8.5, 15.0]);
        for l in [0.1, 0.5, 1.0, 1.5, 4.0, 6.5, 7.0, 15.0, 100.0] {
            assert_eq!(
                max_cluster_size(&d, l),
                max_cluster_size_binary_search(&d, l),
                "l = {l}"
            );
        }
    }

    #[test]
    fn max_cluster_size_empty_space() {
        let d = DistanceMatrix::new(0);
        assert_eq!(max_cluster_size(&d, 1.0), 0);
        assert_eq!(max_cluster_size_binary_search(&d, 1.0), 0);
    }

    #[test]
    fn max_cluster_size_singleton() {
        let d = DistanceMatrix::new(1);
        assert_eq!(max_cluster_size(&d, 1.0), 1);
        assert_eq!(max_cluster_size_binary_search(&d, 1.0), 1);
    }

    #[test]
    fn diameter_of_subsets() {
        let d = line(&[0.0, 3.0, 5.0]);
        assert_eq!(diameter(&d, &[0, 2]), 5.0);
        assert_eq!(diameter(&d, &[1]), 0.0);
        assert_eq!(diameter(&d, &[]), 0.0);
    }

    #[test]
    fn min_diameter_is_optimal_on_tree_metrics() {
        let d = line(&[0.0, 2.0, 3.0, 7.0, 8.0, 8.5]);
        // Brute-force optimum per k.
        fn brute(d: &DistanceMatrix, k: usize) -> f64 {
            let n = d.len();
            let mut best = f64::INFINITY;
            let idx: Vec<usize> = (0..n).collect();
            fn rec(
                d: &DistanceMatrix,
                rest: &[usize],
                chosen: &mut Vec<usize>,
                k: usize,
                best: &mut f64,
            ) {
                if chosen.len() == k {
                    *best = best.min(diameter(d, chosen));
                    return;
                }
                if rest.len() + chosen.len() < k {
                    return;
                }
                let (head, tail) = rest.split_first().unwrap();
                chosen.push(*head);
                rec(d, tail, chosen, k, best);
                chosen.pop();
                rec(d, tail, chosen, k, best);
            }
            rec(d, &idx, &mut Vec::new(), k, &mut best);
            best
        }
        for k in 2..=6 {
            let (cluster, diam) = min_diameter_cluster(&d, k).unwrap();
            assert_eq!(cluster.len(), k);
            assert!((diam - brute(&d, k)).abs() < 1e-12, "k = {k}");
            assert!((diameter(&d, &cluster) - diam).abs() < 1e-12);
        }
    }

    #[test]
    fn min_diameter_edge_cases() {
        let d = line(&[0.0, 5.0]);
        assert_eq!(min_diameter_cluster(&d, 1), Some((vec![0], 0.0)));
        assert_eq!(min_diameter_cluster(&d, 2), Some((vec![0, 1], 5.0)));
        assert_eq!(min_diameter_cluster(&d, 3), None);
        assert_eq!(min_diameter_cluster(&d, 0), None);
    }

    #[test]
    fn min_diameter_consistent_with_find_cluster() {
        let d = line(&[0.0, 1.0, 4.0, 4.5, 9.0]);
        for k in 2..=5 {
            let (_, diam) = min_diameter_cluster(&d, k).unwrap();
            // find_cluster succeeds exactly at l >= diam.
            assert!(find_cluster(&d, k, diam).is_some());
            assert!(find_cluster(&d, k, diam * 0.999).is_none());
        }
    }

    #[test]
    fn parallel_variants_bit_identical_to_serial() {
        let d = line(&[0.0, 2.0, 3.0, 7.0, 8.0, 8.5, 15.0, 15.2, 20.0]);
        for threads in [1, 2, 8] {
            bcc_par::set_threads(threads);
            for k in 2..=9 {
                for l in [0.5, 1.0, 2.0, 4.0, 6.0, 10.0, 20.0] {
                    assert_eq!(
                        find_cluster(&d, k, l),
                        find_cluster_par(&d, k, l),
                        "k={k} l={l} threads={threads}"
                    );
                    assert_eq!(
                        find_cluster_ordered(&d, k, l, PairOrder::AscendingDiameter),
                        find_cluster_ordered_par(&d, k, l, PairOrder::AscendingDiameter),
                        "asc k={k} l={l} threads={threads}"
                    );
                }
                assert_eq!(
                    min_diameter_cluster(&d, k),
                    min_diameter_cluster_par(&d, k),
                    "k={k} threads={threads}"
                );
            }
            for l in [0.1, 0.5, 1.0, 4.0, 6.5, 15.0, 100.0] {
                assert_eq!(
                    max_cluster_size(&d, l),
                    max_cluster_size_par(&d, l),
                    "l={l} threads={threads}"
                );
            }
        }
        bcc_par::set_threads(0);
    }

    #[test]
    fn parallel_path_beyond_prefix_matches_serial() {
        // n = 128 gives 8128 pairs: above PAR_SERIAL_CUTOFF (so the pool
        // path runs, not the serial delegation) and above
        // PAR_SERIAL_PREFIX (so the fan-out actually executes). The only
        // satisfying cluster sits at the highest indices, whose pairs fall
        // past the serial prefix in row-major order.
        let n = 128usize;
        assert!(n * (n - 1) / 2 > PAR_SERIAL_CUTOFF.max(PAR_SERIAL_PREFIX));
        let pos: Vec<f64> = (0..n)
            .map(|i| {
                if i < n - 4 {
                    i as f64 * 100.0
                } else {
                    (n - 4) as f64 * 100.0 + (i - (n - 4)) as f64
                }
            })
            .collect();
        let d = line(&pos);
        for threads in [1, 2, 8] {
            bcc_par::set_threads(threads);
            for (k, l) in [(4, 3.0), (3, 2.0), (5, 3.0), (2, 0.5)] {
                assert_eq!(
                    find_cluster(&d, k, l),
                    find_cluster_par(&d, k, l),
                    "k={k} l={l} threads={threads}"
                );
                assert_eq!(
                    find_cluster_ordered(&d, k, l, PairOrder::AscendingDiameter),
                    find_cluster_ordered_par(&d, k, l, PairOrder::AscendingDiameter),
                    "asc k={k} l={l} threads={threads}"
                );
            }
            assert_eq!(
                min_diameter_cluster(&d, 4),
                min_diameter_cluster_par(&d, 4),
                "threads={threads}"
            );
            for l in [0.5, 3.0, 150.0] {
                assert_eq!(
                    max_cluster_size(&d, l),
                    max_cluster_size_par(&d, l),
                    "l={l} threads={threads}"
                );
            }
        }
        bcc_par::set_threads(0);
    }

    #[test]
    fn parallel_edge_cases_match_serial() {
        let empty = DistanceMatrix::new(0);
        assert_eq!(find_cluster_par(&empty, 2, 1.0), None);
        assert_eq!(max_cluster_size_par(&empty, 1.0), 0);
        assert_eq!(min_diameter_cluster_par(&empty, 1), None);

        let single = DistanceMatrix::new(1);
        assert_eq!(find_cluster_par(&single, 1, 1.0), Some(vec![0]));
        assert_eq!(max_cluster_size_par(&single, 1.0), 1);

        let d = star(&[1.0, 1.0]);
        assert_eq!(find_cluster_par(&d, 3, 100.0), None);
        assert_eq!(find_cluster_par(&d, 0, 1.0), None);
        assert_eq!(min_diameter_cluster_par(&d, 1), Some((vec![0], 0.0)));
        // No pair within l: both report the singleton floor.
        assert_eq!(max_cluster_size_par(&d, 0.5), 1);
        assert_eq!(max_cluster_size(&d, 0.5), 1);
    }

    #[test]
    fn brute_force_small_cases() {
        let d = line(&[0.0, 1.0, 2.0]);
        assert!(exists_cluster_brute_force(&d, 3, 2.0));
        assert!(!exists_cluster_brute_force(&d, 3, 1.5));
        assert!(!exists_cluster_brute_force(&d, 4, 100.0));
    }
}
