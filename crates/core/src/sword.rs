//! A SWORD-style budgeted exhaustive search (related-work baseline).
//!
//! SWORD (Oppenheimer et al., HPDC 2005) discovers wide-area resource
//! groups by exhaustive search over candidate combinations and "stops
//! searching when timeout expires" — the limitation the paper contrasts its
//! polynomial tree-metric algorithm against. This module models that
//! behaviour: a backtracking `k`-clique search on the threshold graph
//! (`edge(u, v) ⇔ d(u, v) ≤ l`) that charges one unit of *budget* per node
//! expansion and gives up when the budget runs out.
//!
//! With unlimited budget the search is exact (it *is* `k`-Clique, so
//! exponential in the worst case); with a bounded budget it may miss
//! clusters that exist. The `ablations` bench compares its success rate
//! against Algorithm 1's guaranteed polynomial search.

use bcc_metric::FiniteMetric;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The outcome of a budgeted search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetedOutcome {
    /// The cluster found, if any.
    pub cluster: Option<Vec<usize>>,
    /// Node expansions performed.
    pub expansions: u64,
    /// `true` if the search ran out of budget (a `None` cluster is then
    /// inconclusive rather than a proof of absence).
    pub exhausted: bool,
}

/// Backtracking `k`-clique search with an expansion budget.
///
/// Candidates are shuffled by `seed` (SWORD's search order depends on
/// arrival order; shuffling models that nondeterminism reproducibly), then
/// greedily ordered by degree to find cliques faster.
pub fn find_cluster_budgeted<M: FiniteMetric>(
    metric: &M,
    k: usize,
    l: f64,
    budget: u64,
    seed: u64,
) -> BudgetedOutcome {
    let n = metric.len();
    if k == 0 || k > n {
        return BudgetedOutcome {
            cluster: None,
            expansions: 0,
            exhausted: false,
        };
    }
    if k == 1 {
        return BudgetedOutcome {
            cluster: Some(vec![0]),
            expansions: 1,
            exhausted: false,
        };
    }
    // Threshold graph adjacency.
    let adj: Vec<Vec<bool>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| i != j && metric.distance(i, j) <= l)
                .collect()
        })
        .collect();
    let degree: Vec<usize> = adj
        .iter()
        .map(|row| row.iter().filter(|&&b| b).count())
        .collect();

    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    // Stable by descending degree after the shuffle: dense nodes first,
    // random tie-breaks.
    order.sort_by(|&a, &b| degree[b].cmp(&degree[a]));

    struct Search<'a> {
        adj: &'a [Vec<bool>],
        k: usize,
        budget: u64,
        expansions: u64,
        exhausted: bool,
    }
    impl Search<'_> {
        fn extend(&mut self, clique: &mut Vec<usize>, cand: &[usize]) -> bool {
            if clique.len() == self.k {
                return true;
            }
            if clique.len() + cand.len() < self.k {
                return false;
            }
            for (idx, &v) in cand.iter().enumerate() {
                if self.expansions >= self.budget {
                    self.exhausted = true;
                    return false;
                }
                self.expansions += 1;
                clique.push(v);
                let next: Vec<usize> = cand[idx + 1..]
                    .iter()
                    .copied()
                    .filter(|&u| self.adj[v][u])
                    .collect();
                if self.extend(clique, &next) {
                    return true;
                }
                clique.pop();
                if self.exhausted {
                    return false;
                }
            }
            false
        }
    }

    let mut search = Search {
        adj: &adj,
        k,
        budget,
        expansions: 0,
        exhausted: false,
    };
    let mut clique = Vec::new();
    let found = search.extend(&mut clique, &order);
    BudgetedOutcome {
        cluster: if found {
            clique.sort_unstable();
            Some(clique)
        } else {
            None
        },
        expansions: search.expansions,
        exhausted: search.exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_metric::DistanceMatrix;

    fn line(pos: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs())
    }

    #[test]
    fn unlimited_budget_is_exact() {
        let d = line(&[0.0, 1.0, 2.0, 3.0, 10.0, 11.0]);
        for k in 2..=6 {
            for l in [0.5, 1.0, 2.0, 3.0, 12.0] {
                let out = find_cluster_budgeted(&d, k, l, u64::MAX, 1);
                let expected = crate::find_cluster::exists_cluster_brute_force(&d, k, l);
                assert_eq!(out.cluster.is_some(), expected, "k={k} l={l}");
                assert!(!out.exhausted);
                if let Some(c) = out.cluster {
                    assert_eq!(c.len(), k);
                    assert!(crate::find_cluster::diameter(&d, &c) <= l + 1e-12);
                }
            }
        }
    }

    #[test]
    fn tiny_budget_gives_up_honestly() {
        // A cluster exists, but one expansion cannot find k = 3.
        let d = line(&[0.0, 0.1, 0.2, 9.0]);
        let out = find_cluster_budgeted(&d, 3, 0.5, 1, 7);
        assert_eq!(out.cluster, None);
        assert!(out.exhausted, "must admit the search was cut short");
        // With a roomy budget it succeeds.
        let out = find_cluster_budgeted(&d, 3, 0.5, 1000, 7);
        assert_eq!(out.cluster, Some(vec![0, 1, 2]));
    }

    #[test]
    fn absence_proof_when_not_exhausted() {
        // No cluster exists and the space is tiny: search completes within
        // budget, so None is a proof.
        let d = line(&[0.0, 10.0, 20.0]);
        let out = find_cluster_budgeted(&d, 2, 1.0, 1000, 3);
        assert_eq!(out.cluster, None);
        assert!(!out.exhausted);
    }

    #[test]
    fn expansions_counted() {
        let d = line(&[0.0, 0.1, 0.2, 0.3]);
        let out = find_cluster_budgeted(&d, 4, 1.0, u64::MAX, 5);
        assert!(out.cluster.is_some());
        assert!(
            out.expansions >= 4,
            "at least k expansions: {}",
            out.expansions
        );
    }

    #[test]
    fn degenerate_inputs() {
        let d = line(&[0.0, 1.0]);
        assert_eq!(find_cluster_budgeted(&d, 0, 1.0, 10, 0).cluster, None);
        assert_eq!(find_cluster_budgeted(&d, 3, 1.0, 10, 0).cluster, None);
        assert_eq!(
            find_cluster_budgeted(&d, 1, 1.0, 10, 0).cluster,
            Some(vec![0])
        );
    }

    #[test]
    fn seed_changes_search_order_not_correctness() {
        let d = line(&[0.0, 0.5, 1.0, 5.0, 5.5, 6.0]);
        for seed in 0..10 {
            let out = find_cluster_budgeted(&d, 3, 1.0, u64::MAX, seed);
            let c = out.cluster.expect("always exists");
            assert!(crate::find_cluster::diameter(&d, &c) <= 1.0 + 1e-12);
        }
    }
}
