//! Per-node protocol state for decentralized clustering (Sec. III-B).
//!
//! Each participating host keeps:
//!
//! - `aggrNode[v]` for every overlay neighbor `v` — the `n_cut` closest
//!   nodes reachable through `v` (Algorithm 2, *dynamic aggregation of close
//!   nodes*);
//! - its own *clustering space* `V_x = {x} ∪ ⋃_v aggrNode[v]`, the only
//!   nodes it may put in a cluster;
//! - `aggrCRT[v][l]` for every neighbor and bandwidth class — the maximum
//!   cluster size available through `v` (Algorithm 3, the *cluster routing
//!   table*), plus `aggrCRT[x][l]`, the maximum it can build locally.
//!
//! [`ClusterNode`] is pure state plus message construction/consumption; it
//! performs no I/O. The round engine in `bcc-simnet` moves the messages, and
//! [`crate::process_query`] walks the overlay using the CRTs.

use std::collections::BTreeMap;

use bcc_metric::{DistanceMatrix, NodeId};

use crate::classes::BandwidthClasses;
use crate::error::ClusterError;
use crate::find_cluster::{self, Budgeted, WorkMeter};

/// Configuration shared by every node of a clustering overlay.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// Maximum number of node records per neighbor direction (the paper's
    /// `n_cut`; its tradeoff experiment uses 10).
    pub n_cut: usize,
    /// The quantized bandwidth constraints every CRT is keyed by.
    pub classes: BandwidthClasses,
}

impl ProtocolConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `n_cut` is zero.
    pub fn new(n_cut: usize, classes: BandwidthClasses) -> Self {
        assert!(n_cut > 0, "n_cut must be positive");
        ProtocolConfig { n_cut, classes }
    }
}

/// Protocol state of one host.
#[derive(Debug, Clone)]
pub struct ClusterNode {
    id: NodeId,
    neighbors: Vec<NodeId>,
    /// aggrNode[v]: closest nodes reachable via neighbor v.
    aggr_node: BTreeMap<NodeId, Vec<NodeId>>,
    /// aggrCRT[x][l]: the max cluster size buildable from the local space.
    own_max: Vec<usize>,
    /// aggrCRT[v][l] for each neighbor v.
    aggr_crt: BTreeMap<NodeId, Vec<usize>>,
    class_count: usize,
}

impl ClusterNode {
    /// Creates a node with its overlay neighbor set.
    pub fn new(id: NodeId, neighbors: Vec<NodeId>, class_count: usize) -> Self {
        ClusterNode {
            id,
            neighbors,
            aggr_node: BTreeMap::new(),
            own_max: vec![0; class_count],
            aggr_crt: BTreeMap::new(),
            class_count,
        }
    }

    /// This node's host id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Overlay neighbors.
    pub fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Clears all aggregated protocol state (a cold restart after a crash).
    ///
    /// The id and overlay neighbor set survive — they come from the anchor
    /// tree, not from gossip — but `aggrNode`, `aggrCRT` and the local
    /// maxima are rebuilt from scratch by subsequent gossip rounds.
    pub fn reset(&mut self) {
        self.aggr_node.clear();
        self.aggr_crt.clear();
        self.own_max = vec![0; self.class_count];
    }

    /// Replaces the overlay neighbor list (an anchor-tree edit adjacent to
    /// this host) and drops the aggregated records of any direction that no
    /// longer exists — stale `aggrNode[v]`/`aggrCRT[v]` entries for a
    /// departed neighbor would otherwise keep polluting
    /// [`ClusterNode::clustering_space`] and the CRT folds forever.
    ///
    /// Records for neighbors that remain are kept as-is: they stay valid
    /// gossip state and focused reconvergence refreshes them only where the
    /// senders' reports actually changed.
    pub fn set_neighbors(&mut self, neighbors: Vec<NodeId>) {
        self.aggr_node.retain(|v, _| neighbors.contains(v));
        self.aggr_crt.retain(|v, _| neighbors.contains(v));
        self.neighbors = neighbors;
    }

    /// Algorithm 2, sender side: the `propNode` message for neighbor `to` —
    /// the `n_cut` candidates closest to `to` among `{self} ∪
    /// ⋃_{v ≠ to} aggrNode[v]`.
    ///
    /// `dist` must return the *predicted* distance between two hosts (tree
    /// or label distance).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNeighbor`] if `to` is not a neighbor.
    pub fn node_info_for(
        &self,
        to: NodeId,
        n_cut: usize,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
    ) -> Result<Vec<NodeId>, ClusterError> {
        if !self.neighbors.contains(&to) {
            return Err(ClusterError::UnknownNeighbor {
                neighbor: to.index(),
            });
        }
        let mut cand: Vec<NodeId> = vec![self.id];
        for (&v, nodes) in &self.aggr_node {
            if v == to {
                continue;
            }
            cand.extend(nodes.iter().copied());
        }
        cand.sort_unstable();
        cand.dedup();
        cand.retain(|&u| u != to);
        // Top n_cut by predicted distance to `to`; ties break by id so the
        // protocol is deterministic.
        let mut keyed: Vec<(f64, NodeId)> = cand.into_iter().map(|u| (dist(to, u), u)).collect();
        keyed.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("distances are comparable")
                .then(a.1.cmp(&b.1))
        });
        keyed.truncate(n_cut);
        Ok(keyed.into_iter().map(|(_, u)| u).collect())
    }

    /// Algorithm 2, receiver side: stores `propNode` received from `from`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNeighbor`] if `from` is not a
    /// neighbor.
    pub fn receive_node_info(
        &mut self,
        from: NodeId,
        info: Vec<NodeId>,
    ) -> Result<(), ClusterError> {
        if !self.neighbors.contains(&from) {
            return Err(ClusterError::UnknownNeighbor {
                neighbor: from.index(),
            });
        }
        self.aggr_node.insert(from, info);
        Ok(())
    }

    /// The node's clustering space `V_x = {x} ∪ ⋃_v aggrNode[v]`, sorted.
    pub fn clustering_space(&self) -> Vec<NodeId> {
        let mut space: Vec<NodeId> = vec![self.id];
        for nodes in self.aggr_node.values() {
            space.extend(nodes.iter().copied());
        }
        space.sort_unstable();
        space.dedup();
        space
    }

    /// Algorithm 3, line 8: recomputes `aggrCRT[x][l]` for every class by
    /// running the centralized search over the local clustering space.
    pub fn recompute_own_max(
        &mut self,
        classes: &BandwidthClasses,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
    ) {
        let space = self.clustering_space();
        let local = DistanceMatrix::from_fn(space.len(), |i, j| dist(space[i], space[j]));
        self.own_max = classes
            .distances()
            .iter()
            .map(|&l| find_cluster::max_cluster_size(&local, l))
            .collect();
    }

    /// `aggrCRT[x][l]` — the maximum cluster size this node can build
    /// locally, per class index.
    pub fn own_max(&self) -> &[usize] {
        &self.own_max
    }

    /// Restores `aggrCRT[x]` from a checkpoint without recomputing it —
    /// the warm-restart path, which must reproduce the exporting node's
    /// state bit-for-bit (and skip the local cluster searches
    /// [`ClusterNode::recompute_own_max`] would run).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NoMatchingClass`] if the row length does not
    /// match the class count.
    pub fn restore_own_max(&mut self, own_max: Vec<usize>) -> Result<(), ClusterError> {
        if own_max.len() != self.class_count {
            return Err(ClusterError::NoMatchingClass {
                bandwidth: f64::NAN,
            });
        }
        self.own_max = own_max;
        Ok(())
    }

    /// Algorithm 3, sender side: the `propCRT` row for neighbor `to` —
    /// per class, the best cluster size among this node and every direction
    /// except `to`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNeighbor`] if `to` is not a neighbor.
    pub fn crt_for(&self, to: NodeId) -> Result<Vec<usize>, ClusterError> {
        if !self.neighbors.contains(&to) {
            return Err(ClusterError::UnknownNeighbor {
                neighbor: to.index(),
            });
        }
        let mut row = self.own_max.clone();
        for (&v, crt) in &self.aggr_crt {
            if v == to {
                continue;
            }
            for (slot, &val) in row.iter_mut().zip(crt) {
                *slot = (*slot).max(val);
            }
        }
        Ok(row)
    }

    /// Algorithm 3, receiver side: stores the `propCRT` row from `from`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNeighbor`] if `from` is not a
    /// neighbor, and [`ClusterError::NoMatchingClass`] if the row length
    /// does not match the class count.
    pub fn receive_crt(&mut self, from: NodeId, row: Vec<usize>) -> Result<(), ClusterError> {
        if !self.neighbors.contains(&from) {
            return Err(ClusterError::UnknownNeighbor {
                neighbor: from.index(),
            });
        }
        if row.len() != self.class_count {
            return Err(ClusterError::NoMatchingClass {
                bandwidth: f64::NAN,
            });
        }
        self.aggr_crt.insert(from, row);
        Ok(())
    }

    /// `aggrCRT[v][class_idx]` for a neighbor, `0` when nothing has been
    /// received yet.
    pub fn crt_entry(&self, v: NodeId, class_idx: usize) -> usize {
        self.aggr_crt.get(&v).map_or(0, |row| row[class_idx])
    }

    /// Audit accessor: the `aggrNode[v]` record currently stored for
    /// neighbor `v`, or `None` when no Algorithm 2 message from `v` has
    /// been received yet. Used by consistency oracles to cross-check the
    /// gossip state against the live framework without mutating the node.
    pub fn aggr_node_for(&self, v: NodeId) -> Option<&[NodeId]> {
        self.aggr_node.get(&v).map(Vec::as_slice)
    }

    /// Audit accessor: the number of bandwidth classes this node tracks
    /// (the length of every CRT row).
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Algorithm 4, local half: answers `(k, class_idx)` from the local
    /// clustering space if `aggrCRT[x][l]` admits it.
    pub fn answer_locally(
        &self,
        k: usize,
        class_idx: usize,
        classes: &BandwidthClasses,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
    ) -> Option<Vec<NodeId>> {
        if k == 0 || k > self.own_max[class_idx] {
            return None;
        }
        let space = self.clustering_space();
        let local = DistanceMatrix::from_fn(space.len(), |i, j| dist(space[i], space[j]));
        let l = classes.distance_of(class_idx);
        find_cluster::find_cluster(&local, k, l)
            .map(|idxs| idxs.into_iter().map(|i| space[i]).collect())
    }

    /// [`ClusterNode::answer_locally`] through a [`crate::ClusterIndex`]
    /// built over the local clustering space: the same CRT gate, the same
    /// space, and a bit-identical answer — the indexed kernel prunes rows
    /// and pairs through ball-size bounds but runs the identical membership
    /// test on the survivors. Local spaces are small (close nodes only), so
    /// the index is built per call; the win is the pruned scan on gossip-
    /// inflated spaces, and the shared code path with the system-wide
    /// indexed probes.
    pub fn answer_locally_indexed(
        &self,
        k: usize,
        class_idx: usize,
        classes: &BandwidthClasses,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
    ) -> Option<Vec<NodeId>> {
        if k == 0 || k > self.own_max[class_idx] {
            return None;
        }
        let space = self.clustering_space();
        let local = DistanceMatrix::from_fn(space.len(), |i, j| dist(space[i], space[j]));
        let index = crate::ClusterIndex::from_metric(&local);
        let l = classes.distance_of(class_idx);
        crate::find_cluster_indexed(&local, &index, k, l)
            .map(|idxs| idxs.into_iter().map(|i| space[i]).collect())
    }

    /// [`ClusterNode::answer_locally`] restricted to hosts the caller
    /// believes alive — the failure-recovery variant used by
    /// [`crate::process_query_resilient`].
    ///
    /// The clustering space may contain crashed hosts (close-node records
    /// are only as fresh as the last gossip round), so a cluster assembled
    /// from stale state could include dead members. Filtering the space
    /// keeps the answer valid: the diameter constraint is hereditary, so
    /// any subset of a feasible cluster is feasible.
    pub fn answer_locally_filtered(
        &self,
        k: usize,
        class_idx: usize,
        classes: &BandwidthClasses,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
        mut alive: impl FnMut(NodeId) -> bool,
    ) -> Option<Vec<NodeId>> {
        if k == 0 || k > self.own_max[class_idx] {
            return None;
        }
        let space: Vec<NodeId> = self
            .clustering_space()
            .into_iter()
            .filter(|&u| alive(u))
            .collect();
        if space.len() < k {
            return None;
        }
        let local = DistanceMatrix::from_fn(space.len(), |i, j| dist(space[i], space[j]));
        let l = classes.distance_of(class_idx);
        find_cluster::find_cluster(&local, k, l)
            .map(|idxs| idxs.into_iter().map(|i| space[i]).collect())
    }

    /// [`ClusterNode::answer_locally_filtered`] through a per-call
    /// [`crate::ClusterIndex`] over the live part of the clustering space:
    /// the same CRT gate, the same liveness filter, and a bit-identical
    /// answer — [`crate::find_cluster_indexed`] returns exactly what the
    /// pair sweep would on the same sub-metric. This is the local kernel
    /// the indexed resilient walk
    /// ([`crate::process_query_resilient_indexed`]) runs at every node.
    pub fn answer_locally_filtered_indexed(
        &self,
        k: usize,
        class_idx: usize,
        classes: &BandwidthClasses,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
        mut alive: impl FnMut(NodeId) -> bool,
    ) -> Option<Vec<NodeId>> {
        if k == 0 || k > self.own_max[class_idx] {
            return None;
        }
        let space: Vec<NodeId> = self
            .clustering_space()
            .into_iter()
            .filter(|&u| alive(u))
            .collect();
        if space.len() < k {
            return None;
        }
        let local = DistanceMatrix::from_fn(space.len(), |i, j| dist(space[i], space[j]));
        let index = crate::ClusterIndex::from_metric(&local);
        let l = classes.distance_of(class_idx);
        crate::find_cluster_indexed(&local, &index, k, l)
            .map(|idxs| idxs.into_iter().map(|i| space[i]).collect())
    }

    /// [`ClusterNode::answer_locally_filtered`] under a [`WorkMeter`]: the
    /// local cluster search charges the meter per pair examined, and on
    /// exhaustion reports the largest live subset (size ≥ 2) assembled so
    /// far as the `best_partial` instead of a full answer.
    ///
    /// With an unexhausted meter the result is bit-identical to the
    /// unbudgeted variant.
    pub fn answer_locally_filtered_budgeted(
        &self,
        k: usize,
        class_idx: usize,
        classes: &BandwidthClasses,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
        mut alive: impl FnMut(NodeId) -> bool,
        meter: &mut WorkMeter,
    ) -> Budgeted<Option<Vec<NodeId>>> {
        if k == 0 || k > self.own_max[class_idx] {
            return Budgeted::Done(None);
        }
        let space: Vec<NodeId> = self
            .clustering_space()
            .into_iter()
            .filter(|&u| alive(u))
            .collect();
        if space.len() < k {
            return Budgeted::Done(None);
        }
        let local = DistanceMatrix::from_fn(space.len(), |i, j| dist(space[i], space[j]));
        let l = classes.distance_of(class_idx);
        match find_cluster::find_cluster_budgeted(&local, k, l, meter) {
            Budgeted::Done(r) => {
                Budgeted::Done(r.map(|idxs| idxs.into_iter().map(|i| space[i]).collect()))
            }
            Budgeted::Exhausted {
                pairs_done,
                best_partial,
            } => Budgeted::Exhausted {
                pairs_done,
                best_partial: best_partial.map(|idxs| idxs.into_iter().map(|i| space[i]).collect()),
            },
        }
    }

    /// The largest cluster buildable from the *live* part of the local
    /// clustering space, if any of size ≥ 2 exists — the source of partial
    /// results when the full `k` cannot be assembled.
    pub fn best_partial(
        &self,
        class_idx: usize,
        classes: &BandwidthClasses,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
        mut alive: impl FnMut(NodeId) -> bool,
    ) -> Option<Vec<NodeId>> {
        let space: Vec<NodeId> = self
            .clustering_space()
            .into_iter()
            .filter(|&u| alive(u))
            .collect();
        if space.len() < 2 {
            return None;
        }
        let local = DistanceMatrix::from_fn(space.len(), |i, j| dist(space[i], space[j]));
        let l = classes.distance_of(class_idx);
        let m = find_cluster::max_cluster_size(&local, l);
        if m < 2 {
            return None;
        }
        find_cluster::find_cluster(&local, m, l)
            .map(|idxs| idxs.into_iter().map(|i| space[i]).collect())
    }

    /// [`ClusterNode::best_partial`] under a [`WorkMeter`]: both the sizing
    /// pass and the member search charge the meter. On exhaustion during
    /// sizing no members are known yet (`best_partial: None`); on
    /// exhaustion during the search the largest subset seen is reported.
    ///
    /// With an unexhausted meter the result is bit-identical to the
    /// unbudgeted variant.
    pub fn best_partial_budgeted(
        &self,
        class_idx: usize,
        classes: &BandwidthClasses,
        mut dist: impl FnMut(NodeId, NodeId) -> f64,
        mut alive: impl FnMut(NodeId) -> bool,
        meter: &mut WorkMeter,
    ) -> Budgeted<Option<Vec<NodeId>>> {
        let space: Vec<NodeId> = self
            .clustering_space()
            .into_iter()
            .filter(|&u| alive(u))
            .collect();
        if space.len() < 2 {
            return Budgeted::Done(None);
        }
        let local = DistanceMatrix::from_fn(space.len(), |i, j| dist(space[i], space[j]));
        let l = classes.distance_of(class_idx);
        let m = match find_cluster::max_cluster_size_budgeted(&local, l, meter) {
            Budgeted::Done(m) => m,
            Budgeted::Exhausted { pairs_done, .. } => {
                return Budgeted::Exhausted {
                    pairs_done,
                    best_partial: None,
                }
            }
        };
        if m < 2 {
            return Budgeted::Done(None);
        }
        match find_cluster::find_cluster_budgeted(&local, m, l, meter) {
            Budgeted::Done(r) => {
                Budgeted::Done(r.map(|idxs| idxs.into_iter().map(|i| space[i]).collect()))
            }
            Budgeted::Exhausted {
                pairs_done,
                best_partial,
            } => Budgeted::Exhausted {
                pairs_done,
                best_partial: best_partial.map(|idxs| idxs.into_iter().map(|i| space[i]).collect()),
            },
        }
    }

    /// Algorithm 4, routing half: a neighbor (≠ `exclude`) whose direction
    /// promises a cluster of size ≥ `k` for this class.
    pub fn route(&self, k: usize, class_idx: usize, exclude: Option<NodeId>) -> Option<NodeId> {
        self.route_with_policy(k, class_idx, exclude, RoutePolicy::FirstFit)
    }

    /// Like [`ClusterNode::route`] but with an explicit neighbor-selection
    /// policy.
    pub fn route_with_policy(
        &self,
        k: usize,
        class_idx: usize,
        exclude: Option<NodeId>,
        policy: RoutePolicy,
    ) -> Option<NodeId> {
        self.route_excluding(k, class_idx, exclude, &[], policy)
    }

    /// Like [`ClusterNode::route_with_policy`] but also skipping every
    /// neighbor in `blacklist` — hosts discovered dead while the query was
    /// in flight, which the walk reroutes around.
    pub fn route_excluding(
        &self,
        k: usize,
        class_idx: usize,
        exclude: Option<NodeId>,
        blacklist: &[NodeId],
        policy: RoutePolicy,
    ) -> Option<NodeId> {
        let eligible = self
            .neighbors
            .iter()
            .copied()
            .filter(|&v| Some(v) != exclude)
            .filter(|v| !blacklist.contains(v))
            .filter(|&v| self.crt_entry(v, class_idx) >= k);
        match policy {
            RoutePolicy::FirstFit => eligible.min_by_key(|&v| {
                // Neighbor order = parent first, then children (join order):
                // the paper's "any neighbor" reading, made deterministic.
                self.neighbors
                    .iter()
                    .position(|&n| n == v)
                    .expect("eligible is a neighbor")
            }),
            RoutePolicy::BestFit => eligible.max_by_key(|&v| (self.crt_entry(v, class_idx), v)),
            RoutePolicy::TightestFit => eligible.min_by_key(|&v| (self.crt_entry(v, class_idx), v)),
        }
    }
}

/// How a node picks among multiple neighbors whose CRT promises a
/// satisfying cluster (the paper says "any"; the choice affects hop counts
/// but never correctness — measured by the `ablations` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// The first eligible neighbor in overlay order (parent, then children).
    #[default]
    FirstFit,
    /// The neighbor promising the *largest* cluster — heads toward dense
    /// regions, usually minimizing hops.
    BestFit,
    /// The neighbor promising the *smallest* sufficient cluster — leaves
    /// dense regions available for harder queries.
    TightestFit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_metric::RationalTransform;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn classes() -> BandwidthClasses {
        BandwidthClasses::new(vec![25.0, 50.0], RationalTransform::new(100.0))
    }

    /// Line metric over ids: d(i, j) = |i − j|.
    fn line_dist(a: NodeId, b: NodeId) -> f64 {
        (a.index() as f64 - b.index() as f64).abs()
    }

    #[test]
    fn config_rejects_zero_ncut() {
        let result = std::panic::catch_unwind(|| ProtocolConfig::new(0, classes()));
        assert!(result.is_err());
    }

    #[test]
    fn node_info_includes_self_and_caps_at_ncut() {
        let mut m = ClusterNode::new(n(1), vec![n(0), n(2)], 2);
        m.receive_node_info(n(2), vec![n(3), n(4), n(5)]).unwrap();
        // Info for n0: candidates {1} ∪ aggrNode[2] = {1, 3, 4, 5}, closest
        // two to n0 under the line metric are 1 and 3.
        let info = m.node_info_for(n(0), 2, line_dist).unwrap();
        assert_eq!(info, vec![n(1), n(3)]);
    }

    #[test]
    fn node_info_excludes_target_direction() {
        let mut m = ClusterNode::new(n(1), vec![n(0), n(2)], 2);
        m.receive_node_info(n(0), vec![n(9)]).unwrap();
        m.receive_node_info(n(2), vec![n(3)]).unwrap();
        // Info destined to n0 must not echo what came from n0.
        let info = m.node_info_for(n(0), 10, line_dist).unwrap();
        assert_eq!(info, vec![n(1), n(3)]);
    }

    #[test]
    fn node_info_rejects_strangers() {
        let m = ClusterNode::new(n(1), vec![n(0)], 1);
        assert!(matches!(
            m.node_info_for(n(7), 3, line_dist),
            Err(ClusterError::UnknownNeighbor { neighbor: 7 })
        ));
        let mut m2 = m.clone();
        assert!(m2.receive_node_info(n(7), vec![]).is_err());
    }

    #[test]
    fn clustering_space_dedups() {
        let mut x = ClusterNode::new(n(0), vec![n(1), n(2)], 2);
        x.receive_node_info(n(1), vec![n(3), n(4)]).unwrap();
        x.receive_node_info(n(2), vec![n(4), n(5)]).unwrap();
        assert_eq!(x.clustering_space(), vec![n(0), n(3), n(4), n(5)]);
    }

    #[test]
    fn own_max_over_local_space() {
        // Space {0, 1, 2, 3} on a line; class distances are 4 (b=25) and
        // 2 (b=50): max sizes 4 and 3.
        let mut x = ClusterNode::new(n(0), vec![n(1)], 2);
        x.receive_node_info(n(1), vec![n(1), n(2), n(3)]).unwrap();
        x.recompute_own_max(&classes(), line_dist);
        assert_eq!(x.own_max(), &[4, 3]);
    }

    #[test]
    fn crt_row_takes_max_over_other_directions() {
        let mut x = ClusterNode::new(n(1), vec![n(0), n(2), n(3)], 2);
        x.receive_crt(n(0), vec![5, 1]).unwrap();
        x.receive_crt(n(2), vec![2, 4]).unwrap();
        x.receive_crt(n(3), vec![3, 3]).unwrap();
        // Row for n0 excludes n0's own direction.
        assert_eq!(x.crt_for(n(0)).unwrap(), vec![3, 4]);
        // Row for n2 excludes n2: max(own=0, n0, n3).
        assert_eq!(x.crt_for(n(2)).unwrap(), vec![5, 3]);
    }

    #[test]
    fn crt_row_length_checked() {
        let mut x = ClusterNode::new(n(1), vec![n(0)], 2);
        assert!(x.receive_crt(n(0), vec![1]).is_err());
        assert!(x.receive_crt(n(0), vec![1, 2]).is_ok());
    }

    #[test]
    fn answer_locally_respects_crt_gate() {
        let mut x = ClusterNode::new(n(0), vec![n(1)], 2);
        x.receive_node_info(n(1), vec![n(1), n(2), n(3)]).unwrap();
        x.recompute_own_max(&classes(), line_dist);
        // Class 1 (b = 50, l = 2): max is 3.
        let got = x.answer_locally(3, 1, &classes(), line_dist).unwrap();
        assert_eq!(got.len(), 3);
        assert!(x.answer_locally(4, 1, &classes(), line_dist).is_none());
        assert!(x.answer_locally(0, 1, &classes(), line_dist).is_none());
        // Class 0 (l = 4): all four fit.
        assert_eq!(
            x.answer_locally(4, 0, &classes(), line_dist).unwrap().len(),
            4
        );
    }

    #[test]
    fn answered_cluster_satisfies_constraint() {
        let mut x = ClusterNode::new(n(0), vec![n(1)], 2);
        x.receive_node_info(n(1), vec![n(1), n(2), n(3), n(7), n(8)])
            .unwrap();
        x.recompute_own_max(&classes(), line_dist);
        let got = x.answer_locally(3, 1, &classes(), line_dist).unwrap();
        for (i, &a) in got.iter().enumerate() {
            for &b in &got[i + 1..] {
                assert!(line_dist(a, b) <= 2.0, "pair ({a}, {b}) violates l");
            }
        }
    }

    #[test]
    fn routing_skips_excluded_neighbor() {
        let mut x = ClusterNode::new(n(1), vec![n(0), n(2)], 1);
        x.receive_crt(n(0), vec![5]).unwrap();
        x.receive_crt(n(2), vec![5]).unwrap();
        assert_eq!(x.route(4, 0, Some(n(0))), Some(n(2)));
        assert_eq!(x.route(4, 0, None), Some(n(0)));
        assert_eq!(x.route(6, 0, None), None);
    }

    #[test]
    fn routing_before_any_crt_is_none() {
        let x = ClusterNode::new(n(1), vec![n(0), n(2)], 1);
        assert_eq!(x.route(2, 0, None), None);
        assert_eq!(x.crt_entry(n(0), 0), 0);
    }

    #[test]
    fn reset_clears_aggregated_state_but_keeps_identity() {
        let mut x = ClusterNode::new(n(0), vec![n(1)], 2);
        x.receive_node_info(n(1), vec![n(1), n(2)]).unwrap();
        x.receive_crt(n(1), vec![3, 2]).unwrap();
        x.recompute_own_max(&classes(), line_dist);
        assert!(x.own_max().iter().any(|&m| m > 0));
        x.reset();
        assert_eq!(x.id(), n(0));
        assert_eq!(x.neighbors(), &[n(1)]);
        assert_eq!(x.clustering_space(), vec![n(0)]);
        assert_eq!(x.own_max(), &[0, 0]);
        assert_eq!(x.crt_entry(n(1), 0), 0);
    }

    #[test]
    fn set_neighbors_prunes_stale_directions() {
        let mut x = ClusterNode::new(n(1), vec![n(0), n(2)], 2);
        x.receive_node_info(n(0), vec![n(0), n(9)]).unwrap();
        x.receive_node_info(n(2), vec![n(2), n(3)]).unwrap();
        x.receive_crt(n(0), vec![5, 4]).unwrap();
        x.receive_crt(n(2), vec![2, 2]).unwrap();
        // An anchor edit swaps neighbor 0 for neighbor 4: records from the
        // kept direction survive, the departed direction's vanish — from
        // the clustering space and the CRT folds alike.
        x.set_neighbors(vec![n(2), n(4)]);
        assert_eq!(x.neighbors(), &[n(2), n(4)]);
        assert_eq!(x.clustering_space(), vec![n(1), n(2), n(3)]);
        assert_eq!(x.crt_entry(n(0), 0), 0);
        assert_eq!(x.crt_entry(n(2), 0), 2);
        assert_eq!(x.aggr_node_for(n(0)), None);
        assert_eq!(x.aggr_node_for(n(2)), Some([n(2), n(3)].as_slice()));
        // Gossip toward the new neighbor works immediately.
        assert!(x.node_info_for(n(4), 2, line_dist).is_ok());
    }

    #[test]
    fn filtered_answer_skips_dead_hosts() {
        let mut x = ClusterNode::new(n(0), vec![n(1)], 2);
        x.receive_node_info(n(1), vec![n(1), n(2), n(3)]).unwrap();
        x.recompute_own_max(&classes(), line_dist);
        // Class 1 (l = 2) admits {0, 1, 2}; with host 1 dead only pairs
        // remain, so a live 3-cluster no longer exists.
        let full = x
            .answer_locally_filtered(3, 1, &classes(), line_dist, |_| true)
            .unwrap();
        assert_eq!(full.len(), 3);
        assert!(x
            .answer_locally_filtered(3, 1, &classes(), line_dist, |u| u != n(1))
            .is_none());
        let pair = x
            .answer_locally_filtered(2, 1, &classes(), line_dist, |u| u != n(1))
            .unwrap();
        assert!(!pair.contains(&n(1)));
    }

    #[test]
    fn best_partial_returns_largest_live_cluster() {
        let mut x = ClusterNode::new(n(0), vec![n(1)], 2);
        x.receive_node_info(n(1), vec![n(1), n(2), n(3)]).unwrap();
        x.recompute_own_max(&classes(), line_dist);
        let partial = x
            .best_partial(1, &classes(), line_dist, |u| u != n(1))
            .unwrap();
        assert_eq!(partial.len(), 2, "live space {{0, 2, 3}} admits a pair");
        // Everything dead but the node itself: no partial of size >= 2.
        assert!(x
            .best_partial(1, &classes(), line_dist, |u| u == n(0))
            .is_none());
    }

    #[test]
    fn route_excluding_skips_blacklisted_neighbors() {
        let mut x = ClusterNode::new(n(1), vec![n(0), n(2), n(3)], 1);
        x.receive_crt(n(0), vec![5]).unwrap();
        x.receive_crt(n(2), vec![5]).unwrap();
        x.receive_crt(n(3), vec![5]).unwrap();
        assert_eq!(
            x.route_excluding(4, 0, None, &[], RoutePolicy::FirstFit),
            Some(n(0))
        );
        assert_eq!(
            x.route_excluding(4, 0, None, &[n(0)], RoutePolicy::FirstFit),
            Some(n(2))
        );
        assert_eq!(
            x.route_excluding(4, 0, Some(n(2)), &[n(0), n(3)], RoutePolicy::FirstFit),
            None
        );
    }
}
