//! Hub search — the paper's first future-work extension (Sec. VI).
//!
//! Given a set of hosts `S`, find a single host `x ∉ S` with high bandwidth
//! to *every* member of `S` (e.g. a data-distribution source for a
//! scheduled job set, or a cluster representative in the CDN scenario). In
//! the distance domain this is a 1-center problem restricted to candidate
//! hosts: minimize `max_{s ∈ S} d(x, s)`.
//!
//! Unlike clustering, hub search is polynomial in *any* metric space
//! (`O(n·|S|)` by direct scan), so no tree-metric assumption is needed —
//! but running it on predicted distances inherits the prediction quality of
//! the underlying framework just like Algorithm 1 does.

use bcc_metric::FiniteMetric;

/// The best hub for `targets`: the non-member minimizing the maximum
/// distance to the set, returned with that radius. Ties break toward the
/// smallest index. `None` when every host is a target or `targets` is
/// empty.
///
/// ```
/// use bcc_core::hub::best_hub;
/// use bcc_metric::DistanceMatrix;
///
/// // Line: 0 -1- 1 -1- 2 -1- 3. Hub of {0, 2} is 1 (radius 1).
/// let d = DistanceMatrix::from_fn(4, |i, j| (i as f64 - j as f64).abs());
/// assert_eq!(best_hub(&d, &[0, 2]), Some((1, 1.0)));
/// ```
pub fn best_hub<M: FiniteMetric>(metric: &M, targets: &[usize]) -> Option<(usize, f64)> {
    if targets.is_empty() {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for x in 0..metric.len() {
        if targets.contains(&x) {
            continue;
        }
        let radius = targets
            .iter()
            .map(|&s| metric.distance(x, s))
            .fold(0.0f64, f64::max);
        match best {
            Some((_, br)) if br <= radius => {}
            _ => best = Some((x, radius)),
        }
    }
    best
}

/// Finds any host whose distance to every target is at most `l`
/// (equivalently, whose bandwidth to every target is at least `b = C/l`).
///
/// Returns the best such hub so callers get the strongest candidate.
pub fn find_hub<M: FiniteMetric>(metric: &M, targets: &[usize], l: f64) -> Option<usize> {
    match best_hub(metric, targets) {
        Some((x, radius)) if radius <= l => Some(x),
        _ => None,
    }
}

/// Ranks all non-target hosts by their hub radius, best first.
pub fn rank_hubs<M: FiniteMetric>(metric: &M, targets: &[usize]) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> = (0..metric.len())
        .filter(|x| !targets.contains(x))
        .map(|x| {
            let radius = targets
                .iter()
                .map(|&s| metric.distance(x, s))
                .fold(0.0f64, f64::max);
            (x, radius)
        })
        .collect();
    out.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("finite radii")
            .then(a.0.cmp(&b.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_metric::DistanceMatrix;

    fn line(n: usize) -> DistanceMatrix {
        DistanceMatrix::from_fn(n, |i, j| (i as f64 - j as f64).abs())
    }

    #[test]
    fn best_hub_on_line() {
        let d = line(5);
        assert_eq!(best_hub(&d, &[0, 2]), Some((1, 1.0)));
        assert_eq!(best_hub(&d, &[0, 4]), Some((2, 2.0)));
    }

    #[test]
    fn tie_breaks_to_smallest_index() {
        let d = line(4);
        // Targets {1, 2}: hubs 0 and 3 both have radius 2.
        assert_eq!(best_hub(&d, &[1, 2]), Some((0, 2.0)));
    }

    #[test]
    fn empty_targets_none() {
        assert_eq!(best_hub(&line(3), &[]), None);
        assert_eq!(find_hub(&line(3), &[], 1.0), None);
    }

    #[test]
    fn all_hosts_targeted_none() {
        let d = line(3);
        assert_eq!(best_hub(&d, &[0, 1, 2]), None);
    }

    #[test]
    fn find_hub_respects_constraint() {
        let d = line(5);
        assert_eq!(find_hub(&d, &[0, 2], 1.0), Some(1));
        assert_eq!(find_hub(&d, &[0, 2], 0.5), None);
        assert_eq!(find_hub(&d, &[0, 4], 2.0), Some(2));
    }

    #[test]
    fn single_target_picks_nearest_other() {
        let d = line(4);
        assert_eq!(best_hub(&d, &[3]), Some((2, 1.0)));
    }

    #[test]
    fn rank_hubs_sorted() {
        let d = line(6);
        let ranked = rank_hubs(&d, &[0, 2]);
        assert_eq!(ranked.len(), 4);
        assert_eq!(ranked[0], (1, 1.0));
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // The worst hub is the far end of the line.
        assert_eq!(ranked.last().unwrap().0, 5);
    }

    #[test]
    fn star_metric_hub_is_lowest_radius_leaf() {
        // Star: d(i, j) = w_i + w_j. The best hub for any target set is
        // the non-target with the smallest own radius.
        let w = [5.0, 1.0, 3.0, 2.0];
        let d = DistanceMatrix::from_fn(4, |i, j| w[i] + w[j]);
        let (hub, radius) = best_hub(&d, &[0, 2]).unwrap();
        assert_eq!(hub, 1);
        assert_eq!(radius, 1.0 + 5.0);
    }
}
