//! Bandwidth-constrained clustering — the primary contribution of
//! *Searching for Bandwidth-Constrained Clusters* (Song, Keleher, Sussman;
//! ICDCS 2011).
//!
//! Given `n` hosts, a pairwise bandwidth function and a query `(k, b)`, find
//! `k` hosts whose pairwise bandwidth is at least `b`. On general graphs
//! this is `k`-Clique; on a tree metric space (which Internet bandwidth
//! approximates) it is polynomial. This crate provides:
//!
//! - [`find_cluster`] / [`max_cluster_size`] — Algorithm 1, the `O(n³)`
//!   centralized search, plus the binary-search variant from Algorithm 3.
//!   Each hot kernel has a `_par` twin ([`find_cluster_par`],
//!   [`max_cluster_size_par`], [`min_diameter_cluster_par`]) on the
//!   `bcc-par` pool that returns bit-identical results with deterministic
//!   early exit;
//! - [`ClusterNode`] — per-host protocol state implementing Algorithm 2
//!   (close-node aggregation) and Algorithm 3 (cluster routing tables);
//! - [`process_query`] — Algorithm 4, decentralized query routing;
//! - [`BandwidthClasses`] — the quantized constraint classes CRTs are keyed
//!   by;
//! - [`find_cluster_euclidean`] — the paper's comparison model: exact
//!   `k`-diameter clustering in the Vivaldi plane via lune decomposition and
//!   bipartite maximum independent sets ([`bipartite`]).
//!
//! # Example: centralized search
//!
//! ```
//! use bcc_core::find_cluster;
//! use bcc_metric::{BandwidthMatrix, RationalTransform};
//!
//! // Hosts 0-2 share 100 Mbps; host 3 is behind a 10 Mbps link.
//! let caps = [100.0f64, 100.0, 100.0, 10.0];
//! let bw = BandwidthMatrix::from_fn(4, |i, j| caps[i].min(caps[j]));
//! let t = RationalTransform::default();
//! let d = t.distance_matrix(&bw);
//!
//! // Query: 3 hosts with pairwise bandwidth >= 50 Mbps.
//! let cluster = find_cluster(&d, 3, t.distance_constraint(50.0));
//! assert_eq!(cluster, Some(vec![0, 1, 2]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bipartite;
pub mod hub;
pub mod sword;

mod classes;
mod error;
mod euclidean;
mod find_cluster;
mod index;
mod node;
mod query;

pub use classes::BandwidthClasses;
pub use error::{ClusterError, QueryError};
pub use euclidean::{find_cluster_euclidean, max_cluster_size_euclidean};
pub use find_cluster::{
    diameter, exists_cluster_brute_force, find_cluster, find_cluster_among, find_cluster_budgeted,
    find_cluster_ordered, find_cluster_ordered_par, find_cluster_par, max_cluster_size,
    max_cluster_size_binary_search, max_cluster_size_budgeted, max_cluster_size_par,
    min_diameter_cluster, min_diameter_cluster_par, Budgeted, PairOrder, Query, WorkMeter,
    BUDGET_BLOCK, PAR_SERIAL_CUTOFF,
};
pub use index::{
    find_cluster_indexed, find_cluster_indexed_budgeted, find_cluster_indexed_par,
    max_cluster_size_indexed, max_cluster_size_indexed_budgeted, max_cluster_size_indexed_par,
    ClusterIndex, IndexError, IndexStats,
};
pub use node::{ClusterNode, ProtocolConfig, RoutePolicy};
pub use query::{
    process_query, process_query_indexed, process_query_resilient,
    process_query_resilient_budgeted, process_query_resilient_indexed, process_query_with_policy,
    Degradation, QueryOutcome, QueryRequest, RetryPolicy,
};
