//! Property tests pinning the indexed kernels to the brute-force sweeps:
//! bit-identity on random tree metrics *and* arbitrary symmetric matrices,
//! across thread counts, and digest equality between incremental index
//! maintenance and from-scratch rebuilds.

use bcc_core::{
    find_cluster, find_cluster_indexed, find_cluster_indexed_budgeted, find_cluster_indexed_par,
    max_cluster_size, max_cluster_size_indexed, max_cluster_size_indexed_budgeted,
    max_cluster_size_indexed_par, Budgeted, ClusterIndex, WorkMeter,
};
use bcc_metric::DistanceMatrix;
use proptest::prelude::*;

/// Random tree metric from a random parent array + edge weights.
fn tree_metric(parents: &[usize], weights: &[f64]) -> DistanceMatrix {
    let n = parents.len() + 1;
    let mut dist_to_root = vec![0.0; n];
    let mut depth = vec![0usize; n];
    for i in 1..n {
        dist_to_root[i] = dist_to_root[parents[i - 1]] + weights[i - 1];
        depth[i] = depth[parents[i - 1]] + 1;
    }
    let parent_of = |i: usize| if i == 0 { None } else { Some(parents[i - 1]) };
    DistanceMatrix::from_fn(n, |a, b| {
        let (mut x, mut y) = (a, b);
        while depth[x] > depth[y] {
            x = parent_of(x).unwrap();
        }
        while depth[y] > depth[x] {
            y = parent_of(y).unwrap();
        }
        while x != y {
            x = parent_of(x).unwrap();
            y = parent_of(y).unwrap();
        }
        dist_to_root[a] + dist_to_root[b] - 2.0 * dist_to_root[x]
    })
}

fn arb_tree_metric(max: usize) -> impl Strategy<Value = DistanceMatrix> {
    (4usize..=max)
        .prop_flat_map(|n| {
            let parents = (1..n).map(|i| 0..i).collect::<Vec<_>>();
            let weights = proptest::collection::vec(0.1f64..10.0, n - 1);
            (parents, weights)
        })
        .prop_map(|(parents, weights)| tree_metric(&parents, &weights))
}

/// Any symmetric "metric-ish" matrix (may violate triangle inequality) —
/// the indexed kernels must stay exact even without tree structure.
fn arb_any_metric(max: usize) -> impl Strategy<Value = DistanceMatrix> {
    (2usize..=max)
        .prop_flat_map(|n| proptest::collection::vec(0.01f64..100.0, n * (n - 1) / 2))
        .prop_map(|values| {
            let mut n_fit = 2;
            while n_fit * (n_fit - 1) / 2 < values.len() {
                n_fit += 1;
            }
            let mut it = values.into_iter();
            DistanceMatrix::from_fn(n_fit, |_, _| it.next().unwrap_or(1.0))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_bit_identical_on_tree_metrics_across_threads(
        d in arb_tree_metric(10),
        k in 2usize..6,
    ) {
        let index = ClusterIndex::from_metric(&d);
        let values = d.pair_values();
        for &l in values.iter().take(5) {
            let expect = find_cluster(&d, k, l);
            prop_assert_eq!(
                find_cluster_indexed(&d, &index, k, l), expect.clone(),
                "serial k={} l={}", k, l
            );
            let expect_max = max_cluster_size(&d, l);
            prop_assert_eq!(
                max_cluster_size_indexed(&d, &index, l), expect_max,
                "serial max l={}", l
            );
            for threads in [1usize, 2, 8] {
                bcc_par::set_threads(threads);
                prop_assert_eq!(
                    find_cluster_indexed_par(&d, &index, k, l), expect.clone(),
                    "par k={} l={} threads={}", k, l, threads
                );
                prop_assert_eq!(
                    max_cluster_size_indexed_par(&d, &index, l), expect_max,
                    "par max l={} threads={}", l, threads
                );
            }
            bcc_par::set_threads(0);
        }
    }

    #[test]
    fn indexed_bit_identical_on_arbitrary_metrics(
        d in arb_any_metric(12),
        k in 2usize..6,
        l in 1.0f64..150.0,
    ) {
        // No tree structure at all: the ball-size prunes must still be
        // sound, so results match the sweep bit for bit.
        let index = ClusterIndex::from_metric(&d);
        prop_assert_eq!(find_cluster_indexed(&d, &index, k, l), find_cluster(&d, k, l));
        prop_assert_eq!(max_cluster_size_indexed(&d, &index, l), max_cluster_size(&d, l));
    }

    #[test]
    fn budgeted_indexed_with_headroom_equals_unbudgeted(
        d in arb_any_metric(10),
        k in 2usize..5,
        l in 1.0f64..150.0,
    ) {
        let index = ClusterIndex::from_metric(&d);
        let mut meter = WorkMeter::unlimited();
        prop_assert_eq!(
            find_cluster_indexed_budgeted(&d, &index, k, l, &mut meter),
            Budgeted::Done(find_cluster_indexed(&d, &index, k, l))
        );
        let mut meter = WorkMeter::unlimited();
        prop_assert_eq!(
            max_cluster_size_indexed_budgeted(&d, &index, l, &mut meter),
            Budgeted::Done(max_cluster_size_indexed(&d, &index, l))
        );
        // Replay determinism under a tight budget: same cut, same partial.
        let mut a = WorkMeter::new(24);
        let mut b = WorkMeter::new(24);
        let ra = find_cluster_indexed_budgeted(&d, &index, k, l, &mut a);
        let rb = find_cluster_indexed_budgeted(&d, &index, k, l, &mut b);
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(a.used(), b.used());
    }

    #[test]
    fn incremental_digest_equals_rebuild_under_random_churn(
        d in arb_tree_metric(10),
        ops in proptest::collection::vec((0usize..10, any::<bool>()), 1..12),
    ) {
        // Random insert/remove schedule over the metric's points; after
        // every op the incrementally-maintained digest must equal a
        // from-scratch build of the same membership.
        let n = d.len();
        let dist = |a: u32, b: u32| d.get(a as usize, b as usize);
        let mut live = ClusterIndex::empty(n);
        let mut members: Vec<u32> = Vec::new();
        for (raw, insert) in ops {
            let id = (raw % n) as u32;
            let present = members.contains(&id);
            if insert && !present {
                live.apply_churn(&[], &[id], dist).unwrap();
                members.push(id);
            } else if !insert && present {
                live.apply_churn(&[id], &[], dist).unwrap();
                members.retain(|&m| m != id);
            } else {
                continue;
            }
            let fresh = ClusterIndex::build(n, &members, dist);
            prop_assert_eq!(live.digest(), fresh.digest(), "after op on id {}", id);
        }
        prop_assert_eq!(live.stats().full_builds, 0);
    }
}
