//! Property tests for the clustering algorithms.

use bcc_core::{
    diameter, exists_cluster_brute_force, find_cluster, find_cluster_euclidean,
    find_cluster_ordered, max_cluster_size, max_cluster_size_binary_search, PairOrder,
};
use bcc_metric::{DistanceMatrix, EuclideanPoints, FiniteMetric};
use proptest::prelude::*;

/// Random tree metric from a random parent array + edge weights.
fn tree_metric(parents: &[usize], weights: &[f64]) -> DistanceMatrix {
    let n = parents.len() + 1;
    let mut dist_to_root = vec![0.0; n];
    let mut depth = vec![0usize; n];
    for i in 1..n {
        dist_to_root[i] = dist_to_root[parents[i - 1]] + weights[i - 1];
        depth[i] = depth[parents[i - 1]] + 1;
    }
    let parent_of = |i: usize| if i == 0 { None } else { Some(parents[i - 1]) };
    DistanceMatrix::from_fn(n, |a, b| {
        let (mut x, mut y) = (a, b);
        while depth[x] > depth[y] {
            x = parent_of(x).unwrap();
        }
        while depth[y] > depth[x] {
            y = parent_of(y).unwrap();
        }
        while x != y {
            x = parent_of(x).unwrap();
            y = parent_of(y).unwrap();
        }
        dist_to_root[a] + dist_to_root[b] - 2.0 * dist_to_root[x]
    })
}

fn arb_tree_metric(max: usize) -> impl Strategy<Value = DistanceMatrix> {
    (4usize..=max)
        .prop_flat_map(|n| {
            let parents = (1..n).map(|i| 0..i).collect::<Vec<_>>();
            let weights = proptest::collection::vec(0.1f64..10.0, n - 1);
            (parents, weights)
        })
        .prop_map(|(parents, weights)| tree_metric(&parents, &weights))
}

/// Any symmetric "metric-ish" matrix (may violate triangle inequality).
fn arb_any_metric(max: usize) -> impl Strategy<Value = DistanceMatrix> {
    (2usize..=max)
        .prop_flat_map(|n| proptest::collection::vec(0.01f64..100.0, n * (n - 1) / 2))
        .prop_map(|values| {
            let n = (1.0 + (1.0 + 8.0 * values.len() as f64).sqrt()) as usize / 2 + 1;
            // Recover n from the triangular count.
            let mut n_fit = 2;
            while n_fit * (n_fit - 1) / 2 < values.len() {
                n_fit += 1;
            }
            let _ = n;
            let mut it = values.into_iter();
            DistanceMatrix::from_fn(n_fit, |_, _| it.next().unwrap_or(1.0))
        })
}

fn arb_points(max: usize) -> impl Strategy<Value = EuclideanPoints> {
    (2usize..=max)
        .prop_flat_map(|n| proptest::collection::vec(-50.0f64..50.0, n * 2))
        .prop_map(|coords| EuclideanPoints::new(2, coords))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn find_cluster_result_satisfies_constraints_on_any_metric(
        d in arb_any_metric(12),
        k in 2usize..6,
        l in 1.0f64..150.0,
    ) {
        // On arbitrary (non-tree) metrics the *pair-bounded* guarantee
        // still holds: every returned member is within d(p,q) <= l of the
        // defining pair, so diameter is at most... only on tree metrics.
        // What must hold universally: the result has exactly k members,
        // all distinct and in range.
        if let Some(x) = find_cluster(&d, k, l) {
            prop_assert_eq!(x.len(), k);
            let mut sorted = x.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), k, "duplicate members");
            prop_assert!(x.iter().all(|&u| u < d.len()));
        }
    }

    #[test]
    fn find_cluster_complete_on_tree_metrics(d in arb_tree_metric(9), k in 2usize..5) {
        let values = d.pair_values();
        for &l in values.iter().take(6) {
            let ours = find_cluster(&d, k, l).is_some();
            let brute = exists_cluster_brute_force(&d, k, l);
            prop_assert_eq!(ours, brute, "k={}, l={}", k, l);
        }
    }

    #[test]
    fn tree_metric_results_meet_diameter(d in arb_tree_metric(12), k in 2usize..6, l in 0.5f64..40.0) {
        if let Some(x) = find_cluster(&d, k, l) {
            prop_assert!(diameter(&d, &x) <= l + 1e-9);
        }
    }

    #[test]
    fn pair_orders_agree_on_feasibility(d in arb_tree_metric(10), k in 2usize..5, l in 0.5f64..40.0) {
        let row = find_cluster_ordered(&d, k, l, PairOrder::RowMajor).is_some();
        let asc = find_cluster_ordered(&d, k, l, PairOrder::AscendingDiameter).is_some();
        prop_assert_eq!(row, asc);
    }

    #[test]
    fn max_cluster_size_consistent(d in arb_any_metric(10), l in 0.5f64..120.0) {
        let m = max_cluster_size(&d, l);
        prop_assert_eq!(m, max_cluster_size_binary_search(&d, l));
        prop_assert!(m >= 1);
        if m >= 2 {
            prop_assert!(find_cluster(&d, m, l).is_some());
        }
        if m < d.len() {
            prop_assert!(find_cluster(&d, m + 1, l).is_none());
        }
    }

    #[test]
    fn euclidean_clustering_exact(pts in arb_points(8), k in 2usize..5, l in 1.0f64..80.0) {
        let d = DistanceMatrix::from_fn(pts.len(), |i, j| pts.distance(i, j));
        let ours = find_cluster_euclidean(&pts, k, l);
        let brute = exists_cluster_brute_force(&d, k, l);
        prop_assert_eq!(ours.is_some(), brute);
        if let Some(x) = ours {
            prop_assert_eq!(x.len(), k);
            prop_assert!(diameter(&d, &x) <= l + 1e-9, "diam {} > {}", diameter(&d, &x), l);
        }
    }
}
