//! Property tests: every parallel clustering kernel is bit-identical to
//! its serial twin — on random metrics, for thread counts 1, 2 and 8, for
//! both pair scan orders — and repeated parallel runs are deterministic.

use bcc_core::{
    find_cluster_ordered, find_cluster_ordered_par, max_cluster_size, max_cluster_size_par,
    min_diameter_cluster, min_diameter_cluster_par, PairOrder,
};
use bcc_metric::DistanceMatrix;
use proptest::prelude::*;

/// Any symmetric matrix with positive off-diagonal entries (may violate
/// the triangle inequality — the kernels must agree regardless).
fn arb_any_metric(max: usize) -> impl Strategy<Value = DistanceMatrix> {
    (2usize..=max)
        .prop_flat_map(|n| {
            proptest::collection::vec(0.01f64..100.0, n * (n - 1) / 2).prop_map(move |v| (n, v))
        })
        .prop_map(|(n, values)| {
            let mut it = values.into_iter();
            DistanceMatrix::from_fn(n, |_, _| it.next().unwrap_or(1.0))
        })
}

const THREADS: [usize; 3] = [1, 2, 8];
const ORDERS: [PairOrder; 2] = [PairOrder::RowMajor, PairOrder::AscendingDiameter];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn find_cluster_par_matches_serial(
        d in arb_any_metric(12),
        k in 1usize..7,
        l in 1.0f64..150.0,
    ) {
        for order in ORDERS {
            let serial = find_cluster_ordered(&d, k, l, order);
            for threads in THREADS {
                bcc_par::set_threads(threads);
                prop_assert_eq!(
                    &serial,
                    &find_cluster_ordered_par(&d, k, l, order),
                    "threads = {}, order = {:?}", threads, order
                );
            }
            bcc_par::set_threads(0);
        }
    }

    #[test]
    fn max_cluster_size_par_matches_serial(d in arb_any_metric(12), l in 0.5f64..120.0) {
        let serial = max_cluster_size(&d, l);
        for threads in THREADS {
            bcc_par::set_threads(threads);
            prop_assert_eq!(serial, max_cluster_size_par(&d, l), "threads = {}", threads);
        }
        bcc_par::set_threads(0);
    }

    #[test]
    fn min_diameter_cluster_par_matches_serial(d in arb_any_metric(12), k in 1usize..7) {
        let serial = min_diameter_cluster(&d, k);
        for threads in THREADS {
            bcc_par::set_threads(threads);
            let par = min_diameter_cluster_par(&d, k);
            // Compare the diameter by bit pattern, not approximately: the
            // parallel scan must pick the *same* winning pair.
            prop_assert_eq!(
                serial.as_ref().map(|(c, dia)| (c, dia.to_bits())),
                par.as_ref().map(|(c, dia)| (c, dia.to_bits())),
                "threads = {}", threads
            );
        }
        bcc_par::set_threads(0);
    }

    #[test]
    fn parallel_runs_are_deterministic(
        d in arb_any_metric(10),
        k in 2usize..6,
        l in 1.0f64..120.0,
    ) {
        bcc_par::set_threads(8);
        let a = find_cluster_ordered_par(&d, k, l, PairOrder::RowMajor);
        let b = find_cluster_ordered_par(&d, k, l, PairOrder::RowMajor);
        prop_assert_eq!(a, b);
        let a = min_diameter_cluster_par(&d, k);
        let b = min_diameter_cluster_par(&d, k);
        prop_assert_eq!(
            a.map(|(c, dia)| (c, dia.to_bits())),
            b.map(|(c, dia)| (c, dia.to_bits()))
        );
        bcc_par::set_threads(0);
    }
}
