//! Integration sweep of the sharded chaos harness: multiple seeds, every
//! oracle, plus thread-count independence of the full report.

use bcc_shard::harness::{shard_chaos, ShardArtifact, ShardChaosConfig};

#[test]
fn chaos_sweep_is_stale_free_and_baseline_identical() {
    let cfg = ShardChaosConfig::default();
    for seed in 0..10 {
        let report = shard_chaos(seed, &cfg);
        assert!(report.queries > 0, "seed {seed}: no workload ran");
        assert_eq!(report.stale_hits, 0, "seed {seed}: stale cached serve");
        assert_eq!(
            report.divergences, 0,
            "seed {seed}: sharded answer diverged from unsharded: {report:?}"
        );
    }
}

#[test]
fn chaos_report_is_thread_count_independent() {
    let cfg = ShardChaosConfig {
        universe: 10,
        steps: 16,
        queries_per_step: 3,
    };
    let run = |threads: usize| {
        bcc_par::set_threads(threads);
        shard_chaos(11, &cfg)
    };
    let reference = run(1);
    for threads in [2, 8] {
        assert_eq!(
            run(threads),
            reference,
            "threads {threads}: report diverged"
        );
    }
    bcc_par::set_threads(0);
}

#[test]
fn artifacts_capture_and_replay_across_seeds() {
    let cfg = ShardChaosConfig {
        universe: 10,
        steps: 12,
        queries_per_step: 3,
    };
    for seed in [3, 17] {
        let (artifact, _) = ShardArtifact::capture(seed, &cfg);
        let json = artifact.to_json();
        let parsed = ShardArtifact::from_json(&json).expect("parse");
        assert_eq!(parsed.to_json(), json, "seed {seed}: byte fixpoint");
        parsed
            .replay()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
