//! Property tests pinning the sharded coordinator's headline guarantee:
//! for any churn schedule and any query workload, [`Coordinator`] answers
//! are **bit-identical** to the unsharded [`DynamicSystem`] — at every
//! shard count in {1, 2, 4} and every `bcc-par` thread count in
//! {1, 2, 8} — and every error comes back with exactly the baseline's
//! error value.

use bcc_metric::NodeId;
use bcc_shard::harness::{seeded_baseline, seeded_coordinator, SHARD_COUNTS};
use bcc_shard::{CoordOutcome, Coordinator};
use bcc_simnet::DynamicSystem;
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

/// A raw churn op: (op selector, universe host).
type RawOp = (u8, usize);

/// A raw region query: (start host, k, bandwidth).
type RawQuery = (usize, usize, f64);

fn arb_schedule(universe: usize, max_len: usize) -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec((0u8..4, 0..universe), 0..=max_len)
}

fn arb_workload(universe: usize, max_len: usize) -> impl Strategy<Value = Vec<RawQuery>> {
    proptest::collection::vec((0..universe, 2usize..5, 5.0f64..90.0), 1..=max_len)
}

/// Applies one raw op to a system, via the trait-free closure pair so the
/// baseline and the coordinators run the identical sequence.
fn apply_baseline(
    sys: &mut DynamicSystem,
    (op, host): RawOp,
) -> Result<(), bcc_simnet::ChurnError> {
    let h = NodeId::new(host);
    match op % 4 {
        0 => sys.join(h),
        1 => sys.leave(h),
        2 => sys.crash(h),
        _ => sys.recover(h),
    }
}

fn apply_coord(coord: &mut Coordinator, (op, host): RawOp) -> Result<(), bcc_simnet::ChurnError> {
    let h = NodeId::new(host);
    match op % 4 {
        0 => coord.join(h),
        1 => coord.leave(h),
        2 => coord.crash(h),
        _ => coord.recover(h),
    }
}

/// Runs the full workload against the baseline and every coordinator,
/// asserting bit-identity (answers and errors) query by query.
fn assert_workload_identical(
    baseline: &DynamicSystem,
    coords: &mut [Coordinator],
    workload: &[RawQuery],
) {
    for &(start, k, b) in workload {
        let want = baseline.cluster_near(NodeId::new(start), k, b);
        for coord in coords.iter_mut() {
            let s = coord.plan().shard_count();
            let got = coord.cluster_near(NodeId::new(start), k, b);
            match (&want, got) {
                (Ok(want), Ok(resp)) => match resp.outcome {
                    CoordOutcome::Exact { cluster } => assert_eq!(
                        &cluster, want,
                        "S={s} start={start} k={k} b={b}: answer diverged \
                         (cached={})",
                        resp.cached
                    ),
                    CoordOutcome::Degraded { .. } => panic!(
                        "S={s} start={start} k={k} b={b}: degraded with every \
                         shard reachable"
                    ),
                },
                (Err(want), Err(got)) => assert_eq!(
                    want, &got,
                    "S={s} start={start} k={k} b={b}: error value diverged"
                ),
                (want, got) => {
                    panic!("S={s} start={start} k={k} b={b}: {want:?} vs {got:?}")
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant: arbitrary churn keeps every shard count and
    /// every thread count bit-identical to the unsharded system. The
    /// workload runs twice per churn round — the second pass serves from
    /// the coordinator cache, so cached answers are pinned too.
    #[test]
    fn sharded_matches_unsharded_across_shard_and_thread_counts(
        seed in 0u64..1_000,
        schedule in arb_schedule(10, 16),
        workload in arb_workload(10, 8),
    ) {
        for threads in THREADS {
            bcc_par::set_threads(threads);
            let mut baseline = seeded_baseline(seed, 10);
            let mut coords: Vec<Coordinator> = SHARD_COUNTS
                .iter()
                .map(|&s| seeded_coordinator(seed, 10, s))
                .collect();
            for h in 0..10 {
                let want = baseline.join(NodeId::new(h));
                for coord in coords.iter_mut() {
                    prop_assert_eq!(&coord.join(NodeId::new(h)), &want);
                }
            }
            for &op in &schedule {
                let want = apply_baseline(&mut baseline, op);
                for coord in coords.iter_mut() {
                    prop_assert_eq!(&apply_coord(coord, op), &want, "op {:?}", op);
                    prop_assert_eq!(coord.epoch(), baseline.epoch(), "op {:?}", op);
                }
                assert_workload_identical(&baseline, &mut coords, &workload);
                assert_workload_identical(&baseline, &mut coords, &workload);
            }
        }
        bcc_par::set_threads(0);
    }

    /// Repeated runs of the same inputs produce identical responses —
    /// stats, routing metadata and all — independent of thread count.
    #[test]
    fn coordinator_runs_are_deterministic(
        seed in 0u64..1_000,
        schedule in arb_schedule(8, 12),
        workload in arb_workload(8, 6),
    ) {
        let run = |threads: usize| {
            bcc_par::set_threads(threads);
            let mut coord = seeded_coordinator(seed, 8, 4);
            for h in 0..8 {
                drop(coord.join(NodeId::new(h)));
            }
            let mut log = Vec::new();
            for &op in &schedule {
                drop(apply_coord(&mut coord, op));
                for &(start, k, b) in &workload {
                    log.push(format!("{:?}", coord.cluster_near(NodeId::new(start), k, b)));
                }
            }
            log.push(format!("{:?} {:?}", coord.stats(), coord.cache_stats()));
            log
        };
        let reference = run(1);
        for threads in [2, 8] {
            prop_assert_eq!(&run(threads), &reference, "threads {}", threads);
        }
        bcc_par::set_threads(0);
    }
}
