//! Chaos harness for the sharded serving layer: one seeded churn
//! schedule drives an unsharded baseline [`DynamicSystem`] and a fleet of
//! [`Coordinator`]s at shard counts {1, 2, 4} in lockstep, while a
//! repeated region-query workload checks the headline oracle after every
//! event — **every Exact coordinator answer is bit-identical to the
//! unsharded answer, at every shard count, cached or not**.
//!
//! Deterministic partition windows additionally take one shard offline on
//! a fixed cadence: queries whose ball needs the missing shard must come
//! back *labeled* Degraded (never cached), everything else must stay
//! Exact and bit-identical, and after the window heals the fleet must
//! re-align immediately. Error parity rides along: every churn op and
//! every query must fail with exactly the baseline's error value.

use bcc_core::BandwidthClasses;
use bcc_metric::{BandwidthMatrix, NodeId, RationalTransform};
use bcc_service::ServiceConfig;
use bcc_simnet::{ChurnError, DynamicSystem, SystemConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coordinator::{CoordOutcome, Coordinator};
use crate::plan::ShardPlan;

/// Access-link capacities the harness universes draw from (Mbps) — the
/// paper's fast/medium/slow population mix, matching the simnet and
/// service chaos harnesses.
const CAPS: [f64; 3] = [10.0, 30.0, 100.0];

/// Bandwidth class thresholds every harness universe serves against.
const CLASS_BOUNDS: [f64; 2] = [25.0, 60.0];

/// Cluster sizes the repeated workload cycles through.
const WORKLOAD_KS: [usize; 3] = [2, 3, 4];

/// Shard counts every run compares (1 = the trivial sharding, pinned
/// against the same baseline as the real splits).
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Partition cadence: the first [`PARTITION_WINDOW`] steps of every
/// `PARTITION_PERIOD`-step block run with one shard unreachable.
pub const PARTITION_PERIOD: usize = 8;

/// Steps per period a shard stays unreachable.
pub const PARTITION_WINDOW: usize = 3;

/// Expands a seed into the universe's ground-truth bandwidth matrix
/// (min of the endpoints' access links).
fn universe_bandwidth(seed: u64, universe: usize) -> BandwidthMatrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD_BA5E);
    let caps: Vec<f64> = (0..universe)
        .map(|_| CAPS[rng.gen_range(0..CAPS.len())])
        .collect();
    BandwidthMatrix::from_fn(universe, |i, j| caps[i].min(caps[j]))
}

fn harness_config() -> SystemConfig {
    let classes = BandwidthClasses::new(CLASS_BOUNDS.to_vec(), RationalTransform::default());
    SystemConfig::new(classes)
}

/// Builds the unsharded baseline system over a fresh seeded universe.
///
/// # Panics
///
/// Panics when `universe == 0` (a caller bug).
pub fn seeded_baseline(seed: u64, universe: usize) -> DynamicSystem {
    assert!(universe > 0, "universe must have at least one host");
    DynamicSystem::try_new(universe_bandwidth(seed, universe), harness_config())
        .expect("default system config is valid")
}

/// Builds a coordinator over the *same* seeded universe as
/// [`seeded_baseline`], contiguously sharded `shard_count` ways.
///
/// # Panics
///
/// Panics when `universe == 0` or `shard_count == 0` (caller bugs).
pub fn seeded_coordinator(seed: u64, universe: usize, shard_count: usize) -> Coordinator {
    assert!(universe > 0, "universe must have at least one host");
    Coordinator::new(
        universe_bandwidth(seed, universe),
        harness_config(),
        ShardPlan::contiguous(universe, shard_count),
        ServiceConfig::default(),
    )
    .expect("default shard config is valid")
}

/// One churn event of the sharded schedule. Queries are not scheduled
/// events — the repeated workload supplies them after every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEvent {
    /// A universe host joins (benign skip when already active).
    Join(usize),
    /// A host leaves gracefully.
    Leave(usize),
    /// A host crash-stops.
    Crash(usize),
    /// A crashed host comes back.
    Recover(usize),
}

/// Expands a seed into `steps` churn events over `universe` hosts. The
/// generator tracks membership so most events are applicable, but keeps a
/// deliberate slice of invalid ones (double joins, absent recovers;
/// queries at departed hosts come from the workload) — error parity is
/// part of the oracle and needs failing ops to bite on.
pub fn generate_shard_schedule(seed: u64, universe: usize, steps: usize) -> Vec<ShardEvent> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD_5EED);
    let mut active: Vec<usize> = (0..universe).collect();
    let mut crashed: Vec<usize> = Vec::new();
    let mut schedule = Vec::with_capacity(steps);
    for _ in 0..steps {
        let roll = rng.gen_range(0..100);
        let event = if roll < 30 || active.len() <= 3 {
            // Join: usually a departed host, sometimes a deliberately
            // invalid double join.
            let host = if rng.gen_range(0..4) == 0 || active.len() == universe {
                rng.gen_range(0..universe)
            } else {
                let mut h = rng.gen_range(0..universe);
                while active.contains(&h) {
                    h = (h + 1) % universe;
                }
                h
            };
            if !active.contains(&host) {
                active.push(host);
                crashed.retain(|&c| c != host);
            }
            ShardEvent::Join(host)
        } else if roll < 55 {
            let host = active[rng.gen_range(0..active.len())];
            active.retain(|&a| a != host);
            ShardEvent::Leave(host)
        } else if roll < 80 {
            let host = active[rng.gen_range(0..active.len())];
            active.retain(|&a| a != host);
            crashed.push(host);
            ShardEvent::Crash(host)
        } else if let Some(&host) = crashed.last() {
            crashed.pop();
            active.push(host);
            ShardEvent::Recover(host)
        } else {
            // Nothing to recover: an absent-host recover, exercising the
            // error path on baseline and coordinators alike.
            ShardEvent::Recover(rng.gen_range(0..universe))
        };
        schedule.push(event);
    }
    schedule
}

/// Tunables for [`shard_chaos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardChaosConfig {
    /// Hosts in the measurement universe.
    pub universe: usize,
    /// Churn events after the initial full-universe join.
    pub steps: usize,
    /// Workload queries after every event (each compared across every
    /// shard count).
    pub queries_per_step: usize,
}

impl Default for ShardChaosConfig {
    fn default() -> Self {
        ShardChaosConfig {
            universe: 12,
            steps: 24,
            queries_per_step: 4,
        }
    }
}

/// What one [`shard_chaos`] run did and proved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardChaosReport {
    /// Churn events applied (initial joins excluded).
    pub events: usize,
    /// Workload queries issued (each runs on the baseline and on every
    /// shard count).
    pub queries: u64,
    /// Exact coordinator responses, summed over shard counts — every one
    /// compared bit-for-bit against the baseline answer.
    pub exact: u64,
    /// Labeled Degraded responses (partition windows only), summed.
    pub degraded: u64,
    /// Coordinator cache hits, summed over shard counts — every hit is an
    /// Exact response, so every one was baseline-audited.
    pub cache_hits: u64,
    /// Shard consultations skipped by the boundary prune test, summed.
    pub pruned: u64,
    /// **Oracle (must be 0):** cached responses whose answer differed
    /// from the baseline — a stale serve.
    pub stale_hits: u64,
    /// **Oracle (must be 0):** any other disagreement with the baseline —
    /// a non-cached Exact answer with different bytes, an error-value
    /// mismatch, a Degraded response outside a partition window or
    /// claiming to be cached, or an epoch drift.
    pub divergences: u64,
    /// FNV-1a digest over the ordered baseline query/answer stream — the
    /// replay fingerprint; identical for every thread count by
    /// construction (the stream never touches the scatter pool).
    pub digest: u64,
}

/// FNV-1a over a byte slice, accumulated into `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Applies one churn event to the baseline and every coordinator,
/// checking error parity. Returns the divergences observed.
fn apply_event(baseline: &mut DynamicSystem, coords: &mut [Coordinator], event: ShardEvent) -> u64 {
    let base: Result<(), ChurnError> = match event {
        ShardEvent::Join(h) => baseline.join(NodeId::new(h)),
        ShardEvent::Leave(h) => baseline.leave(NodeId::new(h)),
        ShardEvent::Crash(h) => baseline.crash(NodeId::new(h)),
        ShardEvent::Recover(h) => baseline.recover(NodeId::new(h)),
    };
    let mut divergences = 0;
    for coord in coords.iter_mut() {
        let got = match event {
            ShardEvent::Join(h) => coord.join(NodeId::new(h)),
            ShardEvent::Leave(h) => coord.leave(NodeId::new(h)),
            ShardEvent::Crash(h) => coord.crash(NodeId::new(h)),
            ShardEvent::Recover(h) => coord.recover(NodeId::new(h)),
        };
        if got != base {
            divergences += 1;
        }
        if coord.epoch() != baseline.epoch() {
            divergences += 1;
        }
    }
    divergences
}

/// Runs one workload query everywhere and scores every coordinator
/// response against the baseline.
fn run_query(
    baseline: &DynamicSystem,
    coords: &mut [Coordinator],
    start: NodeId,
    k: usize,
    bandwidth: f64,
    in_window: bool,
    report: &mut ShardChaosReport,
) {
    let base = baseline.cluster_near(start, k, bandwidth);
    report.queries += 1;
    let line = format!("{}|{}|{}|{:?}\n", start.index(), k, bandwidth, base);
    report.digest = fnv1a(report.digest, line.as_bytes());
    for coord in coords.iter_mut() {
        match (&base, coord.cluster_near(start, k, bandwidth)) {
            (Err(want), Err(got)) => {
                if *want != got {
                    report.divergences += 1;
                }
            }
            (Ok(want), Ok(resp)) => match &resp.outcome {
                CoordOutcome::Exact { cluster } => {
                    report.exact += 1;
                    if cluster != want {
                        if resp.cached {
                            report.stale_hits += 1;
                        } else {
                            report.divergences += 1;
                        }
                    }
                }
                CoordOutcome::Degraded { .. } => {
                    report.degraded += 1;
                    // Degraded answers only exist inside partition
                    // windows, and are never served from (or into) the
                    // cache.
                    if !in_window || resp.cached {
                        report.divergences += 1;
                    }
                }
            },
            _ => report.divergences += 1,
        }
    }
}

/// Runs the sharded chaos harness for one seed: the same churn schedule
/// drives the baseline and a coordinator per shard count, deterministic
/// partition windows take shards offline on a fixed cadence, and a
/// repeated workload cross-checks every answer after every event.
///
/// Deterministic: the same `(seed, cfg)` produces the same report — for
/// any `bcc-par` thread count.
pub fn shard_chaos(seed: u64, cfg: &ShardChaosConfig) -> ShardChaosReport {
    let schedule = generate_shard_schedule(seed, cfg.universe, cfg.steps);
    let mut baseline = seeded_baseline(seed, cfg.universe);
    let mut coords: Vec<Coordinator> = SHARD_COUNTS
        .iter()
        .map(|&s| seeded_coordinator(seed, cfg.universe, s))
        .collect();
    let mut report = ShardChaosReport {
        digest: 0xCBF2_9CE4_8422_2325, // FNV-1a offset basis
        ..ShardChaosReport::default()
    };

    // Bring the whole universe up everywhere (parity-checked like any
    // other event, not counted as a step).
    for host in 0..cfg.universe {
        report.divergences += apply_event(&mut baseline, &mut coords, ShardEvent::Join(host));
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD_C0DE);
    for (step, &event) in schedule.iter().enumerate() {
        // Deterministic partition cadence: the first PARTITION_WINDOW
        // steps of every period run with one shard unreachable (a
        // different shard each period, per coordinator).
        let in_window = step % PARTITION_PERIOD < PARTITION_WINDOW;
        for coord in coords.iter_mut() {
            let shard_count = coord.plan().shard_count();
            for s in 0..shard_count {
                coord.set_reachable(s, true);
            }
            if in_window && shard_count > 1 {
                coord.set_reachable((step / PARTITION_PERIOD) % shard_count, false);
            }
        }

        report.divergences += apply_event(&mut baseline, &mut coords, event);
        report.events += 1;

        let live: Vec<NodeId> = baseline.active().collect();
        if live.is_empty() {
            continue;
        }
        for _ in 0..cfg.queries_per_step {
            // Mostly live starts; an occasional arbitrary universe id
            // exercises the crashed/unknown-start error paths.
            let start = if rng.gen_range(0..8) == 0 {
                NodeId::new(rng.gen_range(0..cfg.universe))
            } else {
                live[rng.gen_range(0..live.len())]
            };
            let k = WORKLOAD_KS[rng.gen_range(0..WORKLOAD_KS.len())];
            let bandwidth = CLASS_BOUNDS[rng.gen_range(0..CLASS_BOUNDS.len())] - 1.0;
            run_query(
                &baseline,
                &mut coords,
                start,
                k,
                bandwidth,
                in_window,
                &mut report,
            );
        }
    }

    // Heal every partition and prove the fleet re-aligns: one final
    // workload sweep in which nothing may degrade.
    for coord in coords.iter_mut() {
        for s in 0..coord.plan().shard_count() {
            coord.set_reachable(s, true);
        }
    }
    let live: Vec<NodeId> = baseline.active().collect();
    for (i, &start) in live.iter().enumerate() {
        let k = WORKLOAD_KS[i % WORKLOAD_KS.len()];
        let bandwidth = CLASS_BOUNDS[i % CLASS_BOUNDS.len()] - 1.0;
        run_query(
            &baseline,
            &mut coords,
            start,
            k,
            bandwidth,
            false,
            &mut report,
        );
    }

    for coord in &coords {
        let stats = coord.stats();
        report.cache_hits += stats.cache_hits;
        report.pruned += stats.pruned;
    }
    report
}

/// A replayable JSON record of one [`shard_chaos`] run: the full input
/// (seed + config) plus the output fingerprint. Stored under
/// `tests/chaos_corpus/shard/` and in bench artifacts; replaying re-runs
/// the harness from the inputs and demands a bit-identical report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardArtifact {
    /// Schema version (currently 1).
    pub version: u32,
    /// Harness seed.
    pub seed: u64,
    /// Universe size.
    pub universe: usize,
    /// Schedule steps.
    pub steps: usize,
    /// Workload queries per step.
    pub queries_per_step: usize,
    /// Workload queries issued.
    pub queries: u64,
    /// Exact responses (summed over shard counts).
    pub exact: u64,
    /// Degraded responses (summed).
    pub degraded: u64,
    /// Coordinator cache hits (summed).
    pub cache_hits: u64,
    /// Pruned shard consultations (summed).
    pub pruned: u64,
    /// Baseline query/answer stream digest.
    pub digest: u64,
}

impl ShardArtifact {
    /// Captures a run as a replayable artifact.
    ///
    /// # Panics
    ///
    /// Panics when the run violates an oracle (stale serve or baseline
    /// divergence) — a corpus entry must never freeze a broken run.
    pub fn capture(seed: u64, cfg: &ShardChaosConfig) -> (Self, ShardChaosReport) {
        let report = shard_chaos(seed, cfg);
        assert_eq!(report.stale_hits, 0, "refusing to capture a stale run");
        assert_eq!(report.divergences, 0, "refusing to capture a divergent run");
        let artifact = ShardArtifact {
            version: 1,
            seed,
            universe: cfg.universe,
            steps: cfg.steps,
            queries_per_step: cfg.queries_per_step,
            queries: report.queries,
            exact: report.exact,
            degraded: report.degraded,
            cache_hits: report.cache_hits,
            pruned: report.pruned,
            digest: report.digest,
        };
        (artifact, report)
    }

    /// The artifact's config half.
    pub fn config(&self) -> ShardChaosConfig {
        ShardChaosConfig {
            universe: self.universe,
            steps: self.steps,
            queries_per_step: self.queries_per_step,
        }
    }

    /// Re-runs the harness from the artifact's inputs and checks every
    /// recorded field plus the zero-valued oracles.
    ///
    /// # Errors
    ///
    /// A description of the first mismatching field.
    pub fn replay(&self) -> Result<ShardChaosReport, String> {
        let report = shard_chaos(self.seed, &self.config());
        let checks: [(&str, u64, u64); 8] = [
            ("queries", self.queries, report.queries),
            ("exact", self.exact, report.exact),
            ("degraded", self.degraded, report.degraded),
            ("cache_hits", self.cache_hits, report.cache_hits),
            ("pruned", self.pruned, report.pruned),
            ("stale_hits", 0, report.stale_hits),
            ("divergences", 0, report.divergences),
            ("digest", self.digest, report.digest),
        ];
        for (field, want, got) in checks {
            if want != got {
                return Err(format!(
                    "shard replay diverged on {field}: artifact {want}, replay {got}"
                ));
            }
        }
        Ok(report)
    }

    /// Serializes to the corpus JSON format (stable field order, 2-space
    /// indent; the digest is a string, matching the corpus convention for
    /// u64 fidelity).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"version\": {},\n  \"kind\": \"shard\",\n  \"seed\": {},\n  \
             \"universe\": {},\n  \"steps\": {},\n  \"queries_per_step\": {},\n  \
             \"queries\": {},\n  \"exact\": {},\n  \"degraded\": {},\n  \
             \"cache_hits\": {},\n  \"pruned\": {},\n  \"digest\": \"{}\"\n}}\n",
            self.version,
            self.seed,
            self.universe,
            self.steps,
            self.queries_per_step,
            self.queries,
            self.exact,
            self.degraded,
            self.cache_hits,
            self.pruned,
            self.digest,
        )
    }

    /// Parses the corpus JSON format written by
    /// [`to_json`](ShardArtifact::to_json).
    ///
    /// # Errors
    ///
    /// A description of the missing or malformed field.
    pub fn from_json(src: &str) -> Result<Self, String> {
        let kind = json_field(src, "kind")?;
        if kind != "shard" {
            return Err(format!("expected kind \"shard\", got \"{kind}\""));
        }
        let num = |key: &str| -> Result<u64, String> {
            json_field(src, key)?
                .parse::<u64>()
                .map_err(|e| format!("field \"{key}\": {e}"))
        };
        Ok(ShardArtifact {
            version: num("version")? as u32,
            seed: num("seed")?,
            universe: num("universe")? as usize,
            steps: num("steps")? as usize,
            queries_per_step: num("queries_per_step")? as usize,
            queries: num("queries")?,
            exact: num("exact")?,
            degraded: num("degraded")?,
            cache_hits: num("cache_hits")?,
            pruned: num("pruned")?,
            digest: num("digest")?,
        })
    }
}

/// Extracts the value of `"key": <value>` from a flat JSON object,
/// stripping quotes when present. Only suitable for the artifact's own
/// flat format.
fn json_field(src: &str, key: &str) -> Result<String, String> {
    let needle = format!("\"{key}\"");
    let at = src
        .find(&needle)
        .ok_or_else(|| format!("missing field \"{key}\""))?;
    let rest = &src[at + needle.len()..];
    let rest = rest
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("malformed field \"{key}\""))?
        .trim_start();
    let end = rest
        .find([',', '\n', '}'])
        .ok_or_else(|| format!("unterminated field \"{key}\""))?;
    Ok(rest[..end].trim().trim_matches('"').to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_chaos_is_deterministic_and_oracle_clean() {
        let cfg = ShardChaosConfig::default();
        let a = shard_chaos(7, &cfg);
        let b = shard_chaos(7, &cfg);
        assert_eq!(a, b, "same seed must reproduce the same report");
        assert!(a.queries > 0, "workload must actually run");
        assert_eq!(a.stale_hits, 0, "no cached answer may be stale");
        assert_eq!(a.divergences, 0, "no answer may diverge from baseline");
    }

    #[test]
    fn partition_windows_actually_degrade_and_heal() {
        // Aggregated over a few seeds the windows must produce labeled
        // degraded answers (otherwise the prune test is covering every
        // partition and the degradation path is untested) and the cache
        // must actually serve.
        let cfg = ShardChaosConfig::default();
        let mut degraded = 0;
        let mut cache_hits = 0;
        let mut pruned = 0;
        for seed in 0..6 {
            let r = shard_chaos(seed, &cfg);
            assert_eq!(r.stale_hits, 0, "seed {seed}: stale serve");
            assert_eq!(r.divergences, 0, "seed {seed}: divergence");
            degraded += r.degraded;
            cache_hits += r.cache_hits;
            pruned += r.pruned;
        }
        assert!(degraded > 0, "partition windows must force degradation");
        assert!(cache_hits > 0, "repeated workload must hit the cache");
        assert!(pruned > 0, "boundary certificates must prune some shards");
    }

    #[test]
    fn shard_artifact_round_trips_and_replays() {
        let cfg = ShardChaosConfig {
            universe: 10,
            steps: 16,
            queries_per_step: 3,
        };
        let (artifact, report) = ShardArtifact::capture(5, &cfg);
        let json = artifact.to_json();
        let parsed = ShardArtifact::from_json(&json).expect("parse own output");
        assert_eq!(parsed, artifact, "JSON round trip");
        assert_eq!(parsed.to_json(), json, "serialization fixpoint");
        let replayed = parsed.replay().expect("replay must match");
        assert_eq!(replayed, report, "replay reproduces the full report");
        let mut bad = parsed.clone();
        bad.digest ^= 1;
        assert!(bad.replay().is_err(), "digest divergence must be caught");
    }

    #[test]
    fn schedule_generation_is_deterministic() {
        let a = generate_shard_schedule(9, 12, 30);
        let b = generate_shard_schedule(9, 12, 30);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
    }
}
