//! The scatter–gather coordinator: routes region queries over the shard
//! fleet and merges cross-shard candidates under a bit-identity
//! discipline.
//!
//! # The bit-identity argument
//!
//! The coordinator serves the membership-pure region query
//! [`bcc_simnet::DynamicSystem::cluster_near`]: candidates are **every**
//! active host within `2l` of the start host in the global label metric
//! (`l` the snapped class constraint — by the triangle inequality the
//! `2l` ball covers every diameter-`≤ l` cluster intersecting
//! `B(start, l)`), and the answer is the shared merge kernel
//! [`bcc_core::find_cluster_among`] over those candidates in ascending id
//! order. Both definitions mention only membership and labels — never the
//! partition — so the sharded computation reproduces the unsharded one
//! exactly, provided:
//!
//! 1. **labels agree**: the coordinator maintains one *global*
//!    [`PredictionFramework`] fed the identical op sequence the unsharded
//!    baseline sees, so every label (and hence every distance and the
//!    membership epoch) is bit-identical by construction;
//! 2. **the candidate sets agree**: each shard's region index holds its
//!    members under that global metric, so the union of per-shard `2l`
//!    enumerations is the global `2l` ball (shards partition the
//!    membership);
//! 3. **the merge is canonical**: candidates concatenate in fixed shard
//!    order, sort ascending, and feed one serial kernel call — no
//!    reduction order or thread count can reorder anything.
//!
//! Scatter runs on the `bcc-par` pool, but every per-shard enumeration is
//! read-only and the merge is serial, so responses are identical for any
//! thread count — the shard proptests pin all of S ∈ {1,2,4} ×
//! threads ∈ {1,2,8} against the unsharded instance.

use std::collections::BTreeSet;

use bcc_core::{find_cluster_among, ClusterError, ClusterIndex, QueryRequest};
use bcc_embed::{EmbedError, PredictionFramework};
use bcc_metric::{BandwidthMatrix, DistanceMatrix, NodeId};
use bcc_service::{ClusterService, ServiceConfig};
use bcc_simnet::{fw_label_dist, ChurnError, DynamicSystem, SystemConfig};

use crate::cache::{CoordCache, CoordCacheStats, CoordEntry, CoordKey};
use crate::error::ShardError;
use crate::instance::{ShardInstance, ShardStats};
use crate::plan::ShardPlan;

/// How a coordinator answer was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordOutcome {
    /// Every non-prunable shard was reachable: the answer is bit-identical
    /// to the unsharded instance's.
    Exact {
        /// The merged cluster (`None` when no cluster satisfies the
        /// constraint), ascending-id canonical order from the kernel.
        cluster: Option<Vec<NodeId>>,
    },
    /// One or more shards whose boundary ball could not be pruned were
    /// unreachable. The answer covers the reachable candidates only, is
    /// always labeled, and is never cached.
    Degraded {
        /// Best cluster over the reachable candidates.
        cluster: Option<Vec<NodeId>>,
        /// Shards that should have been consulted but were unreachable,
        /// ascending.
        missing_shards: Vec<usize>,
    },
}

impl CoordOutcome {
    /// The answer, whichever tier produced it.
    pub fn cluster(&self) -> Option<&Vec<NodeId>> {
        match self {
            CoordOutcome::Exact { cluster } | CoordOutcome::Degraded { cluster, .. } => {
                cluster.as_ref()
            }
        }
    }

    /// `true` for a full-fidelity answer.
    pub fn is_exact(&self) -> bool {
        matches!(self, CoordOutcome::Exact { .. })
    }
}

/// One coordinator response with its routing accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordResponse {
    /// The answer and its fidelity tier.
    pub outcome: CoordOutcome,
    /// Bandwidth class the query snapped to.
    pub class_idx: usize,
    /// Shard owning the start host.
    pub owner: usize,
    /// Whether the answer came from the coordinator cache (freshness
    /// vector fully validated).
    pub cached: bool,
    /// Shards consulted (the owner plus every non-pruned neighbor).
    pub consulted: usize,
    /// Merged candidate-set size.
    pub candidates: usize,
    /// Deterministic cost: label-distance evaluations this response
    /// charged (prune tests + boundary scans + merge kernel). The
    /// unsharded baseline's cost for the same query is its kernel
    /// evaluations alone, which makes coordinator overhead directly
    /// measurable — see `BENCH_shard.json`.
    pub work_units: u64,
}

/// Aggregate coordinator counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordStats {
    /// Region queries answered (errors excluded).
    pub queries: u64,
    /// Answers served from the coordinator cache.
    pub cache_hits: u64,
    /// Degraded (partition-window) answers.
    pub degraded: u64,
    /// Shard consultations skipped by the boundary prune test.
    pub pruned: u64,
}

/// Per-shard gather verdict (internal to the scatter phase).
enum Gather {
    /// The prune certificate held: the shard cannot intersect the ball.
    Pruned,
    /// The shard had to be consulted but is unreachable.
    Missing,
    /// Candidates within `2l`, ascending ids.
    Candidates(Vec<u32>),
}

/// A sharded multi-instance deployment behind one routing front end.
///
/// Construction partitions the universe by a [`ShardPlan`]; each shard
/// gets a full [`ClusterService`] over its own members plus a region
/// index under the coordinator's global label metric. Queries route to
/// the owning shard and scatter–gather across boundary shards; churn
/// routes to the owning shard and updates affected region indexes
/// incrementally.
#[derive(Debug)]
pub struct Coordinator {
    bandwidth: BandwidthMatrix,
    real: DistanceMatrix,
    config: SystemConfig,
    /// The *global* prediction framework: fed the same op sequence as an
    /// unsharded [`DynamicSystem`], so labels, epochs and orphan sets are
    /// bit-identical to the baseline by construction.
    framework: PredictionFramework,
    plan: ShardPlan,
    shards: Vec<ShardInstance>,
    active: BTreeSet<NodeId>,
    crashed: BTreeSet<NodeId>,
    cache: CoordCache,
    stats: CoordStats,
}

impl Coordinator {
    /// Default coordinator-cache capacity (entries).
    pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

    /// Builds an empty sharded deployment.
    ///
    /// # Errors
    ///
    /// [`ShardError::PlanMismatch`] when the plan partitions a different
    /// universe; [`ShardError::Config`] / [`ShardError::Service`] when a
    /// config fails validation.
    pub fn new(
        bandwidth: BandwidthMatrix,
        config: SystemConfig,
        plan: ShardPlan,
        service_config: ServiceConfig,
    ) -> Result<Self, ShardError> {
        if plan.universe() != bandwidth.len() {
            return Err(ShardError::PlanMismatch {
                plan: plan.universe(),
                universe: bandwidth.len(),
            });
        }
        let real = config.transform.distance_matrix(&bandwidth);
        let framework = PredictionFramework::new(config.framework);
        let shards = (0..plan.shard_count())
            .map(|id| {
                let system = DynamicSystem::try_new(bandwidth.clone(), config.clone())?;
                let service = ClusterService::new(system, service_config.clone())?;
                Ok(ShardInstance {
                    id,
                    service,
                    region: ClusterIndex::empty(bandwidth.len()),
                    reachable: true,
                    stats: ShardStats::default(),
                })
            })
            .collect::<Result<Vec<_>, ShardError>>()?;
        Ok(Coordinator {
            bandwidth,
            real,
            config,
            framework,
            plan,
            shards,
            active: BTreeSet::new(),
            crashed: BTreeSet::new(),
            cache: CoordCache::new(Self::DEFAULT_CACHE_CAPACITY),
            stats: CoordStats::default(),
        })
    }

    /// [`Coordinator::new`] plus joining `hosts` in order — the sharded
    /// twin of [`DynamicSystem::bootstrap`].
    ///
    /// # Errors
    ///
    /// As [`Coordinator::new`], plus [`ShardError::Churn`] when a join is
    /// rejected.
    pub fn bootstrap(
        bandwidth: BandwidthMatrix,
        config: SystemConfig,
        plan: ShardPlan,
        service_config: ServiceConfig,
        hosts: &[NodeId],
    ) -> Result<Self, ShardError> {
        let mut coord = Self::new(bandwidth, config, plan, service_config)?;
        for &h in hosts {
            coord.join(h)?;
        }
        Ok(coord)
    }

    // -- membership ---------------------------------------------------------

    /// Joins a universe host: the global framework embeds it (identically
    /// to the unsharded baseline), the owning shard's service joins it,
    /// and the owner's region index splices it in under the new global
    /// labels.
    ///
    /// # Errors
    ///
    /// Identical to [`DynamicSystem::join`].
    pub fn join(&mut self, host: NodeId) -> Result<(), ChurnError> {
        if host.index() >= self.bandwidth.len() {
            return Err(EmbedError::UnknownHost(host).into());
        }
        let real = &self.real;
        self.framework
            .join(host, |a, b| real.get(a.index(), b.index()))?;
        self.active.insert(host);
        self.crashed.remove(&host);
        let owner = self.plan.owner(host);
        self.shards[owner].service.join(host)?;
        let fw = &self.framework;
        self.shards[owner]
            .region
            .apply_churn(&[], &[host.index() as u32], |a, b| fw_label_dist(fw, a, b))?;
        Ok(())
    }

    /// Gracefully removes a host. The global framework re-embeds its
    /// orphaned anchor descendants; every shard owning a re-embedded
    /// orphan gets an incremental region update (churn in one shard can
    /// move *labels* of hosts in others — their local memberships are
    /// untouched, but their region stamps move, which is exactly what
    /// invalidates affected cross-shard cache entries).
    ///
    /// # Errors
    ///
    /// Identical to [`DynamicSystem::leave`].
    pub fn leave(&mut self, host: NodeId) -> Result<(), ChurnError> {
        self.depart(host, false)
    }

    /// Crashes a host: an involuntary departure, remembered so queries
    /// starting there fail with [`ClusterError::NodeUnavailable`] until
    /// [`Coordinator::recover`].
    ///
    /// # Errors
    ///
    /// Identical to [`DynamicSystem::crash`].
    pub fn crash(&mut self, host: NodeId) -> Result<(), ChurnError> {
        self.depart(host, true)
    }

    fn depart(&mut self, host: NodeId, crash: bool) -> Result<(), ChurnError> {
        let real = &self.real;
        let orphans = self
            .framework
            .leave_reporting(host, |a, b| real.get(a.index(), b.index()))?;
        self.active.remove(&host);
        if crash {
            self.crashed.insert(host);
        }
        let owner = self.plan.owner(host);
        if crash {
            self.shards[owner].service.crash(host)?;
        } else {
            self.shards[owner].service.leave(host)?;
        }
        // Group the re-embedded orphans by owning shard; only affected
        // regions pay an update.
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); self.plan.shard_count()];
        for &o in &orphans {
            per_shard[self.plan.owner(o)].push(o.index() as u32);
        }
        let fw = &self.framework;
        let removed = [host.index() as u32];
        for (s, sh) in self.shards.iter_mut().enumerate() {
            let removed: &[u32] = if s == owner { &removed } else { &[] };
            if removed.is_empty() && per_shard[s].is_empty() {
                continue;
            }
            sh.region
                .apply_churn(removed, &per_shard[s], |a, b| fw_label_dist(fw, a, b))?;
        }
        Ok(())
    }

    /// Brings a crashed host back through the ordinary join path.
    ///
    /// # Errors
    ///
    /// Identical to [`DynamicSystem::recover`].
    pub fn recover(&mut self, host: NodeId) -> Result<(), ChurnError> {
        if !self.crashed.contains(&host) {
            return Err(EmbedError::UnknownHost(host).into());
        }
        self.join(host)
    }

    // -- queries ------------------------------------------------------------

    /// Routes one region query `(start, k, bandwidth)` through the fleet:
    /// the owning shard enumerates its boundary ball from its region
    /// index, every other shard is either pruned by an O(1) boundary
    /// certificate or scanned for straddling candidates, and the merged
    /// candidate set feeds the shared kernel. Exact answers are cached
    /// under a per-shard freshness vector.
    ///
    /// # Errors
    ///
    /// Identical to [`DynamicSystem::cluster_near`] (crashed start,
    /// validation, unknown start — in that order).
    pub fn cluster_near(
        &mut self,
        start: NodeId,
        k: usize,
        bandwidth: f64,
    ) -> Result<CoordResponse, ClusterError> {
        self.cluster_near_inner(start, k, bandwidth, true)
    }

    /// [`Coordinator::cluster_near`] bypassing the coordinator cache —
    /// the audit path chaos oracles recompute cached answers through.
    ///
    /// # Errors
    ///
    /// Same as [`Coordinator::cluster_near`].
    pub fn cluster_near_uncached(
        &mut self,
        start: NodeId,
        k: usize,
        bandwidth: f64,
    ) -> Result<CoordResponse, ClusterError> {
        self.cluster_near_inner(start, k, bandwidth, false)
    }

    fn cluster_near_inner(
        &mut self,
        start: NodeId,
        k: usize,
        bandwidth: f64,
        use_cache: bool,
    ) -> Result<CoordResponse, ClusterError> {
        if self.crashed.contains(&start) {
            return Err(ClusterError::NodeUnavailable {
                node: start.index(),
            });
        }
        let classes = &self.config.protocol.classes;
        let class_idx =
            QueryRequest::new(start, k, bandwidth).validate(classes, self.bandwidth.len())?;
        if !self.active.contains(&start) {
            return Err(ClusterError::UnknownNeighbor {
                neighbor: start.index(),
            });
        }
        let l = classes.distance_of(class_idx);
        let radius = 2.0 * l;
        let start_id = start.index() as u32;
        let owner = self.plan.owner(start);
        self.stats.queries += 1;
        self.shards[owner].stats.queries += 1;

        if use_cache {
            let key: CoordKey = (start_id, k, class_idx);
            if let Some(entry) = self.cache.peek(&key) {
                let entry = entry.clone();
                let (valid, revalidate_work) = self.entry_valid(&entry, start_id, radius);
                if valid {
                    self.cache.hit();
                    self.stats.cache_hits += 1;
                    return Ok(CoordResponse {
                        outcome: CoordOutcome::Exact {
                            cluster: entry.answer,
                        },
                        class_idx,
                        owner,
                        cached: true,
                        consulted: entry.consulted,
                        candidates: entry.candidates,
                        work_units: revalidate_work,
                    });
                }
                self.cache.invalidate(&key);
            }
        }

        // Scatter: every shard produces its verdict independently (read-
        // only), in parallel; verdict order is shard order regardless of
        // thread count.
        let fw = &self.framework;
        let shards = &self.shards;
        let gathers: Vec<(Gather, u64)> = bcc_par::par_map(shards.len(), |s| {
            let sh = &shards[s];
            let region = &sh.region;
            if region.ids().is_empty() {
                // An empty shard contributes nothing and needs no
                // certificate (vacuously pruned).
                return (Gather::Pruned, 0);
            }
            if s == owner {
                if !sh.reachable {
                    return (Gather::Missing, 0);
                }
                let slot = region
                    .slot(start_id)
                    .expect("owner region holds the start host");
                let (_, ids) = region.ball(slot, radius);
                let mut v = ids.to_vec();
                v.sort_unstable();
                // Ball enumeration is a binary search over precomputed
                // rows: zero label-distance evaluations.
                return (Gather::Candidates(v), 0);
            }
            // Boundary certificate: with a_s the shard's lowest member and
            // r_s its region radius (max row-0 distance, precomputed),
            // d(start, a_s) − r_s > 2l implies by the triangle inequality
            // that no member lies within 2l. One distance evaluation.
            let a = region.ids()[0];
            let (d_row, _) = region.row(0);
            let r = d_row.last().copied().unwrap_or(0.0);
            if fw_label_dist(fw, start_id, a) - r > radius {
                return (Gather::Pruned, 1);
            }
            if !sh.reachable {
                return (Gather::Missing, 1);
            }
            // The ball straddles this shard's boundary: scan its members
            // under the global metric. One evaluation per member.
            let mut v: Vec<u32> = region
                .ids()
                .iter()
                .copied()
                .filter(|&x| fw_label_dist(fw, start_id, x) <= radius)
                .collect();
            v.sort_unstable();
            (Gather::Candidates(v), 1 + region.ids().len() as u64)
        });

        // Gather: concatenate in shard order, then canonicalize. Shards
        // partition the membership, so no dedup is needed and ascending
        // sort gives the kernel the exact candidate order the unsharded
        // baseline uses.
        let mut work_units = 0u64;
        let mut missing_shards = Vec::new();
        let mut merged: Vec<u32> = Vec::new();
        let mut consulted = 0usize;
        let mut contributors: Vec<(usize, (u64, u64))> = Vec::new();
        for (s, (gather, evals)) in gathers.into_iter().enumerate() {
            work_units += evals;
            match gather {
                Gather::Pruned => {
                    if s != owner {
                        self.stats.pruned += 1;
                    }
                }
                Gather::Missing => missing_shards.push(s),
                Gather::Candidates(v) => {
                    consulted += 1;
                    if s != owner {
                        self.shards[s].stats.forwarded += 1;
                    }
                    self.shards[s].stats.merge_candidates += v.len() as u64;
                    contributors.push((s, self.shards[s].stamp()));
                    merged.extend(v);
                }
            }
        }
        merged.sort_unstable();

        // Fixed serial merge reduction: one kernel call over the full
        // candidate set, counting its distance evaluations.
        let mut kernel_evals = 0u64;
        let fw = &self.framework;
        let cluster = find_cluster_among(&merged, k, l, |a, b| {
            kernel_evals += 1;
            fw_label_dist(fw, a, b)
        })
        .map(|ids| {
            ids.into_iter()
                .map(|id| NodeId::new(id as usize))
                .collect::<Vec<_>>()
        });
        work_units += kernel_evals;

        if missing_shards.is_empty() {
            if use_cache {
                self.cache.insert(
                    (start_id, k, class_idx),
                    CoordEntry {
                        answer: cluster.clone(),
                        contributors,
                        consulted,
                        candidates: merged.len(),
                    },
                );
            }
            Ok(CoordResponse {
                outcome: CoordOutcome::Exact { cluster },
                class_idx,
                owner,
                cached: false,
                consulted,
                candidates: merged.len(),
                work_units,
            })
        } else {
            self.stats.degraded += 1;
            Ok(CoordResponse {
                outcome: CoordOutcome::Degraded {
                    cluster,
                    missing_shards,
                },
                class_idx,
                owner,
                cached: false,
                consulted,
                candidates: merged.len(),
                work_units,
            })
        }
    }

    /// Validates a cached entry's freshness vector against the live fleet:
    /// every contributor's stamp must match exactly, and every shard that
    /// was pruned at compute time must *still* prune (its members may have
    /// churned into range; the owner always contributes, so start-label
    /// churn always shows up as an owner stamp move). Returns the verdict
    /// and the label-distance evaluations spent re-checking. Serving a
    /// validated entry needs no shard reachability — stamps and prune
    /// certificates are coordinator-local metadata.
    fn entry_valid(&self, entry: &CoordEntry, start_id: u32, radius: f64) -> (bool, u64) {
        let mut is_contributor = vec![false; self.shards.len()];
        for &(s, stamp) in &entry.contributors {
            if self.shards[s].stamp() != stamp {
                return (false, 0);
            }
            is_contributor[s] = true;
        }
        let mut evals = 0u64;
        for (s, sh) in self.shards.iter().enumerate() {
            if is_contributor[s] {
                continue;
            }
            let region = &sh.region;
            if region.ids().is_empty() {
                continue;
            }
            let a = region.ids()[0];
            let (d_row, _) = region.row(0);
            let r = d_row.last().copied().unwrap_or(0.0);
            evals += 1;
            if fw_label_dist(&self.framework, start_id, a) - r <= radius {
                return (false, evals);
            }
        }
        (true, evals)
    }

    // -- fleet control & introspection --------------------------------------

    /// Marks a shard (un)reachable — the partition nemesis hook. Queries
    /// needing an unreachable shard degrade (labeled, uncached); cached
    /// answers keep serving, their freshness vector needs no reachability.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn set_reachable(&mut self, shard: usize, reachable: bool) {
        self.shards[shard].reachable = reachable;
    }

    /// The shard fleet, in plan order.
    pub fn shards(&self) -> &[ShardInstance] {
        &self.shards
    }

    /// One shard by id.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &ShardInstance {
        &self.shards[shard]
    }

    /// Mutable access to one shard (shard-direct traffic; membership must
    /// still go through the coordinator).
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard_mut(&mut self, shard: usize) -> &mut ShardInstance {
        &mut self.shards[shard]
    }

    /// The plan the universe is partitioned by.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The shared system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The global membership epoch — bit-identical to the unsharded
    /// baseline's [`DynamicSystem::epoch`] under the same op sequence.
    pub fn epoch(&self) -> u64 {
        self.framework.revision()
    }

    /// The global prediction framework.
    pub fn framework(&self) -> &PredictionFramework {
        &self.framework
    }

    /// Hosts currently active anywhere in the fleet.
    pub fn active(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.active.iter().copied()
    }

    /// Whether `host` is currently active.
    pub fn is_active(&self, host: NodeId) -> bool {
        self.active.contains(&host)
    }

    /// Whether `host` is currently crashed.
    pub fn is_crashed(&self, host: NodeId) -> bool {
        self.crashed.contains(&host)
    }

    /// Active hosts across the fleet.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// `true` when nobody has joined.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Universe size.
    pub fn universe_size(&self) -> usize {
        self.bandwidth.len()
    }

    /// Aggregate coordinator counters.
    pub fn stats(&self) -> CoordStats {
        self.stats
    }

    /// Coordinator-cache counters.
    pub fn cache_stats(&self) -> CoordCacheStats {
        self.cache.stats()
    }

    /// Entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops every cached cross-shard answer (counters survive).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Publishes per-shard gauges (`shard.<id>.queries`,
    /// `shard.<id>.forwarded`, `shard.<id>.merge_candidates`,
    /// `shard.<id>.epoch`) plus coordinator totals
    /// (`coord.{queries,cache_hits,degraded,pruned}`) into the process-
    /// global `bcc-obs` registry. No-op when obs is disabled.
    pub fn publish_obs(&self) {
        if !bcc_obs::enabled() {
            return;
        }
        let reg = bcc_obs::registry();
        for sh in &self.shards {
            let id = sh.id;
            reg.gauge(&format!("shard.{id}.queries"))
                .set(sh.stats.queries);
            reg.gauge(&format!("shard.{id}.forwarded"))
                .set(sh.stats.forwarded);
            reg.gauge(&format!("shard.{id}.merge_candidates"))
                .set(sh.stats.merge_candidates);
            reg.gauge(&format!("shard.{id}.epoch"))
                .set(sh.service.system().epoch());
        }
        reg.gauge("coord.queries").set(self.stats.queries);
        reg.gauge("coord.cache_hits").set(self.stats.cache_hits);
        reg.gauge("coord.degraded").set(self.stats.degraded);
        reg.gauge("coord.pruned").set(self.stats.pruned);
    }
}
