//! One shard of the sharded serving deployment.
//!
//! A [`ShardInstance`] owns two things:
//!
//! - a full [`ClusterService`] over the shard's own members (its own
//!   [`bcc_simnet::DynamicSystem`], epoch, result cache and circuit
//!   breakers) — this is what serves shard-*direct* traffic, completely
//!   unchanged from the unsharded serving layer, and what gives the shard
//!   its churn epoch;
//! - a *region index*: a [`ClusterIndex`] over the shard's active members
//!   under the **global** label metric, maintained incrementally by the
//!   coordinator on every churn op. Cross-shard scatter–gather reads only
//!   this index, so shard answers merge bit-identically with the
//!   unsharded baseline.

use bcc_core::ClusterIndex;
use bcc_service::ClusterService;

/// Per-shard serving counters, surfaced as `shard.<id>.*` obs gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Region queries this shard owned (its member was the start host),
    /// cached serves included.
    pub queries: u64,
    /// Times this shard was consulted as a *non-owner* — its boundary
    /// ball straddled the query and it scanned for candidates.
    pub forwarded: u64,
    /// Candidates this shard contributed to cross-shard merges (owner
    /// ball members plus non-owner scan results).
    pub merge_candidates: u64,
}

/// One shard: a self-contained serving instance plus its region index.
#[derive(Debug)]
pub struct ShardInstance {
    pub(crate) id: usize,
    pub(crate) service: ClusterService,
    pub(crate) region: ClusterIndex,
    pub(crate) reachable: bool,
    pub(crate) stats: ShardStats,
}

impl ShardInstance {
    /// The shard's id (its position in the plan).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's own serving layer — per-shard admission, breakers and
    /// cache, exactly the unsharded [`ClusterService`].
    pub fn service(&self) -> &ClusterService {
        &self.service
    }

    /// Mutable access to the shard's service, for shard-direct traffic
    /// (`submit`/`tick`/`drain`). Membership changes must go through the
    /// coordinator's churn wrappers instead, so the global labels and the
    /// region index stay in lockstep.
    pub fn service_mut(&mut self) -> &mut ClusterService {
        &mut self.service
    }

    /// The region index: this shard's active members under the global
    /// label metric, slot order ascending by id.
    pub fn region(&self) -> &ClusterIndex {
        &self.region
    }

    /// Whether the coordinator can currently reach this shard (partition
    /// nemeses flip this; see `Coordinator::set_reachable`).
    pub fn reachable(&self) -> bool {
        self.reachable
    }

    /// The shard's serving counters.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// The shard's `(epoch, digest)` freshness stamp: its service's
    /// membership epoch and its region index's content digest. Cross-
    /// shard cache entries record the stamp of every contributor and
    /// revalidate against it — the epoch catches the shard's own churn,
    /// the digest additionally catches re-embeds of this shard's members
    /// caused by *other* shards' churn (global labels moved, local
    /// membership did not).
    pub fn stamp(&self) -> (u64, u64) {
        (self.service.system().epoch(), self.region.digest())
    }
}
