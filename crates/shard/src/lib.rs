//! Sharded multi-instance serving: a scatter–gather coordinator over
//! anchor-tree regions.
//!
//! One [`ClusterService`](bcc_service::ClusterService) holds the whole
//! membership in one process. This crate horizontally partitions that
//! deployment: a [`ShardPlan`] splits the universe into anchor-tree-lane
//! regions, each [`ShardInstance`] runs a full service (its own dynamic
//! system, epoch, cache and breakers) over its region, and a
//! [`Coordinator`] in front routes region queries `(start, k, b)` to the
//! owning shard — scatter–gathering cross-shard candidates only when the
//! query's bandwidth ball straddles a region boundary.
//!
//! The headline property is **bit-identity**: for every churn schedule,
//! shard count and thread count, [`Coordinator::cluster_near`] returns
//! exactly the answer the unsharded
//! [`DynamicSystem::cluster_near`](bcc_simnet::DynamicSystem::cluster_near)
//! returns — same bytes, same error values, no stale reads. The
//! mechanism (global label metric + membership-pure candidate sets +
//! canonical serial merge) is documented on [`Coordinator`]; the shard
//! proptests and the sharded chaos tier pin it.
//!
//! # Quick start
//!
//! ```
//! use bcc_core::BandwidthClasses;
//! use bcc_metric::{BandwidthMatrix, NodeId, RationalTransform};
//! use bcc_service::ServiceConfig;
//! use bcc_shard::{Coordinator, ShardPlan};
//! use bcc_simnet::SystemConfig;
//!
//! let caps = [100.0f64, 100.0, 100.0, 100.0, 10.0, 10.0];
//! let bw = BandwidthMatrix::from_fn(6, |i, j| caps[i].min(caps[j]));
//! let classes = BandwidthClasses::new(vec![50.0], RationalTransform::default());
//! let hosts: Vec<NodeId> = (0..6).map(NodeId::new).collect();
//!
//! let mut coord = Coordinator::bootstrap(
//!     bw,
//!     SystemConfig::new(classes),
//!     ShardPlan::contiguous(6, 2),
//!     ServiceConfig::default(),
//!     &hosts,
//! )
//! .expect("valid sharded deployment");
//!
//! let resp = coord.cluster_near(NodeId::new(0), 3, 50.0).expect("valid query");
//! assert!(resp.outcome.is_exact());
//! assert!(resp.outcome.cluster().is_some(), "fast hosts cluster");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cache;
mod coordinator;
mod error;
pub mod harness;
mod instance;
mod plan;

pub use cache::CoordCacheStats;
pub use coordinator::{CoordOutcome, CoordResponse, CoordStats, Coordinator};
pub use error::ShardError;
pub use instance::{ShardInstance, ShardStats};
pub use plan::ShardPlan;
