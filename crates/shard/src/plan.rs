//! Static universe partitioning: which shard owns which host.
//!
//! A [`ShardPlan`] is a total, deterministic function `universe id →
//! shard id`, fixed at coordinator construction. Correctness never
//! depends on *which* plan is chosen: the coordinator's region-scoped
//! answers are membership-pure (the candidate set is defined by global
//! label distances alone), so every plan yields bit-identical responses
//! and the plan is purely a *locality* knob — a good plan keeps anchor-
//! tree neighborhoods together so most query balls stay inside one shard
//! and cross-shard scatter prunes early.

use bcc_metric::NodeId;

/// A total assignment of universe hosts to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    owners: Vec<u16>,
    shard_count: usize,
}

impl ShardPlan {
    /// Partitions `universe` ids into `shard_count` contiguous id ranges
    /// of near-equal size (the first `universe % shard_count` shards get
    /// one extra host). Contiguous ranges are the natural anchor-tree
    /// lane split: hosts join in id order in every harness, so subtree
    /// neighborhoods land in the same range.
    ///
    /// # Panics
    ///
    /// Panics when `shard_count == 0` or `shard_count > u16::MAX + 1`.
    pub fn contiguous(universe: usize, shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        assert!(shard_count <= (u16::MAX as usize) + 1, "too many shards");
        let base = universe / shard_count;
        let extra = universe % shard_count;
        let mut owners = Vec::with_capacity(universe);
        for s in 0..shard_count {
            let len = base + usize::from(s < extra);
            owners.extend(std::iter::repeat_n(s as u16, len));
        }
        debug_assert_eq!(owners.len(), universe);
        ShardPlan {
            owners,
            shard_count,
        }
    }

    /// A plan from an explicit owner table (`owners[id] = shard`).
    ///
    /// # Panics
    ///
    /// Panics when `shard_count == 0` or an owner is out of range.
    pub fn from_owners(owners: Vec<u16>, shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        assert!(
            owners.iter().all(|&s| (s as usize) < shard_count),
            "owner out of range"
        );
        ShardPlan {
            owners,
            shard_count,
        }
    }

    /// The shard owning `host`.
    ///
    /// # Panics
    ///
    /// Panics when `host` is outside the universe — callers validate ids
    /// first (the coordinator does, before ever routing).
    pub fn owner(&self, host: NodeId) -> usize {
        self.owners[host.index()] as usize
    }

    /// The shard owning universe id `id` (the `u32` twin of
    /// [`ShardPlan::owner`]).
    pub fn owner_of_id(&self, id: u32) -> usize {
        self.owners[id as usize] as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Universe size the plan partitions.
    pub fn universe(&self) -> usize {
        self.owners.len()
    }

    /// The universe ids owned by `shard`, ascending.
    pub fn members_of(&self, shard: usize) -> Vec<u32> {
        self.owners
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s as usize == shard)
            .map(|(id, _)| id as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_covers_the_universe_evenly() {
        let plan = ShardPlan::contiguous(10, 4);
        assert_eq!(plan.universe(), 10);
        assert_eq!(plan.shard_count(), 4);
        // 10 = 3 + 3 + 2 + 2, contiguous ranges.
        assert_eq!(plan.members_of(0), vec![0, 1, 2]);
        assert_eq!(plan.members_of(1), vec![3, 4, 5]);
        assert_eq!(plan.members_of(2), vec![6, 7]);
        assert_eq!(plan.members_of(3), vec![8, 9]);
        for id in 0..10u32 {
            assert!(plan.members_of(plan.owner_of_id(id)).contains(&id));
        }
        assert_eq!(plan.owner(NodeId::new(5)), 1);
    }

    #[test]
    fn single_shard_owns_everything() {
        let plan = ShardPlan::contiguous(7, 1);
        assert_eq!(plan.members_of(0).len(), 7);
    }

    #[test]
    fn more_shards_than_hosts_leaves_trailing_shards_empty() {
        let plan = ShardPlan::contiguous(2, 4);
        assert_eq!(plan.members_of(0), vec![0]);
        assert_eq!(plan.members_of(1), vec![1]);
        assert!(plan.members_of(2).is_empty());
        assert!(plan.members_of(3).is_empty());
    }

    #[test]
    fn from_owners_round_trips() {
        let plan = ShardPlan::from_owners(vec![1, 0, 1, 0], 2);
        assert_eq!(plan.members_of(0), vec![1, 3]);
        assert_eq!(plan.members_of(1), vec![0, 2]);
    }
}
