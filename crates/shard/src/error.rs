//! Typed construction errors for the sharded serving layer.
//!
//! Queries and churn deliberately do **not** get their own error type:
//! [`crate::Coordinator`] returns the same [`bcc_core::ClusterError`] /
//! [`bcc_simnet::ChurnError`] values the unsharded baseline does, because
//! error parity is part of the bit-identity contract the proptests pin.

use bcc_service::ServiceError;
use bcc_simnet::{ChurnError, ConfigError};

/// An error assembling a [`crate::Coordinator`].
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// The shared [`bcc_simnet::SystemConfig`] failed validation.
    Config(ConfigError),
    /// A per-shard [`bcc_service::ClusterService`] rejected its config.
    Service(ServiceError),
    /// A bootstrap membership operation failed.
    Churn(ChurnError),
    /// The shard plan was drawn over a different universe than the
    /// bandwidth matrix.
    PlanMismatch {
        /// Universe size the plan partitions.
        plan: usize,
        /// Universe size of the bandwidth matrix.
        universe: usize,
    },
}

impl From<ConfigError> for ShardError {
    fn from(e: ConfigError) -> Self {
        ShardError::Config(e)
    }
}

impl From<ServiceError> for ShardError {
    fn from(e: ServiceError) -> Self {
        ShardError::Service(e)
    }
}

impl From<ChurnError> for ShardError {
    fn from(e: ChurnError) -> Self {
        ShardError::Churn(e)
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Config(e) => write!(f, "invalid system config: {e}"),
            ShardError::Service(e) => write!(f, "invalid shard service: {e}"),
            ShardError::Churn(e) => write!(f, "bootstrap membership failed: {e}"),
            ShardError::PlanMismatch { plan, universe } => write!(
                f,
                "shard plan partitions a universe of {plan}, bandwidth matrix has {universe}"
            ),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Config(e) => Some(e),
            ShardError::Service(e) => Some(e),
            ShardError::Churn(e) => Some(e),
            ShardError::PlanMismatch { .. } => None,
        }
    }
}
