//! The coordinator's cross-shard result cache.
//!
//! Entries are keyed `(start, k, class)` like the service cache, but
//! freshness is *vectored*: each entry records the `(epoch, digest)`
//! stamp of every shard that contributed candidates. At lookup the
//! coordinator revalidates the whole vector — every contributor must
//! match its current stamp, and every shard that was *pruned* at compute
//! time must still pass the O(1) prune test (its members could have
//! moved into range). Degraded answers are never cached.

use std::collections::{BTreeMap, VecDeque};

use bcc_metric::NodeId;

/// Cache key: one region query shape.
pub(crate) type CoordKey = (u32, usize, usize);

/// One cached cross-shard answer with its freshness certificate.
#[derive(Debug, Clone)]
pub(crate) struct CoordEntry {
    /// The merged answer (ascending host ids inside the cluster kernel's
    /// canonical order), `None` when no cluster existed.
    pub answer: Option<Vec<NodeId>>,
    /// `(shard, stamp)` for every shard that contributed candidates, in
    /// shard order. Shards absent here were pruned.
    pub contributors: Vec<(usize, (u64, u64))>,
    /// Shards consulted (non-pruned) when the entry was computed.
    pub consulted: usize,
    /// Merged candidate-set size when the entry was computed.
    pub candidates: usize,
}

/// Counters of the coordinator cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordCacheStats {
    /// Lookups attempted.
    pub lookups: u64,
    /// Lookups whose full freshness vector validated.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups that found an entry with a stale vector (dropped).
    pub invalidated: u64,
    /// Entries stored.
    pub inserted: u64,
    /// Entries evicted by capacity (FIFO).
    pub evicted: u64,
}

/// Bounded FIFO map of cross-shard answers. Determinism: `BTreeMap`
/// iteration and FIFO eviction are both order-stable, so cache state is a
/// pure function of the operation sequence.
#[derive(Debug)]
pub(crate) struct CoordCache {
    map: BTreeMap<CoordKey, CoordEntry>,
    order: VecDeque<CoordKey>,
    capacity: usize,
    stats: CoordCacheStats,
}

impl CoordCache {
    pub fn new(capacity: usize) -> Self {
        CoordCache {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            capacity,
            stats: CoordCacheStats::default(),
        }
    }

    /// Raw entry access; the coordinator validates the freshness vector
    /// itself (it needs the live shard stamps) and then settles the
    /// lookup with [`CoordCache::hit`] or [`CoordCache::invalidate`].
    pub fn peek(&mut self, key: &CoordKey) -> Option<&CoordEntry> {
        self.stats.lookups += 1;
        let entry = self.map.get(key);
        if entry.is_none() {
            self.stats.misses += 1;
        }
        entry
    }

    pub fn hit(&mut self) {
        self.stats.hits += 1;
    }

    pub fn invalidate(&mut self, key: &CoordKey) {
        if self.map.remove(key).is_some() {
            self.stats.invalidated += 1;
            self.order.retain(|k| k != key);
        }
    }

    pub fn insert(&mut self, key: CoordKey, entry: CoordEntry) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key, entry).is_none() {
            self.order.push_back(key);
        }
        self.stats.inserted += 1;
        while self.map.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                self.stats.evicted += 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    pub fn stats(&self) -> CoordCacheStats {
        self.stats
    }
}
